"""Seeded scenario generation for differential validation.

A *scenario* is one randomized-but-reproducible observation epoch with
exactly known truth: receiver position, clock bias, and the geometry
conditioning the epoch was generated with.  Everything is derived
deterministically from ``(seed, ScenarioConfig)``, which is what makes
a failing fuzz case a two-integer artifact instead of a megabyte dump —
regenerating the scenario from its seed reproduces the input bit for
bit.

Geometry spans the range where closed-form solvers are interesting:

* **well-conditioned** skies spread satellites over the whole upper
  hemisphere (difference-design condition numbers in the tens);
* **near-coplanar** skies squash the line-of-sight directions toward a
  common plane through the receiver.  Every differenced design row
  ``s_j - s_base`` then lies (nearly) in that plane, so the ``(m-1, 3)``
  system loses rank exactly the way the snapshot-positioning literature
  warns about — the regime where closed-form solvers silently diverge
  if tolerances are not geometry-aware.

The conditioning knob is continuous: ``flatness`` in ``[0, 1)`` scales
how far each direction is pulled into the plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.constellation.systems import normalize_system
from repro.solvers.direct_linear import (
    build_difference_system,
    build_multi_difference_system,
)
from repro.errors import ConfigurationError
from repro.geodesy import geodetic_to_ecef
from repro.observations import EpochTruth, ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime

#: GPS orbital radius band used for synthetic satellite ranges (meters
#: from the receiver, spanning zenith to low-elevation slant ranges).
_RANGE_BAND = (2.0e7, 2.6e7)

#: Reference GPS week for generated epochs (arbitrary but fixed, so a
#: scenario's time is a pure function of its seed).
_REFERENCE_WEEK = 2200


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the scenario distribution.

    Attributes
    ----------
    min_satellites, max_satellites:
        Inclusive bounds on the per-scenario constellation size.
    max_clock_bias_meters:
        Receiver clock biases are swept uniformly over
        ``[-max, +max]``.  The default (3e5 m ≈ 1 ms) covers the full
        threshold-clock adjustment step of Section 5.2.2.
    max_flatness:
        Upper bound of the geometry-degradation sweep: ``0`` generates
        only well-conditioned skies, values toward ``1`` include
        near-coplanar ones.  Kept strictly below 1 so the design is
        ill-conditioned, not exactly singular.
    noise_sigma:
        Gaussian pseudorange noise (meters).  The default is zero:
        noise-free scenarios make cross-solver agreement a pure
        numerics check with tight, defensible tolerances.
    systems:
        GNSS systems contributing satellites, in draw order.  The
        default ``("G",)`` reproduces the legacy GPS-only distribution
        **bit for bit** — a single-system config consumes exactly the
        pre-multi-constellation random stream, so historic seeds keep
        regenerating their historic scenarios.  Additional systems draw
        *after* that legacy stream (count in ``[3, max_satellites]``,
        own clock bias, own sky directions under the same flatness
        plane), each with an independent per-constellation truth bias.
    """

    min_satellites: int = 4
    max_satellites: int = 12
    max_clock_bias_meters: float = 3.0e5
    max_flatness: float = 0.98
    noise_sigma: float = 0.0
    systems: Tuple[str, ...] = ("G",)

    def __post_init__(self) -> None:
        if not 4 <= self.min_satellites <= self.max_satellites:
            raise ConfigurationError(
                "need 4 <= min_satellites <= max_satellites, got "
                f"{self.min_satellites}..{self.max_satellites}"
            )
        if not np.isfinite(self.max_clock_bias_meters) or self.max_clock_bias_meters < 0:
            raise ConfigurationError("max_clock_bias_meters must be finite and >= 0")
        if not 0.0 <= self.max_flatness < 1.0:
            raise ConfigurationError("max_flatness must be in [0, 1)")
        if not np.isfinite(self.noise_sigma) or self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be finite and >= 0")
        systems = tuple(normalize_system(system) for system in self.systems)
        if not systems:
            raise ConfigurationError("systems must name at least one constellation")
        if len(set(systems)) != len(systems):
            raise ConfigurationError("systems lists a constellation twice")
        object.__setattr__(self, "systems", systems)

    def to_dict(self) -> Dict:
        """JSON-ready form, embedded in fuzz artifacts."""
        return {
            "min_satellites": self.min_satellites,
            "max_satellites": self.max_satellites,
            "max_clock_bias_meters": self.max_clock_bias_meters,
            "max_flatness": self.max_flatness,
            "noise_sigma": self.noise_sigma,
            "systems": list(self.systems),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ScenarioConfig":
        """Inverse of :meth:`to_dict` (artifact replay)."""
        return cls(**data)


@dataclass(frozen=True)
class Scenario:
    """One reproducible validation case.

    Attributes
    ----------
    seed:
        The generator seed this scenario is a pure function of.
    config:
        The :class:`ScenarioConfig` it was drawn from.
    epoch:
        The observation epoch, truth attached.
    clock_bias_meters:
        The exact receiver clock bias baked into the pseudoranges —
        what an oracle predictor should hand DLO/DLG.  Multi-system
        scenarios bake one bias per constellation; this field carries
        the *first* system's bias and :attr:`clock_biases` the rest.
    flatness:
        The geometry-degradation draw in ``[0, max_flatness]``.
    conditioning:
        2-norm condition number of the base-0 differenced design
        (eq. 4-9) — the geometry severity the tolerance model scales
        with.
    """

    seed: int
    config: ScenarioConfig
    epoch: ObservationEpoch = field(compare=False)
    clock_bias_meters: float
    flatness: float
    conditioning: float

    @property
    def satellite_count(self) -> int:
        """Satellites in the scenario epoch."""
        return self.epoch.satellite_count

    @property
    def truth_position(self) -> np.ndarray:
        """True receiver ECEF position."""
        return self.epoch.truth.receiver_position

    @property
    def clock_biases(self) -> Optional[Tuple[Tuple[str, float], ...]]:
        """Per-constellation truth biases, ``None`` on legacy scenes."""
        return self.epoch.truth.clock_biases


class ScenarioGenerator:
    """Deterministic scenario factory: ``generate(seed)`` is pure.

    Two generators with equal configs produce identical scenarios for
    equal seeds, across processes and platforms (only
    ``numpy.random.default_rng`` streams are consumed, in a fixed
    order).
    """

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self._config = config if config is not None else ScenarioConfig()

    @property
    def config(self) -> ScenarioConfig:
        """The scenario distribution being sampled."""
        return self._config

    def generate(self, seed: int) -> Scenario:
        """The scenario for ``seed`` (same seed, same scenario)."""
        cfg = self._config
        rng = np.random.default_rng(seed)

        # Receiver somewhere on (or slightly above) the ellipsoid.
        latitude = np.arcsin(rng.uniform(-1.0, 1.0))  # area-uniform
        longitude = rng.uniform(-np.pi, np.pi)
        height = rng.uniform(0.0, 9000.0)
        receiver = geodetic_to_ecef(latitude, longitude, height)
        up = receiver / np.linalg.norm(receiver)

        count = int(rng.integers(cfg.min_satellites, cfg.max_satellites + 1))
        bias = float(rng.uniform(-cfg.max_clock_bias_meters, cfg.max_clock_bias_meters))
        flatness = float(rng.uniform(0.0, cfg.max_flatness)) if cfg.max_flatness else 0.0

        # A degradation plane through the receiver, tilted toward the
        # sky: its normal mixes "up" with a random tangent direction so
        # the squashed constellation is still overhead.
        tangent = rng.normal(size=3)
        tangent -= up * (tangent @ up)
        tangent /= np.linalg.norm(tangent)
        plane_normal = up * np.sqrt(0.5) + tangent * np.sqrt(0.5)

        directions = self._sky_directions(rng, up, count, flatness, plane_normal)
        ranges = rng.uniform(*_RANGE_BAND, size=count)

        # The primary constellation consumes exactly the legacy random
        # stream above, so single-system configs stay bit-for-bit
        # reproducible across the multi-constellation generalization.
        observations = []
        primary = cfg.systems[0]
        for prn in range(1, count + 1):
            position = receiver + directions[prn - 1] * ranges[prn - 1]
            pseudorange = float(np.linalg.norm(position - receiver)) + bias
            if cfg.noise_sigma:
                pseudorange += float(rng.normal(0.0, cfg.noise_sigma))
            elevation = float(np.arcsin(np.clip(directions[prn - 1] @ up, -1.0, 1.0)))
            observations.append(
                SatelliteObservation(
                    prn=prn,
                    position=position,
                    pseudorange=pseudorange,
                    elevation=elevation,
                    system=primary,
                )
            )

        # Extra constellations draw strictly after the legacy stream.
        # A floor of 3 satellites each keeps every K <= 4 mix solvable
        # by the differenced per-constellation system (m >= 3 + 2K).
        biases = {primary: bias}
        for system in cfg.systems[1:]:
            extra_count = int(rng.integers(3, cfg.max_satellites + 1))
            extra_bias = float(
                rng.uniform(-cfg.max_clock_bias_meters, cfg.max_clock_bias_meters)
            )
            biases[system] = extra_bias
            extra_directions = self._sky_directions(
                rng, up, extra_count, flatness, plane_normal
            )
            extra_ranges = rng.uniform(*_RANGE_BAND, size=extra_count)
            for prn in range(1, extra_count + 1):
                position = receiver + extra_directions[prn - 1] * extra_ranges[prn - 1]
                pseudorange = float(np.linalg.norm(position - receiver)) + extra_bias
                if cfg.noise_sigma:
                    pseudorange += float(rng.normal(0.0, cfg.noise_sigma))
                elevation = float(
                    np.arcsin(np.clip(extra_directions[prn - 1] @ up, -1.0, 1.0))
                )
                observations.append(
                    SatelliteObservation(
                        prn=prn,
                        position=position,
                        pseudorange=pseudorange,
                        elevation=elevation,
                        system=system,
                    )
                )

        epoch = ObservationEpoch(
            time=GpsTime(
                week=_REFERENCE_WEEK, seconds_of_week=float(seed % 604800)
            ),
            observations=tuple(observations),
            truth=EpochTruth(
                receiver_position=receiver,
                clock_bias_meters=bias,
                clock_biases=(
                    tuple((system, biases[system]) for system in cfg.systems)
                    if len(cfg.systems) > 1
                    else None
                ),
            ),
        )
        if len(cfg.systems) > 1:
            positions, pseudoranges, _prns, system_ids = epoch.dense()
            design, _rhs, _groups, _bases, _codes = build_multi_difference_system(
                positions, pseudoranges, system_ids
            )
        else:
            design, _rhs = build_difference_system(
                epoch.satellite_positions(), epoch.pseudoranges() - bias
            )
        return Scenario(
            seed=int(seed),
            config=cfg,
            epoch=epoch,
            clock_bias_meters=bias,
            flatness=flatness,
            conditioning=float(np.linalg.cond(design)),
        )

    def stream(self, start_seed: int, count: int) -> Iterator[Scenario]:
        """``count`` scenarios at consecutive seeds from ``start_seed``."""
        for offset in range(count):
            yield self.generate(start_seed + offset)

    # ------------------------------------------------------------------
    @staticmethod
    def _sky_directions(
        rng: np.random.Generator,
        up: np.ndarray,
        count: int,
        flatness: float,
        plane_normal: np.ndarray,
    ) -> np.ndarray:
        """``(count, 3)`` unit line-of-sight directions above the horizon.

        Each direction starts as a uniform upper-hemisphere draw (min
        elevation ~5 degrees), then has ``flatness`` of its component
        along ``plane_normal`` removed — at ``flatness -> 1`` every
        direction lies in the plane and the differenced design drops to
        rank 2.
        """
        directions = np.empty((count, 3))
        produced = 0
        while produced < count:
            candidate = rng.normal(size=3)
            norm = np.linalg.norm(candidate)
            if norm < 1e-12:
                continue
            candidate /= norm
            if candidate @ up < 0:
                candidate = -candidate  # fold into the upper hemisphere
            if candidate @ up < np.sin(np.radians(5.0)):
                continue  # below the elevation mask; redraw
            squashed = candidate - flatness * (candidate @ plane_normal) * plane_normal
            squashed /= np.linalg.norm(squashed)
            directions[produced] = squashed
            produced += 1
        return directions


def scenario_with_noise(scenario: Scenario, noise_sigma: float) -> Scenario:
    """A noisy twin of a scenario (same geometry, same seed stream).

    Useful for studying how a disagreement scales with measurement
    noise without changing anything else about the case.
    """
    generator = ScenarioGenerator(
        replace(scenario.config, noise_sigma=float(noise_sigma))
    )
    return generator.generate(scenario.seed)
