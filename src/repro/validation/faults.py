"""Composable observation-fault injection.

A :class:`FaultProfile` is a deterministic, serializable perturbation
of an :class:`~repro.observations.ObservationEpoch`: pseudorange
spikes, satellite dropouts, NaN/Inf measurements, clock jumps,
duplicated satellites.  Profiles compose with ``|`` (apply left, then
right) and round-trip through :meth:`FaultProfile.spec` /
:func:`fault_from_spec`, which is how a fuzz artifact records *exactly*
which corruption produced a failure.

Two families of faults exist, and they are checked differently:

* **semantic** faults (spikes, clock jumps) keep the epoch structurally
  valid but corrupt its measurements — solvers are expected to *answer*
  (and typically disagree with truth / each other; the differential
  oracle attributes that to the fault);
* **structural** faults (NaN/Inf, undersized dropouts, duplicate PRNs)
  violate the data-model contract itself.  The validating constructors
  of :mod:`repro.observations` refuse to build such epochs, so the
  injector deliberately constructs them through ``object.__new__`` —
  exactly what a buggy decoder or a corrupted wire message would hand
  the pipeline.  The uniform input guard
  (:func:`repro.observations.epoch_integrity_error`) exists because
  this injector proved such epochs previously reached the solvers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch, SatelliteObservation

#: Structural faults are expected to be *rejected* by guarded entry
#: points; semantic faults are expected to be *answered* (wrongly).
EXPECT_REJECTED = "rejected"
EXPECT_ANSWERED = "answered"


def _unvalidated_observation(template: SatelliteObservation, **overrides) -> SatelliteObservation:
    """A SatelliteObservation built *without* constructor validation.

    Fault injection must be able to express states the validating
    constructor forbids (NaN pseudoranges, non-finite positions); this
    mirrors how unvalidated data enters a real pipeline through a
    decoder that trusts its input.
    """
    observation = object.__new__(SatelliteObservation)
    defaults = {"system": "G", "cn0_dbhz": None}
    for fld in (
        "prn",
        "position",
        "pseudorange",
        "elevation",
        "azimuth",
        "carrier_range",
        "pseudorange_l2",
        "range_rate",
        "velocity",
        "system",
        "cn0_dbhz",
    ):
        value = overrides.get(fld, getattr(template, fld, defaults.get(fld)))
        object.__setattr__(observation, fld, value)
    return observation


def _unvalidated_epoch(
    template: ObservationEpoch, observations: Sequence[SatelliteObservation]
) -> ObservationEpoch:
    """An ObservationEpoch built without the duplicate-PRN/empty checks."""
    epoch = object.__new__(ObservationEpoch)
    object.__setattr__(epoch, "time", template.time)
    object.__setattr__(epoch, "observations", tuple(observations))
    object.__setattr__(epoch, "truth", template.truth)
    return epoch


class FaultProfile(ABC):
    """One deterministic epoch perturbation."""

    #: Short registry key, also the CLI spelling (``--inject``).
    name: str = "?"

    #: :data:`EXPECT_REJECTED` or :data:`EXPECT_ANSWERED` — how guarded
    #: entry points are expected to treat the faulted epoch.
    expectation: str = EXPECT_ANSWERED

    @abstractmethod
    def apply(
        self, epoch: ObservationEpoch, rng: np.random.Generator
    ) -> ObservationEpoch:
        """The faulted epoch (the input epoch is never mutated)."""

    def spec(self) -> Dict:
        """JSON-ready description, replayable via :func:`fault_from_spec`."""
        return {"name": self.name, **self._params()}

    def _params(self) -> Dict:
        return {}

    def __or__(self, other: "FaultProfile") -> "CompositeFault":
        """Compose: apply ``self`` first, then ``other``."""
        return CompositeFault((self, other))


class PseudorangeSpike(FaultProfile):
    """Add a large bias to one (or more) random pseudoranges.

    The classic undetected-fault shape RAIM exists for: measurements
    stay finite and plausible, the solution silently walks away.
    """

    name = "spike"
    expectation = EXPECT_ANSWERED

    def __init__(self, magnitude_meters: float = 5.0e4, count: int = 1) -> None:
        if not np.isfinite(magnitude_meters) or magnitude_meters <= 0:
            raise ConfigurationError("magnitude_meters must be positive and finite")
        if count < 1:
            raise ConfigurationError("count must be at least 1")
        self.magnitude_meters = float(magnitude_meters)
        self.count = int(count)

    def _params(self) -> Dict:
        return {"magnitude_meters": self.magnitude_meters, "count": self.count}

    def apply(self, epoch, rng):
        hit = set(
            rng.choice(len(epoch), size=min(self.count, len(epoch)), replace=False)
        )
        observations = [
            _unvalidated_observation(
                obs, pseudorange=obs.pseudorange + self.magnitude_meters
            )
            if index in hit
            else obs
            for index, obs in enumerate(epoch.observations)
        ]
        return epoch.with_observations(observations)


class ClockJump(FaultProfile):
    """Shift *every* pseudorange by a common step (meters).

    Simulates a receiver clock reset the bias predictor has not seen
    yet — the Section 5.2.2 failure mode the receiver's residual gate
    watches for.  Solvers that estimate the bias (NR, Bancroft) absorb
    it; closed-form solvers fed a stale prediction do not.
    """

    name = "clock_jump"
    expectation = EXPECT_ANSWERED

    def __init__(self, jump_meters: float = 2.99792458e5) -> None:
        if not np.isfinite(jump_meters) or jump_meters == 0.0:
            raise ConfigurationError("jump_meters must be finite and nonzero")
        self.jump_meters = float(jump_meters)

    def _params(self) -> Dict:
        return {"jump_meters": self.jump_meters}

    def apply(self, epoch, rng):
        return epoch.with_observations(
            _unvalidated_observation(obs, pseudorange=obs.pseudorange + self.jump_meters)
            for obs in epoch.observations
        )


class SatelliteDropout(FaultProfile):
    """Remove random satellites, possibly leaving an undersized epoch."""

    name = "dropout"
    #: Dropping below four satellites must be uniformly rejected (or
    #: NaN-dropped) by the guarded entry points.
    expectation = EXPECT_REJECTED

    def __init__(self, remaining: int = 3) -> None:
        if remaining < 1:
            raise ConfigurationError("remaining must be at least 1")
        self.remaining = int(remaining)

    def _params(self) -> Dict:
        return {"remaining": self.remaining}

    def apply(self, epoch, rng):
        keep = min(self.remaining, len(epoch))
        order = list(rng.permutation(len(epoch)))
        return epoch.subset(keep, order)


class NonFiniteMeasurement(FaultProfile):
    """Corrupt one observation with NaN or infinity.

    ``field`` selects what breaks: the pseudorange or one satellite
    position component — both shapes a corrupted ephemeris decode or a
    DSP glitch produces in practice.
    """

    name = "non_finite"
    expectation = EXPECT_REJECTED

    def __init__(self, value: str = "nan", target: str = "pseudorange") -> None:
        if value not in ("nan", "inf", "-inf"):
            raise ConfigurationError("value must be 'nan', 'inf', or '-inf'")
        if target not in ("pseudorange", "position"):
            raise ConfigurationError("target must be 'pseudorange' or 'position'")
        self.value = value
        self.target = target

    def _params(self) -> Dict:
        return {"value": self.value, "target": self.target}

    def apply(self, epoch, rng):
        poison = {"nan": float("nan"), "inf": float("inf"), "-inf": float("-inf")}[
            self.value
        ]
        hit = int(rng.integers(len(epoch)))
        observations = list(epoch.observations)
        victim = observations[hit]
        if self.target == "pseudorange":
            observations[hit] = _unvalidated_observation(victim, pseudorange=poison)
        else:
            position = np.array(victim.position, dtype=float)
            position[int(rng.integers(3))] = poison
            observations[hit] = _unvalidated_observation(victim, position=position)
        return _unvalidated_epoch(epoch, observations)


class DuplicateSatellite(FaultProfile):
    """Repeat one observation verbatim (duplicate PRN included).

    A double-counted satellite silently re-weights every estimator; the
    data-model contract forbids it, so guarded entry points must refuse
    the epoch rather than return a quietly biased fix.
    """

    name = "duplicate"
    expectation = EXPECT_REJECTED

    def apply(self, epoch, rng):
        hit = int(rng.integers(len(epoch)))
        observations = list(epoch.observations) + [epoch.observations[hit]]
        return _unvalidated_epoch(epoch, observations)


class CompositeFault(FaultProfile):
    """Left-to-right composition of fault profiles."""

    name = "composite"

    def __init__(self, profiles: Sequence[FaultProfile]) -> None:
        if not profiles:
            raise ConfigurationError("a composite fault needs at least one profile")
        self.profiles: Tuple[FaultProfile, ...] = tuple(profiles)

    @property
    def expectation(self) -> str:  # type: ignore[override]
        """Rejected if any component demands rejection."""
        if any(p.expectation == EXPECT_REJECTED for p in self.profiles):
            return EXPECT_REJECTED
        return EXPECT_ANSWERED

    def spec(self) -> Dict:
        return {"name": self.name, "profiles": [p.spec() for p in self.profiles]}

    def apply(self, epoch, rng):
        for profile in self.profiles:
            epoch = profile.apply(epoch, rng)
        return epoch

    def __or__(self, other: FaultProfile) -> "CompositeFault":
        return CompositeFault(self.profiles + (other,))


# -- spoof / interference profiles --------------------------------------
class SpoofFault(FaultProfile):
    """Base for coordinated spoofing and interference attacks.

    Unlike the point faults above, a spoof evolves over a *stream*: its
    magnitude at each epoch is a pure function of that epoch's own time
    against an ``onset_seconds`` origin — never of injector state — so
    applying a profile epoch-by-epoch, chunked, or in parallel produces
    the identical attack, and a replay artifact reproduces it exactly.

    Every profile in this family keeps the epoch *self-consistent*:
    residual-based RAIM/FDE sees (almost) nothing by construction.
    That is the point — these are the attacks the signal-plausibility
    monitors (:mod:`repro.integrity.monitors`) exist to catch, and
    :attr:`tolerance_meters` is the harm budget the spoof chaos
    campaign grades detection against (the monitors must raise before
    the position error crosses it).
    """

    expectation = EXPECT_ANSWERED
    #: Attack-family marker the chaos campaign selects on.
    family = "spoof"
    #: Position-error harm budget (meters): detection must beat the
    #: solved fix drifting further than this from truth.
    tolerance_meters = 50.0

    def __init__(self, onset_seconds: float = 0.0) -> None:
        if not np.isfinite(onset_seconds) or onset_seconds < 0:
            raise ConfigurationError("onset_seconds must be non-negative and finite")
        self.onset_seconds = float(onset_seconds)

    def elapsed(self, epoch: ObservationEpoch) -> float:
        """Seconds this attack has been running at ``epoch`` (>= 0)."""
        return max(
            0.0, float(epoch.time.seconds_of_week) - self.onset_seconds
        )

    def active(self, epoch: ObservationEpoch) -> bool:
        """Whether the attack has switched on by ``epoch``."""
        return float(epoch.time.seconds_of_week) >= self.onset_seconds


class Meaconing(SpoofFault):
    """Coherent replay: every signal delayed equally, one transmitter.

    A meaconer records the whole sky and rebroadcasts it with a common
    delay.  All pseudoranges shift together — the differenced solvers
    cancel the shift and the residuals stay clean, so FDE is blind —
    but the *signal* signature is glaring: one antenna's power profile
    replaces a sky of independent ones, so every channel reports the
    same C/N0 regardless of elevation (the cross-satellite consistency
    monitor's trigger).
    """

    name = "meaconing"
    tolerance_meters = 50.0

    def __init__(
        self,
        delay_meters: float = 500.0,
        cn0_dbhz: float = 45.0,
        onset_seconds: float = 0.0,
    ) -> None:
        super().__init__(onset_seconds)
        if not np.isfinite(delay_meters) or delay_meters <= 0:
            raise ConfigurationError("delay_meters must be positive and finite")
        if not np.isfinite(cn0_dbhz):
            raise ConfigurationError("cn0_dbhz must be finite")
        self.delay_meters = float(delay_meters)
        self.cn0_dbhz = float(cn0_dbhz)

    def _params(self) -> Dict:
        return {
            "delay_meters": self.delay_meters,
            "cn0_dbhz": self.cn0_dbhz,
            "onset_seconds": self.onset_seconds,
        }

    def apply(self, epoch, rng):
        if not self.active(epoch):
            return epoch
        return epoch.with_observations(
            _unvalidated_observation(
                obs,
                pseudorange=obs.pseudorange + self.delay_meters,
                cn0_dbhz=self.cn0_dbhz,
            )
            for obs in epoch.observations
        )


class SlowPositionDrag(SpoofFault):
    """Coherent pseudorange steering that walks the fix away slowly.

    Each pseudorange is rewritten to the *exact* geometric range from
    a dragged receiver position ``truth + direction * rate * elapsed``
    (capped at ``max_offset_meters``), so the faulted epoch is fully
    self-consistent — every solver agrees on the dragged position and
    the residuals never grow.  Only the stationary position/velocity
    monitors can see the fix leaving its learned reference.
    """

    name = "slow_drag"
    tolerance_meters = 50.0

    def __init__(
        self,
        rate_mps: float = 1.0,
        direction: Sequence[float] = (1.0, 0.0, 0.0),
        max_offset_meters: float = 500.0,
        onset_seconds: float = 0.0,
    ) -> None:
        super().__init__(onset_seconds)
        if not np.isfinite(rate_mps) or rate_mps <= 0:
            raise ConfigurationError("rate_mps must be positive and finite")
        if not np.isfinite(max_offset_meters) or max_offset_meters <= 0:
            raise ConfigurationError(
                "max_offset_meters must be positive and finite"
            )
        vector = np.asarray(direction, dtype=float)
        if vector.shape != (3,) or not np.all(np.isfinite(vector)):
            raise ConfigurationError("direction must be a finite 3-vector")
        norm = float(np.linalg.norm(vector))
        if norm == 0.0:
            raise ConfigurationError("direction must be nonzero")
        self.rate_mps = float(rate_mps)
        self.direction = tuple(float(c / norm) for c in vector)
        self.max_offset_meters = float(max_offset_meters)

    def _params(self) -> Dict:
        return {
            "rate_mps": self.rate_mps,
            "direction": list(self.direction),
            "max_offset_meters": self.max_offset_meters,
            "onset_seconds": self.onset_seconds,
        }

    def apply(self, epoch, rng):
        offset = min(
            self.rate_mps * self.elapsed(epoch), self.max_offset_meters
        )
        if offset == 0.0:
            return epoch
        if epoch.truth is None:
            raise ConfigurationError(
                "slow_drag steers pseudoranges toward a dragged receiver "
                "position and needs epoch truth to compute it"
            )
        receiver = np.asarray(epoch.truth.receiver_position, dtype=float)
        dragged = receiver + np.asarray(self.direction) * offset
        observations = []
        for obs in epoch.observations:
            position = np.asarray(obs.position, dtype=float)
            delta = float(
                np.linalg.norm(position - dragged)
                - np.linalg.norm(position - receiver)
            )
            observations.append(
                _unvalidated_observation(
                    obs, pseudorange=obs.pseudorange + delta
                )
            )
        return epoch.with_observations(observations)


class ClockPull(SpoofFault):
    """Common-mode pseudorange ramp: the receiver clock pulled off time.

    All pseudoranges grow together at ``rate_mps`` (capped at
    ``max_pull_meters``) — the position never moves and the differenced
    residuals cancel, but the *implied receiver clock bias* walks at a
    rate no oscillator explains.  The clock-drift-rate monitor's
    trigger; the attack that matters for timing receivers.
    """

    name = "clock_pull"
    tolerance_meters = 50.0

    def __init__(
        self,
        rate_mps: float = 8.0,
        max_pull_meters: float = 2.0e4,
        onset_seconds: float = 0.0,
    ) -> None:
        super().__init__(onset_seconds)
        if not np.isfinite(rate_mps) or rate_mps <= 0:
            raise ConfigurationError("rate_mps must be positive and finite")
        if not np.isfinite(max_pull_meters) or max_pull_meters <= 0:
            raise ConfigurationError("max_pull_meters must be positive and finite")
        self.rate_mps = float(rate_mps)
        self.max_pull_meters = float(max_pull_meters)

    def _params(self) -> Dict:
        return {
            "rate_mps": self.rate_mps,
            "max_pull_meters": self.max_pull_meters,
            "onset_seconds": self.onset_seconds,
        }

    def apply(self, epoch, rng):
        pull = min(self.rate_mps * self.elapsed(epoch), self.max_pull_meters)
        if pull == 0.0:
            return epoch
        return epoch.with_observations(
            _unvalidated_observation(obs, pseudorange=obs.pseudorange + pull)
            for obs in epoch.observations
        )


class JammingRamp(SpoofFault):
    """Broadband interference ramping up: every C/N0 sinks together.

    Jamming drives the front end's AGC — and with it every channel's
    C/N0 — down at ``ramp_db_per_second``, floored at ``floor_dbhz``
    (tracking loops cannot report below their squelch).  Pseudoranges
    are untouched: the attack degrades the *signal* long before it
    breaks the *solution*, which is exactly the window the AGC-proxy
    and absolute-threshold monitors exist to exploit.  Observations
    with no C/N0 stay silent (nothing to suppress).
    """

    name = "jamming_ramp"
    tolerance_meters = 50.0

    def __init__(
        self,
        ramp_db_per_second: float = 0.5,
        floor_dbhz: float = 20.0,
        onset_seconds: float = 0.0,
    ) -> None:
        super().__init__(onset_seconds)
        if not np.isfinite(ramp_db_per_second) or ramp_db_per_second <= 0:
            raise ConfigurationError(
                "ramp_db_per_second must be positive and finite"
            )
        if not np.isfinite(floor_dbhz):
            raise ConfigurationError("floor_dbhz must be finite")
        self.ramp_db_per_second = float(ramp_db_per_second)
        self.floor_dbhz = float(floor_dbhz)

    def _params(self) -> Dict:
        return {
            "ramp_db_per_second": self.ramp_db_per_second,
            "floor_dbhz": self.floor_dbhz,
            "onset_seconds": self.onset_seconds,
        }

    def apply(self, epoch, rng):
        depth = self.ramp_db_per_second * self.elapsed(epoch)
        if depth == 0.0:
            return epoch
        return epoch.with_observations(
            _unvalidated_observation(
                obs,
                cn0_dbhz=(
                    max(obs.cn0_dbhz - depth, self.floor_dbhz)
                    if obs.cn0_dbhz is not None
                    else None
                ),
            )
            for obs in epoch.observations
        )


#: Registry of injectable faults by name (CLI ``--inject`` choices).
FAULT_REGISTRY = {
    cls.name: cls
    for cls in (
        PseudorangeSpike,
        ClockJump,
        SatelliteDropout,
        NonFiniteMeasurement,
        DuplicateSatellite,
        Meaconing,
        SlowPositionDrag,
        ClockPull,
        JammingRamp,
    )
}

#: The spoof/interference subset (the chaos campaign's attack menu).
SPOOF_FAULTS = {
    name: cls
    for name, cls in FAULT_REGISTRY.items()
    if issubclass(cls, SpoofFault)
}


def fault_from_spec(spec: Dict) -> FaultProfile:
    """Rebuild a fault profile from its :meth:`FaultProfile.spec` dict."""
    data = dict(spec)
    name = data.pop("name", None)
    if name == CompositeFault.name:
        return CompositeFault(
            [fault_from_spec(sub) for sub in data.get("profiles", [])]
        )
    if name not in FAULT_REGISTRY:
        raise ConfigurationError(
            f"unknown fault profile {name!r}; valid profiles: "
            f"{', '.join(sorted(FAULT_REGISTRY))} (or 'composite')"
        )
    try:
        return FAULT_REGISTRY[name](**data)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for fault profile {name!r}: {exc}"
        ) from None
