"""Composable observation-fault injection.

A :class:`FaultProfile` is a deterministic, serializable perturbation
of an :class:`~repro.observations.ObservationEpoch`: pseudorange
spikes, satellite dropouts, NaN/Inf measurements, clock jumps,
duplicated satellites.  Profiles compose with ``|`` (apply left, then
right) and round-trip through :meth:`FaultProfile.spec` /
:func:`fault_from_spec`, which is how a fuzz artifact records *exactly*
which corruption produced a failure.

Two families of faults exist, and they are checked differently:

* **semantic** faults (spikes, clock jumps) keep the epoch structurally
  valid but corrupt its measurements — solvers are expected to *answer*
  (and typically disagree with truth / each other; the differential
  oracle attributes that to the fault);
* **structural** faults (NaN/Inf, undersized dropouts, duplicate PRNs)
  violate the data-model contract itself.  The validating constructors
  of :mod:`repro.observations` refuse to build such epochs, so the
  injector deliberately constructs them through ``object.__new__`` —
  exactly what a buggy decoder or a corrupted wire message would hand
  the pipeline.  The uniform input guard
  (:func:`repro.observations.epoch_integrity_error`) exists because
  this injector proved such epochs previously reached the solvers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch, SatelliteObservation

#: Structural faults are expected to be *rejected* by guarded entry
#: points; semantic faults are expected to be *answered* (wrongly).
EXPECT_REJECTED = "rejected"
EXPECT_ANSWERED = "answered"


def _unvalidated_observation(template: SatelliteObservation, **overrides) -> SatelliteObservation:
    """A SatelliteObservation built *without* constructor validation.

    Fault injection must be able to express states the validating
    constructor forbids (NaN pseudoranges, non-finite positions); this
    mirrors how unvalidated data enters a real pipeline through a
    decoder that trusts its input.
    """
    observation = object.__new__(SatelliteObservation)
    for fld in (
        "prn",
        "position",
        "pseudorange",
        "elevation",
        "azimuth",
        "carrier_range",
        "pseudorange_l2",
        "range_rate",
        "velocity",
    ):
        value = overrides.get(fld, getattr(template, fld))
        object.__setattr__(observation, fld, value)
    return observation


def _unvalidated_epoch(
    template: ObservationEpoch, observations: Sequence[SatelliteObservation]
) -> ObservationEpoch:
    """An ObservationEpoch built without the duplicate-PRN/empty checks."""
    epoch = object.__new__(ObservationEpoch)
    object.__setattr__(epoch, "time", template.time)
    object.__setattr__(epoch, "observations", tuple(observations))
    object.__setattr__(epoch, "truth", template.truth)
    return epoch


class FaultProfile(ABC):
    """One deterministic epoch perturbation."""

    #: Short registry key, also the CLI spelling (``--inject``).
    name: str = "?"

    #: :data:`EXPECT_REJECTED` or :data:`EXPECT_ANSWERED` — how guarded
    #: entry points are expected to treat the faulted epoch.
    expectation: str = EXPECT_ANSWERED

    @abstractmethod
    def apply(
        self, epoch: ObservationEpoch, rng: np.random.Generator
    ) -> ObservationEpoch:
        """The faulted epoch (the input epoch is never mutated)."""

    def spec(self) -> Dict:
        """JSON-ready description, replayable via :func:`fault_from_spec`."""
        return {"name": self.name, **self._params()}

    def _params(self) -> Dict:
        return {}

    def __or__(self, other: "FaultProfile") -> "CompositeFault":
        """Compose: apply ``self`` first, then ``other``."""
        return CompositeFault((self, other))


class PseudorangeSpike(FaultProfile):
    """Add a large bias to one (or more) random pseudoranges.

    The classic undetected-fault shape RAIM exists for: measurements
    stay finite and plausible, the solution silently walks away.
    """

    name = "spike"
    expectation = EXPECT_ANSWERED

    def __init__(self, magnitude_meters: float = 5.0e4, count: int = 1) -> None:
        if not np.isfinite(magnitude_meters) or magnitude_meters <= 0:
            raise ConfigurationError("magnitude_meters must be positive and finite")
        if count < 1:
            raise ConfigurationError("count must be at least 1")
        self.magnitude_meters = float(magnitude_meters)
        self.count = int(count)

    def _params(self) -> Dict:
        return {"magnitude_meters": self.magnitude_meters, "count": self.count}

    def apply(self, epoch, rng):
        hit = set(
            rng.choice(len(epoch), size=min(self.count, len(epoch)), replace=False)
        )
        observations = [
            _unvalidated_observation(
                obs, pseudorange=obs.pseudorange + self.magnitude_meters
            )
            if index in hit
            else obs
            for index, obs in enumerate(epoch.observations)
        ]
        return epoch.with_observations(observations)


class ClockJump(FaultProfile):
    """Shift *every* pseudorange by a common step (meters).

    Simulates a receiver clock reset the bias predictor has not seen
    yet — the Section 5.2.2 failure mode the receiver's residual gate
    watches for.  Solvers that estimate the bias (NR, Bancroft) absorb
    it; closed-form solvers fed a stale prediction do not.
    """

    name = "clock_jump"
    expectation = EXPECT_ANSWERED

    def __init__(self, jump_meters: float = 2.99792458e5) -> None:
        if not np.isfinite(jump_meters) or jump_meters == 0.0:
            raise ConfigurationError("jump_meters must be finite and nonzero")
        self.jump_meters = float(jump_meters)

    def _params(self) -> Dict:
        return {"jump_meters": self.jump_meters}

    def apply(self, epoch, rng):
        return epoch.with_observations(
            _unvalidated_observation(obs, pseudorange=obs.pseudorange + self.jump_meters)
            for obs in epoch.observations
        )


class SatelliteDropout(FaultProfile):
    """Remove random satellites, possibly leaving an undersized epoch."""

    name = "dropout"
    #: Dropping below four satellites must be uniformly rejected (or
    #: NaN-dropped) by the guarded entry points.
    expectation = EXPECT_REJECTED

    def __init__(self, remaining: int = 3) -> None:
        if remaining < 1:
            raise ConfigurationError("remaining must be at least 1")
        self.remaining = int(remaining)

    def _params(self) -> Dict:
        return {"remaining": self.remaining}

    def apply(self, epoch, rng):
        keep = min(self.remaining, len(epoch))
        order = list(rng.permutation(len(epoch)))
        return epoch.subset(keep, order)


class NonFiniteMeasurement(FaultProfile):
    """Corrupt one observation with NaN or infinity.

    ``field`` selects what breaks: the pseudorange or one satellite
    position component — both shapes a corrupted ephemeris decode or a
    DSP glitch produces in practice.
    """

    name = "non_finite"
    expectation = EXPECT_REJECTED

    def __init__(self, value: str = "nan", target: str = "pseudorange") -> None:
        if value not in ("nan", "inf", "-inf"):
            raise ConfigurationError("value must be 'nan', 'inf', or '-inf'")
        if target not in ("pseudorange", "position"):
            raise ConfigurationError("target must be 'pseudorange' or 'position'")
        self.value = value
        self.target = target

    def _params(self) -> Dict:
        return {"value": self.value, "target": self.target}

    def apply(self, epoch, rng):
        poison = {"nan": float("nan"), "inf": float("inf"), "-inf": float("-inf")}[
            self.value
        ]
        hit = int(rng.integers(len(epoch)))
        observations = list(epoch.observations)
        victim = observations[hit]
        if self.target == "pseudorange":
            observations[hit] = _unvalidated_observation(victim, pseudorange=poison)
        else:
            position = np.array(victim.position, dtype=float)
            position[int(rng.integers(3))] = poison
            observations[hit] = _unvalidated_observation(victim, position=position)
        return _unvalidated_epoch(epoch, observations)


class DuplicateSatellite(FaultProfile):
    """Repeat one observation verbatim (duplicate PRN included).

    A double-counted satellite silently re-weights every estimator; the
    data-model contract forbids it, so guarded entry points must refuse
    the epoch rather than return a quietly biased fix.
    """

    name = "duplicate"
    expectation = EXPECT_REJECTED

    def apply(self, epoch, rng):
        hit = int(rng.integers(len(epoch)))
        observations = list(epoch.observations) + [epoch.observations[hit]]
        return _unvalidated_epoch(epoch, observations)


class CompositeFault(FaultProfile):
    """Left-to-right composition of fault profiles."""

    name = "composite"

    def __init__(self, profiles: Sequence[FaultProfile]) -> None:
        if not profiles:
            raise ConfigurationError("a composite fault needs at least one profile")
        self.profiles: Tuple[FaultProfile, ...] = tuple(profiles)

    @property
    def expectation(self) -> str:  # type: ignore[override]
        """Rejected if any component demands rejection."""
        if any(p.expectation == EXPECT_REJECTED for p in self.profiles):
            return EXPECT_REJECTED
        return EXPECT_ANSWERED

    def spec(self) -> Dict:
        return {"name": self.name, "profiles": [p.spec() for p in self.profiles]}

    def apply(self, epoch, rng):
        for profile in self.profiles:
            epoch = profile.apply(epoch, rng)
        return epoch

    def __or__(self, other: FaultProfile) -> "CompositeFault":
        return CompositeFault(self.profiles + (other,))


#: Registry of injectable faults by name (CLI ``--inject`` choices).
FAULT_REGISTRY = {
    cls.name: cls
    for cls in (
        PseudorangeSpike,
        ClockJump,
        SatelliteDropout,
        NonFiniteMeasurement,
        DuplicateSatellite,
    )
}


def fault_from_spec(spec: Dict) -> FaultProfile:
    """Rebuild a fault profile from its :meth:`FaultProfile.spec` dict."""
    data = dict(spec)
    name = data.pop("name", None)
    if name == CompositeFault.name:
        return CompositeFault(
            [fault_from_spec(sub) for sub in data.get("profiles", [])]
        )
    if name not in FAULT_REGISTRY:
        raise ConfigurationError(f"unknown fault profile {name!r}")
    return FAULT_REGISTRY[name](**data)
