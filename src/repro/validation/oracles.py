"""Differential oracles: every solver path, one scenario, one verdict.

The repo's central invariant — the paper's core claim — is that the
closed-form solvers are drop-in replacements for Newton-Raphson with
bounded accuracy loss.  The oracle operationalizes that: run **every**
solver path (scalar NR/DLO/DLG/Bancroft and the stacked batch
implementations) on the same epoch and demand pairwise agreement within
a *geometry-scaled* tolerance.  On a noise-free scenario the truth
position joins the comparison as one more "solver", so absolute
correctness and cross-implementation consistency are checked by the
same machinery.

Tolerances are explicit, not hand-waved: noise-free disagreement
between exact-arithmetic-equivalent solvers is pure floating-point
error, which grows linearly with the condition number of the
differenced design (the solvers solve normal equations, but the
observed error tracks ``cond(A)``, not ``cond(A)^2``, because the
right-hand side is consistent to machine precision).  The model

    tol = floor + rate * cond(A)   [+ noise term]

was calibrated empirically over 4000 generator scenarios (max observed
error ``~3e-7 * cond`` meters at GPS ranges); the shipped ``rate``
carries a ~30x safety margin and the ``floor`` sits above NR's 1e-4 m
update-norm stopping tolerance.  A genuine solver bug — wrong base
handling, a sign slip, a broken whitening — lands meters-to-kilometers
away and cannot hide under this model.

Solvers may also *reject* an epoch (raise a
:class:`~repro.errors.ReproError` subclass).  A rejection is recorded,
never silently ignored, but it is not a disagreement: near-singular
geometry legitimately fails loudly in some formulations before others.
Any non-``ReproError`` exception propagates — that is a crash, and the
fuzz harness files it as one.

**Four-satellite ambiguity.**  With exactly four satellites the
pseudorange system has *two* exact solutions (the paper's Section 3.1
trilateration ambiguity), and nothing in the measurements
distinguishes them — NR's cold start at the earth's center sometimes
converges to the mirror root (this harness found that on its first
night out).  A pair separated beyond tolerance where **both** fixes
reproduce every pseudorange to sub-centimeter is therefore classified
as an :attr:`~DifferentialReport.ambiguities` entry, not a
disagreement: both answers are correct by the problem definition.
With five or more satellites the redundancy breaks the tie and the
ambiguity path never triggers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.api import SolverConfig
from repro.api import solve as api_solve
from repro.api import solve_batch as api_solve_batch
from repro.errors import ConfigurationError, ReproError
from repro.observations import ObservationEpoch
from repro.validation.scenarios import Scenario

#: Every per-epoch solver path the oracle exercises.
ORACLE_PATHS: Tuple[str, ...] = (
    "nr",
    "dlo",
    "dlg",
    "bancroft",
    "batch_nr",
    "batch_dlo",
    "batch_dlg",
)

#: Solver paths with a per-constellation mode (Bancroft's closed form
#: is single-clock by construction and has none).
MULTI_ORACLE_PATHS: Tuple[str, ...] = (
    "nr",
    "dlo",
    "dlg",
    "batch_nr",
    "batch_dlo",
    "batch_dlg",
)

#: Tolerance floor (meters): above NR's update-norm stopping
#: criterion, so NR's own truncation can never register as disagreement.
TOLERANCE_FLOOR_METERS = 5e-3

#: NR stopping tolerance used *inside the oracle* (meters) — the
#: library default, deliberately.  NR judges convergence on the
#: **update** norm, whose floor is the rounding error of the
#: normal-equation solve, ~``cond(J) * eps * range`` meters; on
#: near-coplanar four-satellite skies that floor exceeds 1e-5, so a
#: tighter stop limit-cycles and NR reports non-convergence for a fix
#: whose post-fit residual is already ~5e-9 m.  (Measured: at 1e-5,
#: 3 of 72 satellite-order permutations of three near-coplanar fuzz
#: seeds failed spuriously; at 1e-4, none.)
_ORACLE_NR_TOLERANCE = 1e-4

#: Residual bound (meters) under which a fix counts as an *exact*
#: solution of the measurements — the four-satellite ambiguity test.
#: Noise-free float error sits near 1e-7 m; a genuinely wrong fix
#: misses by kilometers.
_EXACT_RESIDUAL_METERS = 1e-2

#: Meters of allowed disagreement per unit condition number of the
#: differenced design.  Measured noise-free worst case: ~3e-7 * cond.
TOLERANCE_CONDITION_RATE = 1e-5

#: Extra meters of allowed disagreement per meter of pseudorange noise
#: sigma.  DLO is *designed* to be suboptimal under noise (Theorem 4.1),
#: so noisy estimator outputs legitimately spread by O(sigma * DOP).
TOLERANCE_NOISE_RATE = 40.0


def agreement_tolerance(scenario: Scenario) -> float:
    """Geometry-scaled cross-solver agreement tolerance (meters)."""
    tolerance = TOLERANCE_FLOOR_METERS + TOLERANCE_CONDITION_RATE * scenario.conditioning
    if scenario.config.noise_sigma:
        tolerance += TOLERANCE_NOISE_RATE * scenario.config.noise_sigma * max(
            1.0, scenario.conditioning
        )
    return float(tolerance)


@dataclass(frozen=True)
class SolverOutcome:
    """What one solver path did with the scenario epoch."""

    path: str
    position: Optional[np.ndarray]
    clock_bias: Optional[float]
    error: Optional[str] = None

    @property
    def answered(self) -> bool:
        """Whether the path produced a (finite) position."""
        return self.position is not None


@dataclass(frozen=True)
class Disagreement:
    """One solver pair separated beyond the tolerance."""

    path_a: str
    path_b: str
    separation_meters: float
    tolerance_meters: float

    def describe(self) -> str:
        """Human-readable one-liner for reports and artifacts."""
        return (
            f"{self.path_a} vs {self.path_b}: "
            f"{self.separation_meters:.6g} m > tol {self.tolerance_meters:.3g} m"
        )


@dataclass(frozen=True)
class DifferentialReport:
    """The oracle verdict for one scenario."""

    seed: int
    satellite_count: int
    conditioning: float
    tolerance_meters: float
    outcomes: Tuple[SolverOutcome, ...]
    disagreements: Tuple[Disagreement, ...]
    ambiguities: Tuple[Disagreement, ...]
    max_separation_meters: float

    @property
    def agreed(self) -> bool:
        """No pair exceeded the tolerance (explained ambiguities aside)."""
        return not self.disagreements

    @property
    def rejections(self) -> Tuple[str, ...]:
        """Paths that raised instead of answering."""
        return tuple(o.path for o in self.outcomes if not o.answered)

    def to_dict(self) -> Dict:
        """JSON-ready form for artifacts and telemetry snapshots."""
        return {
            "seed": self.seed,
            "satellite_count": self.satellite_count,
            "conditioning": self.conditioning,
            "tolerance_meters": self.tolerance_meters,
            "max_separation_meters": self.max_separation_meters,
            "rejections": list(self.rejections),
            "disagreements": [d.describe() for d in self.disagreements],
            "ambiguities": [d.describe() for d in self.ambiguities],
        }


def _exact_solution(
    epoch: ObservationEpoch, position: np.ndarray, clock_bias: Optional[float]
) -> bool:
    """Whether (position, bias) reproduces every pseudorange exactly.

    "Exactly" means to within :data:`_EXACT_RESIDUAL_METERS` — the
    four-satellite ambiguity test.  A fix without a usable bias (or a
    non-finite one) cannot certify exactness.
    """
    if clock_bias is None or not np.isfinite(clock_bias):
        return False
    ranges = np.linalg.norm(
        epoch.satellite_positions() - np.asarray(position, dtype=float), axis=1
    )
    residuals = ranges + clock_bias - epoch.pseudoranges()
    return bool(np.max(np.abs(residuals)) < _EXACT_RESIDUAL_METERS)


#: Max post-fit residual (meters) above which an NR "fix" is a spurious
#: stationary point, not a solution.  A genuine fix on a generator
#: scenario leaves sub-meter residuals (noise-free ~1e-7 m, noisy a few
#: sigma); NR cold-started from the earth's center occasionally stalls
#: at a stationary point of the least-squares loss ~1e7 m from the
#: receiver, where residuals are kilometers.  The gate converts that
#: wrong-basin "convergence" into a recorded rejection instead of a
#: phantom cross-solver disagreement.
_NR_SPURIOUS_RESIDUAL_METERS = 1e3


def _gate_nr_fix(
    epoch: ObservationEpoch, position: np.ndarray, clock_bias: float
) -> Tuple[np.ndarray, float]:
    """Reject NR fixes whose post-fit residuals betray a wrong basin."""
    ranges = np.linalg.norm(
        epoch.satellite_positions() - np.asarray(position, dtype=float), axis=1
    )
    worst = float(np.max(np.abs(ranges + clock_bias - epoch.pseudoranges())))
    if not np.isfinite(worst) or worst > _NR_SPURIOUS_RESIDUAL_METERS:
        raise ReproError(
            "NR converged to a spurious stationary point "
            f"(max post-fit residual {worst:.6g} m)"
        )
    return position, clock_bias


def _solver_runners(
    bias_meters: float,
) -> Dict[str, Callable[[ObservationEpoch], Tuple[np.ndarray, Optional[float]]]]:
    """Uniform ``epoch -> (position, clock_bias)`` adapters per path.

    Every path is built through the :mod:`repro.api` facade, so the
    fuzzer cross-checks exactly the construction production callers
    use — a facade wiring bug fails the oracle like any solver bug.
    """
    nr_config = SolverConfig(
        algorithm="nr", tolerance_meters=_ORACLE_NR_TOLERANCE
    )
    configs = {
        "dlo": SolverConfig(algorithm="dlo", clock_bias_meters=bias_meters),
        "dlg": SolverConfig(algorithm="dlg", clock_bias_meters=bias_meters),
        "bancroft": SolverConfig(algorithm="bancroft"),
    }

    def scalar(config):
        def run(epoch):
            fix = api_solve(epoch, config)
            return fix.position, fix.clock_bias_meters

        return run

    def scalar_nr(epoch):
        fix = api_solve(epoch, nr_config)
        return _gate_nr_fix(epoch, fix.position, fix.clock_bias_meters)

    def batch_nr(epoch):
        record = nr_config.build_batch_solver().solve_batch_full([epoch])
        if not bool(record.converged[0]):
            raise ReproError("batched NR did not converge for the scenario epoch")
        return _gate_nr_fix(epoch, record.positions[0], float(record.clock_biases[0]))

    def batch_closed(config):
        def run(epoch):
            positions = api_solve_batch([epoch], config)
            return positions[0], bias_meters

        return run

    return {
        "nr": scalar_nr,
        "dlo": scalar(configs["dlo"]),
        "dlg": scalar(configs["dlg"]),
        "bancroft": scalar(configs["bancroft"]),
        "batch_nr": batch_nr,
        "batch_dlo": batch_closed(configs["dlo"]),
        "batch_dlg": batch_closed(configs["dlg"]),
    }


def _multi_solver_runners() -> Dict[
    str, Callable[[ObservationEpoch], Tuple[np.ndarray, Optional[float]]]
]:
    """Per-constellation counterparts of :func:`_solver_runners`.

    Every path estimates its own per-system biases, so no predicted
    bias is handed in; the returned "clock bias" is the first system's,
    matching :attr:`~repro.validation.scenarios.Scenario.
    clock_bias_meters` semantics.
    """
    nr_config = SolverConfig(
        algorithm="nr",
        tolerance_meters=_ORACLE_NR_TOLERANCE,
        constellations="per_constellation",
    )
    configs = {
        algorithm: SolverConfig(
            algorithm=algorithm, constellations="per_constellation"
        )
        for algorithm in ("dlo", "dlg")
    }

    def scalar(config):
        def run(epoch):
            fix = api_solve(epoch, config)
            return fix.position, fix.clock_bias_meters

        return run

    def scalar_nr(epoch):
        fix = api_solve(epoch, nr_config)
        return _gate_multi_nr_fix(epoch, fix.position, fix.clock_biases)

    def batch_nr(epoch):
        record = nr_config.build_batch_solver().solve_batch_full([epoch])
        if not bool(record.converged[0]):
            raise ReproError("batched NR did not converge for the scenario epoch")
        return _gate_multi_nr_fix(
            epoch,
            record.positions[0],
            tuple(zip(record.systems, record.constellation_biases[0])),
        )

    def batch_closed(config):
        def run(epoch):
            positions = api_solve_batch([epoch], config)
            return positions[0], None

        return run

    return {
        "nr": scalar_nr,
        "dlo": scalar(configs["dlo"]),
        "dlg": scalar(configs["dlg"]),
        "batch_nr": batch_nr,
        "batch_dlo": batch_closed(configs["dlo"]),
        "batch_dlg": batch_closed(configs["dlg"]),
    }


def _gate_multi_nr_fix(epoch, position, clock_biases):
    """The multi-constellation twin of :func:`_gate_nr_fix`."""
    biases = dict(clock_biases or ())
    positions, pseudoranges, _prns, _ids = epoch.dense()
    ranges = np.linalg.norm(
        positions - np.asarray(position, dtype=float), axis=1
    )
    per_row = np.array([biases.get(obs.system, np.nan) for obs in epoch])
    worst = float(np.max(np.abs(ranges + per_row - pseudoranges)))
    if not np.isfinite(worst) or worst > _NR_SPURIOUS_RESIDUAL_METERS:
        raise ReproError(
            "per-constellation NR converged to a spurious stationary point "
            f"(max post-fit residual {worst:.6g} m)"
        )
    first = next(iter(biases.values())) if biases else None
    return position, first


def _cross_check(
    references: Sequence[Tuple[str, np.ndarray, Optional[float]]],
    tolerance: float,
    target: ObservationEpoch,
    ambiguity_possible: bool,
) -> Tuple[Tuple[Disagreement, ...], Tuple[Disagreement, ...], float]:
    """Pairwise position comparison shared by both differential modes."""
    disagreements = []
    ambiguities = []
    max_separation = 0.0
    for i, (path_a, pos_a, bias_a) in enumerate(references):
        for path_b, pos_b, bias_b in references[i + 1 :]:
            separation = float(np.linalg.norm(pos_a - pos_b))
            max_separation = max(max_separation, separation)
            if np.isfinite(separation) and separation <= tolerance:
                continue
            record = Disagreement(
                path_a=path_a,
                path_b=path_b,
                separation_meters=separation,
                tolerance_meters=tolerance,
            )
            if (
                ambiguity_possible
                and np.isfinite(separation)
                and _exact_solution(target, pos_a, bias_a)
                and _exact_solution(target, pos_b, bias_b)
            ):
                ambiguities.append(record)
            else:
                disagreements.append(record)
    return tuple(disagreements), tuple(ambiguities), max_separation


def run_multi_differential(
    scenario: Scenario,
    paths: Sequence[str] = MULTI_ORACLE_PATHS,
    tolerance_meters: Optional[float] = None,
    epoch: Optional[ObservationEpoch] = None,
    compare_truth: Optional[bool] = None,
) -> DifferentialReport:
    """The per-constellation twin of :func:`run_differential`.

    Runs every requested solver path in
    ``constellations="per_constellation"`` mode — each path estimates
    one clock bias per system present — and cross-checks positions
    under the same geometry-scaled tolerance.  The four-satellite
    mirror ambiguity cannot arise (per-constellation admissibility
    starts at five satellites), so every wide pair is a disagreement.
    """
    unknown = [p for p in paths if p not in MULTI_ORACLE_PATHS]
    if unknown:
        raise ConfigurationError(f"unknown multi oracle paths: {unknown}")
    target = epoch if epoch is not None else scenario.epoch
    if compare_truth is None:
        compare_truth = scenario.config.noise_sigma == 0.0 and epoch is None
    tolerance = (
        float(tolerance_meters)
        if tolerance_meters is not None
        else agreement_tolerance(scenario)
    )

    runners = _multi_solver_runners()
    outcomes = []
    for path in paths:
        try:
            position, clock_bias = runners[path](target)
        except ReproError as exc:
            outcomes.append(
                SolverOutcome(
                    path=path,
                    position=None,
                    clock_bias=None,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            outcomes.append(
                SolverOutcome(
                    path=path,
                    position=np.asarray(position, dtype=float),
                    clock_bias=clock_bias,
                )
            )

    references = [(o.path, o.position, o.clock_bias) for o in outcomes if o.answered]
    if compare_truth:
        references.append(
            ("truth", scenario.truth_position, scenario.clock_bias_meters)
        )
    disagreements, ambiguities, max_separation = _cross_check(
        references, tolerance, target, ambiguity_possible=False
    )

    return DifferentialReport(
        seed=scenario.seed,
        satellite_count=scenario.satellite_count,
        conditioning=scenario.conditioning,
        tolerance_meters=tolerance,
        outcomes=tuple(outcomes),
        disagreements=disagreements,
        ambiguities=ambiguities,
        max_separation_meters=max_separation,
    )


def run_differential(
    scenario: Scenario,
    paths: Sequence[str] = ORACLE_PATHS,
    tolerance_meters: Optional[float] = None,
    epoch: Optional[ObservationEpoch] = None,
    compare_truth: Optional[bool] = None,
) -> DifferentialReport:
    """Run every requested solver path and cross-check the answers.

    Parameters
    ----------
    scenario:
        The generated scenario (supplies seed, truth, conditioning, and
        the clock bias handed to the closed-form paths).
    paths:
        Subset of :data:`ORACLE_PATHS` to exercise.
    tolerance_meters:
        Override of :func:`agreement_tolerance`.
    epoch:
        Optional replacement epoch (e.g. a fault-injected variant);
        defaults to the scenario's own epoch.
    compare_truth:
        Include the truth position as a reference point.  Defaults to
        true exactly when the scenario is noise-free **and** no
        replacement epoch was supplied — a faulted epoch is *supposed*
        to miss the truth.
    """
    unknown = [p for p in paths if p not in ORACLE_PATHS]
    if unknown:
        raise ConfigurationError(f"unknown oracle paths: {unknown}")
    target = epoch if epoch is not None else scenario.epoch
    if compare_truth is None:
        compare_truth = scenario.config.noise_sigma == 0.0 and epoch is None
    tolerance = (
        float(tolerance_meters)
        if tolerance_meters is not None
        else agreement_tolerance(scenario)
    )

    runners = _solver_runners(scenario.clock_bias_meters)
    outcomes = []
    for path in paths:
        try:
            position, clock_bias = runners[path](target)
        except ReproError as exc:
            outcomes.append(
                SolverOutcome(
                    path=path,
                    position=None,
                    clock_bias=None,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
        else:
            outcomes.append(
                SolverOutcome(
                    path=path,
                    position=np.asarray(position, dtype=float),
                    clock_bias=clock_bias,
                )
            )

    references = [(o.path, o.position, o.clock_bias) for o in outcomes if o.answered]
    if compare_truth:
        references.append(
            ("truth", scenario.truth_position, scenario.clock_bias_meters)
        )

    # With exactly four satellites the system has two exact roots; a
    # wide pair where both members reproduce the measurements exactly is
    # the trilateration ambiguity, not an implementation disagreement.
    disagreements, ambiguities, max_separation = _cross_check(
        references,
        tolerance,
        target,
        ambiguity_possible=target.satellite_count == 4,
    )

    return DifferentialReport(
        seed=scenario.seed,
        satellite_count=scenario.satellite_count,
        conditioning=scenario.conditioning,
        tolerance_meters=tolerance,
        outcomes=tuple(outcomes),
        disagreements=disagreements,
        ambiguities=ambiguities,
        max_separation_meters=max_separation,
    )


@dataclass(frozen=True)
class StreamCheckReport:
    """Verdict of the engine/parallel-path stream consistency check."""

    epochs: int
    max_engine_separation_meters: float
    max_replay_separation_meters: float
    disagreements: Tuple[str, ...]
    #: Seeds excluded because a scalar reference path rejected the epoch
    #: (cold-start NR divergence, singular geometry): with no scalar
    #: answer there is nothing for the bulk paths to agree *with*.  Not
    #: silent — the per-scenario differential already recorded each
    #: rejection.
    skipped_seeds: Tuple[int, ...] = ()

    @property
    def agreed(self) -> bool:
        """No engine or replay row exceeded its tolerance."""
        return not self.disagreements


def run_stream_differential(
    scenarios: Sequence[Scenario],
    workers: int = 2,
) -> StreamCheckReport:
    """Cross-check the bulk paths against the scalar solvers.

    Feeds the scenarios' epochs as one mixed-count stream to
    :class:`~repro.engine.pipeline.PositioningEngine` (DLG and NR) and
    replays them through a chunked
    :class:`~repro.engine.parallel.ParallelReplay` of NR receivers,
    comparing every row against the scalar solve of the same epoch
    under each scenario's own geometry-scaled tolerance.

    The replay uses NR receivers deliberately: NR carries no cross-epoch
    state, so chunking must be *exactly* answer-preserving — any seam
    effect at all is a bug, not a tolerance question.

    Scenarios whose epoch the scalar reference solvers reject are
    excluded from the stream (reported via
    :attr:`StreamCheckReport.skipped_seeds`): without a scalar answer
    the bulk-vs-scalar comparison is undefined.
    """
    from repro.core.receiver import GpsReceiver
    from repro.engine import ParallelReplay, PositioningEngine

    if not scenarios:
        raise ConfigurationError("stream differential needs at least one scenario")

    # Every NR instance (scalar reference, engine batch, replay
    # receivers) runs at _ORACLE_NR_TOLERANCE, so the bulk paths stop
    # on exactly the criterion the scalar reference stopped on.
    nr_config = SolverConfig(algorithm="nr", tolerance_meters=_ORACLE_NR_TOLERANCE)
    scalar_nr = nr_config.build_solver()

    # The stream check asserts that the bulk paths reproduce the scalar
    # answers row for row.  A scenario the scalar solvers themselves
    # reject — NR cold-start divergence, a singular normal-equation
    # system on near-degenerate skies — has no reference answer, and
    # feeding it to the engine would abort the whole stream on a
    # failure the per-scenario differential already recorded as a
    # rejection.  Exclude it and report the seed.
    kept = []
    expected_rows = []  # (dlg_position, nr_position) per kept scenario
    skipped = []
    for scenario in scenarios:
        try:
            dlg_fix = api_solve(
                scenario.epoch,
                SolverConfig(
                    algorithm="dlg",
                    clock_bias_meters=scenario.clock_bias_meters,
                ),
            )
            nr_fix = scalar_nr.solve(scenario.epoch)
            _gate_nr_fix(scenario.epoch, nr_fix.position, nr_fix.clock_bias_meters)
        except ReproError:
            skipped.append(scenario.seed)
            continue
        kept.append(scenario)
        expected_rows.append((dlg_fix.position, nr_fix.position))

    if not kept:
        return StreamCheckReport(
            epochs=0,
            max_engine_separation_meters=0.0,
            max_replay_separation_meters=0.0,
            disagreements=(),
            skipped_seeds=tuple(skipped),
        )

    epochs = [s.epoch for s in kept]
    biases = [s.clock_bias_meters for s in kept]
    tolerances = [agreement_tolerance(s) for s in kept]
    disagreements = []
    max_engine = 0.0

    for algorithm, expected_index in (("dlg", 0), ("nr", 1)):
        engine = PositioningEngine(
            algorithm=algorithm,
            nr_solver=nr_config.build_batch_solver(),
        )
        result = engine.solve_stream(epochs, biases)
        for index, scenario in enumerate(kept):
            expected = expected_rows[index][expected_index]
            separation = float(np.linalg.norm(result.positions[index] - expected))
            max_engine = max(max_engine, separation)
            if not np.isfinite(separation) or separation > tolerances[index]:
                disagreements.append(
                    f"engine[{algorithm}] row {index} (seed {scenario.seed}): "
                    f"{separation:.6g} m > tol {tolerances[index]:.3g} m"
                )

    chunk_size = max(1, -(-len(epochs) // max(1, workers)))
    receiver_kwargs = {"algorithm": "nr", "nr_solver": scalar_nr}
    replay = ParallelReplay(
        receiver_kwargs=receiver_kwargs,
        workers=max(1, workers),
        backend="thread",
        chunk_size=chunk_size,
    )
    replayed = replay.replay(epochs)
    serial = GpsReceiver(**receiver_kwargs).process_many(epochs)
    max_replay = 0.0
    for index, (parallel_fix, serial_fix) in enumerate(zip(replayed, serial)):
        separation = float(np.linalg.norm(parallel_fix.position - serial_fix.position))
        max_replay = max(max_replay, separation)
        if not np.isfinite(separation) or separation > tolerances[index]:
            disagreements.append(
                f"parallel replay row {index} (seed {kept[index].seed}): "
                f"{separation:.6g} m vs serial receiver"
            )

    return StreamCheckReport(
        epochs=len(epochs),
        max_engine_separation_meters=max_engine,
        max_replay_separation_meters=max_replay,
        disagreements=tuple(disagreements),
        skipped_seeds=tuple(skipped),
    )
