"""Chaos-testing the batch FDE gate: seeded spikes, measured catch rate.

PR 3's fault injectors prove that corrupted epochs *reach* the
solvers; this module closes the loop with PR 5's integrity layer by
measuring whether the batch FDE gate actually *catches* them.  A run
is a pure function of its :class:`FdeChaosConfig`: scenarios are drawn
from :class:`~repro.validation.scenarios.ScenarioGenerator` at
consecutive seeds, a seed-derived coin decides which epochs get a
:class:`~repro.validation.faults.PseudorangeSpike`, and the whole
population is pushed through one FDE-armed
:class:`~repro.engine.PositioningEngine` stream solve — the exact
code path the service's integrity rung runs.

The report grades two things, and both are release gates
(``repro-gps fuzz --fde`` exits nonzero when either fails):

* **identification** — of the faulted epochs, how many came back
  ``repaired`` with *the injected satellite* excluded.  Detecting a
  fault but excluding the wrong satellite is counted against the
  gate: a wrong exclusion serves a fix that still contains the fault.
* **false alarms** — of the clean epochs, how many were flagged at
  all.  The chi-square gate is built to a ``p_false_alarm`` budget;
  chaos verifies the realized rate stays within a slack factor of it
  (the scenarios' noise is drawn at exactly ``sigma_meters``, so the
  test statistic is genuinely chi-square and the budget is testable).

The injected satellite is recovered by diffing the clean and faulted
pseudoranges rather than by instrumenting the injector — the fault
profile stays a black box, exactly as replayed fuzz artifacts use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.engine import PositioningEngine
from repro.errors import ConfigurationError
from repro.integrity import FdeConfig
from repro.validation.faults import PseudorangeSpike
from repro.validation.fuzzer import _FAULT_SEED_OFFSET
from repro.validation.scenarios import ScenarioConfig, ScenarioGenerator


@dataclass(frozen=True)
class FdeChaosConfig:
    """Everything one chaos run depends on (and its verdict records).

    Attributes
    ----------
    scenarios:
        Population size; faulted/clean split is decided per seed.
    start_seed:
        First scenario seed (seeds advance consecutively, so a run is
        fully described by ``(start_seed, scenarios)``).
    spike_meters:
        Magnitude of the injected pseudorange spike.  The headline
        gate is calibrated for ``>= 50`` m faults; smaller spikes sink
        into the noise floor and the identification floor stops being
        meaningful.
    fault_rate:
        Per-seed probability of injecting a spike (the seed-derived
        coin of the fuzz harness, so faulted populations match between
        ``fuzz --inject spike`` and ``fuzz --fde`` at equal seeds).
    sigma_meters, p_false_alarm:
        The FDE gate under test *and* the scenario noise level —
        keeping them equal makes the false-alarm budget a testable
        statement instead of a tuning accident.
    min_satellites, max_satellites:
        Constellation-size band.  The identification gate assumes
        ``m >= 6`` (exclusion needs a testable subset).
    max_flatness:
        Geometry-degradation ceiling.  Kept moderate by default:
        near-coplanar skies blunt any residual test's power, which is
        a property of the geometry, not a bug in the gate.
    identification_floor:
        Minimum fraction of faulted epochs repaired with the injected
        PRN excluded.
    false_alarm_slack:
        Allowed multiple of ``p_false_alarm`` for the realized clean
        flag rate.
    """

    scenarios: int = 400
    start_seed: int = 0
    spike_meters: float = 75.0
    fault_rate: float = 0.5
    sigma_meters: float = 3.0
    p_false_alarm: float = 0.01
    min_satellites: int = 6
    max_satellites: int = 12
    max_flatness: float = 0.5
    identification_floor: float = 0.95
    false_alarm_slack: float = 2.0

    def __post_init__(self) -> None:
        if self.scenarios < 1:
            raise ConfigurationError("scenarios must be at least 1")
        if not np.isfinite(self.spike_meters) or self.spike_meters <= 0:
            raise ConfigurationError("spike_meters must be positive and finite")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigurationError("fault_rate must be in [0, 1]")
        if self.sigma_meters <= 0:
            raise ConfigurationError("sigma_meters must be positive")
        if not 0.0 < self.p_false_alarm < 1.0:
            raise ConfigurationError("p_false_alarm must be in (0, 1)")
        if self.min_satellites < 6:
            raise ConfigurationError(
                "chaos identification needs exclusion redundancy; "
                "min_satellites must be >= 6"
            )
        if self.max_satellites < self.min_satellites:
            raise ConfigurationError("max_satellites must be >= min_satellites")
        if not 0.0 < self.identification_floor <= 1.0:
            raise ConfigurationError("identification_floor must be in (0, 1]")
        if self.false_alarm_slack < 1.0:
            raise ConfigurationError("false_alarm_slack must be >= 1")

    def to_dict(self) -> Dict:
        """JSON-ready form, embedded in the verdict artifact."""
        return {
            "scenarios": self.scenarios,
            "start_seed": self.start_seed,
            "spike_meters": self.spike_meters,
            "fault_rate": self.fault_rate,
            "sigma_meters": self.sigma_meters,
            "p_false_alarm": self.p_false_alarm,
            "min_satellites": self.min_satellites,
            "max_satellites": self.max_satellites,
            "max_flatness": self.max_flatness,
            "identification_floor": self.identification_floor,
            "false_alarm_slack": self.false_alarm_slack,
        }


@dataclass(frozen=True)
class FdeChaosCase:
    """One epoch the gate got wrong (kept small: seed + what happened)."""

    seed: int
    injected_prn: Optional[int]
    status: str
    excluded_prn: Optional[int]

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "injected_prn": self.injected_prn,
            "status": self.status,
            "excluded_prn": self.excluded_prn,
        }


@dataclass(frozen=True)
class FdeChaosReport:
    """Aggregate verdict of one chaos run.

    ``identified`` counts faulted epochs repaired with the injected
    PRN excluded; ``misidentified`` those repaired around the *wrong*
    satellite; ``detected_unrepaired`` those flagged but left
    ``unusable``; ``missed`` those the gate passed outright.  Clean
    epochs flagged in any way are ``false_alarms``.
    """

    config: FdeChaosConfig
    faulted: int
    identified: int
    misidentified: int
    detected_unrepaired: int
    missed: int
    clean: int
    false_alarms: int
    mistakes: Tuple[FdeChaosCase, ...]

    @property
    def identification_rate(self) -> float:
        """Fraction of faulted epochs repaired around the injected PRN."""
        return self.identified / self.faulted if self.faulted else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """Fraction of clean epochs flagged."""
        return self.false_alarms / self.clean if self.clean else 0.0

    @property
    def identification_ok(self) -> bool:
        """Whether the identification gate holds."""
        return self.identification_rate >= self.config.identification_floor

    @property
    def false_alarm_ok(self) -> bool:
        """Whether the realized false-alarm rate is within budget."""
        budget = self.config.false_alarm_slack * self.config.p_false_alarm
        return self.false_alarm_rate <= budget

    @property
    def ok(self) -> bool:
        """Whether both chaos gates hold."""
        return self.identification_ok and self.false_alarm_ok

    def to_dict(self) -> Dict:
        """The verdict artifact ``repro-gps fuzz --fde`` persists."""
        return {
            "config": self.config.to_dict(),
            "faulted": self.faulted,
            "identified": self.identified,
            "misidentified": self.misidentified,
            "detected_unrepaired": self.detected_unrepaired,
            "missed": self.missed,
            "clean": self.clean,
            "false_alarms": self.false_alarms,
            "identification_rate": self.identification_rate,
            "false_alarm_rate": self.false_alarm_rate,
            "gates": {
                "identification": {
                    "floor": self.config.identification_floor,
                    "rate": self.identification_rate,
                    "passed": self.identification_ok,
                },
                "false_alarm": {
                    "budget": self.config.false_alarm_slack
                    * self.config.p_false_alarm,
                    "rate": self.false_alarm_rate,
                    "passed": self.false_alarm_ok,
                },
            },
            "ok": self.ok,
            "mistakes": [case.to_dict() for case in self.mistakes],
        }


def _injected_prn(clean_epoch, faulted_epoch) -> int:
    """The PRN the spike landed on, recovered by diffing pseudoranges."""
    for clean, faulted in zip(clean_epoch.observations, faulted_epoch.observations):
        if faulted.pseudorange != clean.pseudorange:
            return int(faulted.prn)
    raise ConfigurationError("fault profile did not change any pseudorange")


def run_fde_chaos(config: Optional[FdeChaosConfig] = None) -> FdeChaosReport:
    """One chaos run: generate, corrupt, screen, grade.

    Every scenario epoch — spiked or clean — goes through a single
    FDE-armed :meth:`~repro.engine.PositioningEngine.solve_stream`
    call with the exact clock biases truth dictates, so the verdicts
    grade the gate alone, not the bias predictor.
    """
    config = config if config is not None else FdeChaosConfig()
    generator = ScenarioGenerator(
        ScenarioConfig(
            min_satellites=config.min_satellites,
            max_satellites=config.max_satellites,
            noise_sigma=config.sigma_meters,
            max_flatness=config.max_flatness,
        )
    )
    spike = PseudorangeSpike(magnitude_meters=config.spike_meters)

    seeds: List[int] = []
    epochs = []
    biases: List[float] = []
    injected: List[Optional[int]] = []
    for seed in range(config.start_seed, config.start_seed + config.scenarios):
        scenario = generator.generate(seed)
        fault_rng = np.random.default_rng(seed + _FAULT_SEED_OFFSET)
        epoch = scenario.epoch
        prn: Optional[int] = None
        if config.fault_rate > 0 and float(fault_rng.random()) < config.fault_rate:
            apply_rng = np.random.default_rng(seed + _FAULT_SEED_OFFSET + 1)
            faulted = spike.apply(epoch, apply_rng)
            prn = _injected_prn(epoch, faulted)
            epoch = faulted
        seeds.append(seed)
        epochs.append(epoch)
        biases.append(scenario.clock_bias_meters)
        injected.append(prn)

    engine = PositioningEngine(
        algorithm="dlg",
        fde_config=FdeConfig(
            sigma_meters=config.sigma_meters,
            p_false_alarm=config.p_false_alarm,
        ),
    )
    fde = engine.solve_stream(epochs, biases=biases).diagnostics.fde

    faulted = identified = misidentified = detected_unrepaired = missed = 0
    clean = false_alarms = 0
    mistakes: List[FdeChaosCase] = []
    for index, prn in enumerate(injected):
        verdict = fde.verdict(index)
        if prn is None:
            clean += 1
            if verdict.status == "passed":
                continue
            false_alarms += 1
        else:
            faulted += 1
            if verdict.status == "repaired" and verdict.excluded_prn == prn:
                identified += 1
                continue
            if verdict.status == "repaired":
                misidentified += 1
            elif verdict.status == "unusable":
                detected_unrepaired += 1
            else:
                missed += 1
        mistakes.append(
            FdeChaosCase(
                seed=seeds[index],
                injected_prn=prn,
                status=verdict.status,
                excluded_prn=verdict.excluded_prn,
            )
        )

    return FdeChaosReport(
        config=config,
        faulted=faulted,
        identified=identified,
        misidentified=misidentified,
        detected_unrepaired=detected_unrepaired,
        missed=missed,
        clean=clean,
        false_alarms=false_alarms,
        mistakes=tuple(mistakes),
    )
