"""The seeded fuzz harness: scenarios in bulk, failures as artifacts.

Drives the validation stack end to end: generate a scenario per seed,
optionally corrupt it with a fault profile, run the differential and
metamorphic oracles, and keep going until a time or scenario budget
runs out.  Everything is a pure function of ``(seed, FuzzConfig)``, so
a failing case persists as a small JSON artifact that
:func:`replay_artifact` reproduces exactly — no captured arrays, no
flaky reruns.

Case outcomes:

* ``pass`` — clean scenario, all oracles agreed;
* ``rejected`` — a structural fault was injected and the shared input
  guard (plus the guarded entry points) refused the epoch, as designed;
* ``explained`` — a semantic fault was injected and the solvers
  disagreed *because of it*; persisted as an artifact (the fault is the
  explanation) but not a failure;
* ``failed`` — an **unexplained** problem: a clean-scenario
  disagreement (``kind="disagreement"``), a broken transformation
  invariant (``"metamorphic"``), a corrupt epoch that sailed through
  the guards (``"unhandled_fault"``), or an exception that is not a
  :class:`~repro.errors.ReproError` (``"crash"``).

Every ``stream_check_every`` clean scenarios, the accumulated epochs
are additionally pushed through the bulk paths
(:func:`~repro.validation.oracles.run_stream_differential`) so the
engine's bucketing and the parallel replay's chunk seams get fuzzed
too, not just the per-epoch solvers.
"""

from __future__ import annotations

import json
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.receiver import GpsReceiver
from repro.errors import ConfigurationError, GeometryError
from repro.observations import epoch_integrity_error
from repro.telemetry import get_registry
from repro.validation.faults import (
    EXPECT_REJECTED,
    FAULT_REGISTRY,
    FaultProfile,
    fault_from_spec,
)
from repro.validation.metamorphic import run_metamorphic, run_relabeling
from repro.validation.oracles import (
    run_differential,
    run_multi_differential,
    run_stream_differential,
)
from repro.validation.scenarios import Scenario, ScenarioConfig, ScenarioGenerator

#: The unexplained-failure taxonomy (artifact ``kind`` values).
FUZZ_FAILURE_KINDS: Tuple[str, ...] = (
    "disagreement",
    "metamorphic",
    "unhandled_fault",
    "crash",
    "stream",
)

#: Offset mixed into the scenario seed for the fault stream, so fault
#: randomness never correlates with scenario randomness.
_FAULT_SEED_OFFSET = 0x5EED


@dataclass(frozen=True)
class FuzzConfig:
    """Everything one fuzz run depends on (and an artifact records).

    Attributes
    ----------
    budget_seconds:
        Wall-clock budget; the run stops at the first seed after it is
        exhausted.  ``None`` means no time limit.
    max_scenarios:
        Scenario-count budget; ``None`` means no count limit.  At
        least one of the two budgets must be set.
    start_seed:
        First scenario seed; seeds advance consecutively, so a run is
        fully described by ``(start_seed, scenarios_run)``.
    fault_rate:
        Probability (per scenario, from the scenario's own fault
        stream) of injecting a fault instead of running the clean
        oracles.
    fault:
        Optional fixed :class:`~repro.validation.faults.FaultProfile`
        to inject; by default each faulted scenario samples one from
        the registry with default parameters.
    scenario:
        The :class:`~repro.validation.scenarios.ScenarioConfig` of the
        generated population.
    artifacts_dir:
        Where failing/explained cases are persisted; ``None`` disables
        persistence.
    stream_check_every:
        Run the bulk-path stream check after this many accumulated
        clean scenarios.  ``0`` disables stream checks.
    """

    budget_seconds: Optional[float] = 60.0
    max_scenarios: Optional[int] = None
    start_seed: int = 0
    fault_rate: float = 0.0
    fault: Optional[FaultProfile] = None
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    artifacts_dir: Optional[Union[str, Path]] = None
    stream_check_every: int = 200

    def __post_init__(self) -> None:
        if self.budget_seconds is None and self.max_scenarios is None:
            raise ConfigurationError(
                "set budget_seconds and/or max_scenarios; an unbounded fuzz "
                "run never terminates"
            )
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ConfigurationError("budget_seconds must be positive")
        if self.max_scenarios is not None and self.max_scenarios < 1:
            raise ConfigurationError("max_scenarios must be at least 1")
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ConfigurationError("fault_rate must be in [0, 1]")
        if self.stream_check_every < 0:
            raise ConfigurationError("stream_check_every must be >= 0")


@dataclass(frozen=True)
class FuzzCaseResult:
    """Verdict for one seed (or one stream check)."""

    seed: int
    status: str  # "pass" | "rejected" | "explained" | "failed"
    kind: Optional[str] = None
    detail: Tuple[str, ...] = ()
    fault_spec: Optional[Dict] = None

    @property
    def failed(self) -> bool:
        """Whether this case is an *unexplained* failure."""
        return self.status == "failed"

    def to_dict(self) -> Dict:
        """JSON-ready form (artifact payload core)."""
        return {
            "seed": self.seed,
            "status": self.status,
            "kind": self.kind,
            "detail": list(self.detail),
            "fault": self.fault_spec,
        }


@dataclass(frozen=True)
class FuzzReport:
    """Aggregate outcome of one fuzz run."""

    scenarios: int
    passes: int
    rejected: int
    explained: int
    failures: Tuple[FuzzCaseResult, ...]
    artifact_paths: Tuple[str, ...]
    stream_checks: int
    elapsed_seconds: float

    @property
    def ok(self) -> bool:
        """Whether the run finished without unexplained failures."""
        return not self.failures

    def to_dict(self) -> Dict:
        """JSON-ready summary for logs and telemetry snapshots."""
        return {
            "scenarios": self.scenarios,
            "passes": self.passes,
            "rejected": self.rejected,
            "explained": self.explained,
            "failures": [f.to_dict() for f in self.failures],
            "artifacts": list(self.artifact_paths),
            "stream_checks": self.stream_checks,
            "elapsed_seconds": self.elapsed_seconds,
        }


class FuzzHarness:
    """Runs seeded scenarios through every oracle under a budget."""

    def __init__(self, config: Optional[FuzzConfig] = None) -> None:
        self._config = config if config is not None else FuzzConfig()
        self._generator = ScenarioGenerator(self._config.scenario)
        self._last_scenario: Optional[Scenario] = None
        # Multi-system populations fuzz the per-constellation solver
        # paths: the single-clock oracles would (correctly) disagree on
        # epochs whose pseudoranges carry several different biases.
        self._multi = len(self._config.scenario.systems) > 1

    @property
    def config(self) -> FuzzConfig:
        """The run configuration."""
        return self._config

    # ------------------------------------------------------------------
    def run_case(self, seed: int) -> FuzzCaseResult:
        """Fuzz one seed: the atom :meth:`run` iterates and replay reruns."""
        try:
            return self._run_case_inner(seed)
        except Exception:
            return FuzzCaseResult(
                seed=seed,
                status="failed",
                kind="crash",
                detail=tuple(traceback.format_exc().strip().splitlines()[-3:]),
            )

    def _run_case_inner(self, seed: int) -> FuzzCaseResult:
        scenario = self._generator.generate(seed)
        self._last_scenario = scenario
        fault_rng = np.random.default_rng(seed + _FAULT_SEED_OFFSET)

        inject = (
            self._config.fault_rate > 0
            and float(fault_rng.random()) < self._config.fault_rate
        )
        if inject:
            profile = self._config.fault
            if profile is None:
                name = sorted(FAULT_REGISTRY)[
                    int(fault_rng.integers(len(FAULT_REGISTRY)))
                ]
                profile = FAULT_REGISTRY[name]()
            # Application gets its own seed-derived stream so a replay
            # that supplies the recorded profile directly (skipping the
            # sampling draw above) still corrupts identically.
            apply_rng = np.random.default_rng(seed + _FAULT_SEED_OFFSET + 1)
            return self._run_faulted(scenario, profile, apply_rng)

        differential = run_multi_differential if self._multi else run_differential
        report = differential(scenario)
        if report.disagreements:
            return FuzzCaseResult(
                seed=seed,
                status="failed",
                kind="disagreement",
                detail=tuple(d.describe() for d in report.disagreements),
            )
        meta = (
            run_relabeling(scenario) if self._multi else run_metamorphic(scenario)
        )
        if meta.deviations:
            return FuzzCaseResult(
                seed=seed,
                status="failed",
                kind="metamorphic",
                detail=tuple(d.describe() for d in meta.deviations),
            )
        return FuzzCaseResult(seed=seed, status="pass")

    def _run_faulted(
        self,
        scenario: Scenario,
        profile: FaultProfile,
        apply_rng: np.random.Generator,
    ) -> FuzzCaseResult:
        faulted = profile.apply(scenario.epoch, apply_rng)
        spec = profile.spec()

        if profile.expectation == EXPECT_REJECTED:
            # The shared guard, and the guarded entry point, must both
            # refuse the epoch.  A corrupt epoch that gets answered is
            # exactly the bug class this harness exists to catch.
            problems = []
            if epoch_integrity_error(faulted) is None:
                problems.append("epoch_integrity_error saw nothing wrong")
            try:
                GpsReceiver(algorithm="nr").process(faulted)
            except GeometryError:
                pass
            else:
                problems.append("GpsReceiver.process answered a corrupt epoch")
            if problems:
                return FuzzCaseResult(
                    seed=scenario.seed,
                    status="failed",
                    kind="unhandled_fault",
                    detail=tuple(problems),
                    fault_spec=spec,
                )
            return FuzzCaseResult(
                seed=scenario.seed, status="rejected", fault_spec=spec
            )

        # Semantic fault: solvers answer; disagreement (or missing the
        # truth) is attributed to the fault and persisted as evidence.
        differential = run_multi_differential if self._multi else run_differential
        report = differential(scenario, epoch=faulted)
        if report.disagreements:
            return FuzzCaseResult(
                seed=scenario.seed,
                status="explained",
                kind="disagreement",
                detail=tuple(d.describe() for d in report.disagreements),
                fault_spec=spec,
            )
        return FuzzCaseResult(seed=scenario.seed, status="pass", fault_spec=spec)

    # ------------------------------------------------------------------
    def run(self) -> FuzzReport:
        """Fuzz seeds from ``start_seed`` until a budget runs out."""
        config = self._config
        registry = get_registry()
        started = time.monotonic()
        passes = rejected = explained = 0
        failures: List[FuzzCaseResult] = []
        artifact_paths: List[str] = []
        clean_buffer: List[Scenario] = []
        stream_checks = 0
        scenarios = 0

        seed = config.start_seed
        while True:
            if (
                config.budget_seconds is not None
                and time.monotonic() - started >= config.budget_seconds
            ):
                break
            if config.max_scenarios is not None and scenarios >= config.max_scenarios:
                break

            result = self.run_case(seed)
            scenarios += 1
            if registry.enabled:
                registry.counter(
                    "repro_fuzz_scenarios_total",
                    "Fuzzed scenarios by outcome.",
                    labels=("status",),
                ).labels(status=result.status).inc()
            if result.status == "pass":
                passes += 1
                # Stream checks drive the engine's predicted-bias
                # interface, which per-constellation scenarios do not
                # use; multi populations skip the bulk window.
                if (
                    result.fault_spec is None
                    and config.stream_check_every
                    and not self._multi
                    and self._last_scenario is not None
                ):
                    clean_buffer.append(self._last_scenario)
            elif result.status == "rejected":
                rejected += 1
            elif result.status == "explained":
                explained += 1
                artifact_paths.extend(self._persist(result))
            else:
                failures.append(result)
                if registry.enabled:
                    registry.counter(
                        "repro_fuzz_failures_total",
                        "Unexplained fuzz failures by kind.",
                        labels=("kind",),
                    ).labels(kind=result.kind or "unknown").inc()
                artifact_paths.extend(self._persist(result))

            if (
                config.stream_check_every
                and len(clean_buffer) >= config.stream_check_every
            ):
                stream_checks += 1
                stream_result = self._run_stream_check(clean_buffer)
                clean_buffer.clear()
                if stream_result is not None:
                    failures.append(stream_result)
                    artifact_paths.extend(self._persist(stream_result))

            seed += 1

        return FuzzReport(
            scenarios=scenarios,
            passes=passes,
            rejected=rejected,
            explained=explained,
            failures=tuple(failures),
            artifact_paths=tuple(artifact_paths),
            stream_checks=stream_checks,
            elapsed_seconds=time.monotonic() - started,
        )

    def _run_stream_check(
        self, scenarios: List[Scenario]
    ) -> Optional[FuzzCaseResult]:
        """Bulk-path consistency over recent clean scenarios (bounded)."""
        window = scenarios[-64:]
        try:
            report = run_stream_differential(window)
        except Exception:
            # A bulk path crashing on epochs every scalar path already
            # answered is itself a finding; record it against the
            # window like any other stream failure instead of killing
            # the whole run.
            return FuzzCaseResult(
                seed=window[0].seed,
                status="failed",
                kind="stream",
                detail=tuple(traceback.format_exc().strip().splitlines()[-3:]),
            )
        if report.agreed:
            return None
        return FuzzCaseResult(
            seed=window[0].seed,
            status="failed",
            kind="stream",
            detail=tuple(report.disagreements),
        )

    def _persist(self, result: FuzzCaseResult) -> List[str]:
        """Write one replayable artifact; the path list it returns."""
        if self._config.artifacts_dir is None:
            return []
        directory = Path(self._config.artifacts_dir)
        directory.mkdir(parents=True, exist_ok=True)
        payload = {
            **result.to_dict(),
            "scenario_config": self._config.scenario.to_dict(),
        }
        path = directory / f"{result.status}-seed-{result.seed}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        return [str(path)]


def replay_artifact(path: Union[str, Path]) -> FuzzCaseResult:
    """Re-run a persisted fuzz case from its artifact, deterministically.

    Rebuilds the scenario from ``(seed, scenario_config)`` and — for
    faulted cases — re-applies the recorded fault spec with the
    seed-derived fault stream, then runs the same checks
    :meth:`FuzzHarness.run` ran.  The returned verdict matches the
    recorded one field for field when the library is unchanged; a
    difference localizes exactly what a code change altered.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format") == "repro-flight-record-v1":
        # A flight-recorder incident artifact: same replay protocol,
        # but the inputs are a captured production epoch rather than a
        # (seed, config) pair.  Imported lazily — the recorder imports
        # the engine, not the other way around.
        from repro.telemetry.recorder import replay_incident

        return replay_incident(payload)
    config = ScenarioConfig.from_dict(payload["scenario_config"])
    seed = int(payload["seed"])
    fault = (
        fault_from_spec(payload["fault"]) if payload.get("fault") is not None else None
    )
    harness = FuzzHarness(
        FuzzConfig(
            budget_seconds=None,
            max_scenarios=1,
            start_seed=seed,
            fault_rate=1.0 if fault is not None else 0.0,
            fault=fault,
            scenario=config,
        )
    )
    if payload.get("kind") == "stream":
        # Stream artifacts record the first seed of the checked window;
        # rebuild the window and re-run the bulk comparison.
        generator = ScenarioGenerator(config)
        window = [generator.generate(seed + i) for i in range(64)]
        report = run_stream_differential(window)
        status = "pass" if report.agreed else "failed"
        return FuzzCaseResult(
            seed=seed,
            status=status,
            kind=None if report.agreed else "stream",
            detail=tuple(report.disagreements),
        )
    return harness.run_case(seed)
