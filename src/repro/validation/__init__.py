"""Differential validation, fault injection, and seeded fuzzing.

The subsystem that tests the rest of the library *against itself*:

* :mod:`repro.validation.scenarios` — randomized-but-reproducible
  observation epochs from a seed, spanning well-conditioned to
  near-coplanar geometry, with clock-bias sweeps;
* :mod:`repro.validation.faults` — composable, serializable epoch
  corruptions (spikes, dropouts, NaN/Inf, clock jumps, duplicates);
* :mod:`repro.validation.oracles` — every solver path on the same
  epoch, pairwise agreement under geometry-scaled tolerances, plus the
  bulk engine/parallel stream check;
* :mod:`repro.validation.metamorphic` — permutation invariance,
  translation equivariance, and clock-shift linearity per path;
* :mod:`repro.validation.fuzzer` — the seeded budget-driven harness
  behind ``repro-gps fuzz``, persisting failures as replayable JSON
  artifacts;
* :mod:`repro.validation.fdechaos` — the chaos loop behind
  ``repro-gps fuzz --fde``: seeded pseudorange spikes against the
  batch FDE gate, graded on injected-PRN identification and realized
  false-alarm rate;
* :mod:`repro.validation.monitorchaos` — the chaos loop behind
  ``repro-gps fuzz --spoof``: seeded spoofing/interference streams
  against the signal-plausibility monitor suite, graded on in-time
  detection and clean-stream false-alarm rate.
"""

from repro.validation.fdechaos import (
    FdeChaosCase,
    FdeChaosConfig,
    FdeChaosReport,
    run_fde_chaos,
)

from repro.validation.monitorchaos import (
    ATTACK_FAMILIES,
    FamilyStats,
    MonitorChaosCase,
    MonitorChaosConfig,
    MonitorChaosReport,
    run_monitor_chaos,
)

from repro.validation.faults import (
    EXPECT_ANSWERED,
    EXPECT_REJECTED,
    FAULT_REGISTRY,
    SPOOF_FAULTS,
    ClockJump,
    ClockPull,
    CompositeFault,
    DuplicateSatellite,
    FaultProfile,
    JammingRamp,
    Meaconing,
    NonFiniteMeasurement,
    PseudorangeSpike,
    SatelliteDropout,
    SlowPositionDrag,
    SpoofFault,
    fault_from_spec,
)
from repro.validation.fuzzer import (
    FUZZ_FAILURE_KINDS,
    FuzzCaseResult,
    FuzzConfig,
    FuzzHarness,
    FuzzReport,
    replay_artifact,
)
from repro.validation.metamorphic import (
    METAMORPHIC_INVARIANTS,
    MetamorphicDeviation,
    MetamorphicReport,
    relabeled_epoch,
    run_metamorphic,
    run_relabeling,
)
from repro.validation.oracles import (
    MULTI_ORACLE_PATHS,
    ORACLE_PATHS,
    TOLERANCE_CONDITION_RATE,
    TOLERANCE_FLOOR_METERS,
    TOLERANCE_NOISE_RATE,
    DifferentialReport,
    Disagreement,
    SolverOutcome,
    StreamCheckReport,
    agreement_tolerance,
    run_differential,
    run_multi_differential,
    run_stream_differential,
)
from repro.validation.scenarios import (
    Scenario,
    ScenarioConfig,
    ScenarioGenerator,
    scenario_with_noise,
)

__all__ = [
    "EXPECT_ANSWERED",
    "EXPECT_REJECTED",
    "FAULT_REGISTRY",
    "SPOOF_FAULTS",
    "ClockJump",
    "ClockPull",
    "CompositeFault",
    "DuplicateSatellite",
    "FaultProfile",
    "JammingRamp",
    "Meaconing",
    "NonFiniteMeasurement",
    "PseudorangeSpike",
    "SatelliteDropout",
    "SlowPositionDrag",
    "SpoofFault",
    "fault_from_spec",
    "FdeChaosCase",
    "FdeChaosConfig",
    "FdeChaosReport",
    "run_fde_chaos",
    "ATTACK_FAMILIES",
    "FamilyStats",
    "MonitorChaosCase",
    "MonitorChaosConfig",
    "MonitorChaosReport",
    "run_monitor_chaos",
    "FUZZ_FAILURE_KINDS",
    "FuzzCaseResult",
    "FuzzConfig",
    "FuzzHarness",
    "FuzzReport",
    "replay_artifact",
    "METAMORPHIC_INVARIANTS",
    "MetamorphicDeviation",
    "MetamorphicReport",
    "relabeled_epoch",
    "run_metamorphic",
    "run_relabeling",
    "MULTI_ORACLE_PATHS",
    "ORACLE_PATHS",
    "TOLERANCE_CONDITION_RATE",
    "TOLERANCE_FLOOR_METERS",
    "TOLERANCE_NOISE_RATE",
    "DifferentialReport",
    "Disagreement",
    "SolverOutcome",
    "StreamCheckReport",
    "agreement_tolerance",
    "run_differential",
    "run_multi_differential",
    "run_stream_differential",
    "Scenario",
    "ScenarioConfig",
    "ScenarioGenerator",
    "scenario_with_noise",
]
