"""UTC leap-second bookkeeping relative to the GPS time scale.

GPS time is a continuous atomic scale that was aligned with UTC at the
GPS epoch (1980-01-06).  UTC has since inserted leap seconds, so
``GPS - UTC`` grows by one second at each insertion.  The table below
lists the insertions at and after the GPS epoch; it is complete through
2017-01-01 (the most recent leap second as of writing).
"""

from __future__ import annotations

from typing import List, Tuple

# The table is easier to audit written as (UTC date, unix, GPS-UTC)
# triples.  The Unix timestamps are for 00:00:00 UTC on the date the new
# offset takes effect (the second *after* the leap second).
_LEAP_EVENTS: List[Tuple[str, int, int]] = [
    ("1981-07-01", 362793600, 1),
    ("1982-07-01", 394329600, 2),
    ("1983-07-01", 425865600, 3),
    ("1985-07-01", 489024000, 4),
    ("1988-01-01", 567993600, 5),
    ("1990-01-01", 631152000, 6),
    ("1991-01-01", 662688000, 7),
    ("1992-07-01", 709948800, 8),
    ("1993-07-01", 741484800, 9),
    ("1994-07-01", 773020800, 10),
    ("1996-01-01", 820454400, 11),
    ("1997-07-01", 867715200, 12),
    ("1999-01-01", 915148800, 13),
    ("2006-01-01", 1136073600, 14),
    ("2009-01-01", 1230768000, 15),
    ("2012-07-01", 1341100800, 16),
    ("2015-07-01", 1435708800, 17),
    ("2017-01-01", 1483228800, 18),
]

#: ``(unix_timestamp_of_insertion, cumulative_gps_minus_utc_seconds)``.
#: Each entry means: from this Unix instant (UTC) onward, GPS time leads
#: UTC by the given number of seconds.
LEAP_SECOND_TABLE: List[Tuple[int, int]] = [
    (unix, offset) for (_date, unix, offset) in _LEAP_EVENTS
]


def leap_seconds_at_unix(unix_seconds: float) -> int:
    """Return ``GPS - UTC`` in whole seconds at a Unix (UTC) instant.

    Instants before the first post-GPS-epoch leap second return 0.
    """
    offset = 0
    for effective_from, cumulative in LEAP_SECOND_TABLE:
        if unix_seconds >= effective_from:
            offset = cumulative
        else:
            break
    return offset
