"""The :class:`GpsTime` value type.

Everything in the simulator is timestamped in GPS time, expressed as a
(week number, seconds of week) pair exactly like broadcast ephemerides.
The class also supports plain arithmetic (``t + dt``, ``t2 - t1``), which
the clock models and the dataset generator use to step through a 24-hour
observation span one second at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.constants import GPS_EPOCH_UNIX, SECONDS_PER_WEEK
from repro.errors import ConfigurationError
from repro.timebase.leapseconds import leap_seconds_at_unix


@dataclass(frozen=True, order=True)
class GpsTime:
    """An instant on the continuous GPS time scale.

    Attributes
    ----------
    week:
        GPS week number counted from the GPS epoch (no 1024-week
        rollover is applied; this is the "full" week number).
    seconds_of_week:
        Seconds into the week, ``0 <= sow < 604800``.
    """

    week: int
    seconds_of_week: float

    def __post_init__(self) -> None:
        if self.week < 0:
            raise ConfigurationError(f"GPS week must be >= 0, got {self.week}")
        if not 0.0 <= self.seconds_of_week < SECONDS_PER_WEEK:
            raise ConfigurationError(
                "seconds_of_week must be in [0, 604800), got "
                f"{self.seconds_of_week!r}; use GpsTime.from_gps_seconds to normalize"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_gps_seconds(cls, gps_seconds: float) -> "GpsTime":
        """Build from total seconds since the GPS epoch (may exceed a week)."""
        if gps_seconds < 0:
            raise ConfigurationError(
                f"gps_seconds must be >= 0 (the GPS epoch), got {gps_seconds}"
            )
        week = int(gps_seconds // SECONDS_PER_WEEK)
        sow = gps_seconds - week * SECONDS_PER_WEEK
        # Guard against float round-up at week boundaries.
        if sow >= SECONDS_PER_WEEK:
            week += 1
            sow -= SECONDS_PER_WEEK
        return cls(week=week, seconds_of_week=sow)

    @classmethod
    def from_unix(cls, unix_seconds: float) -> "GpsTime":
        """Build from a Unix (UTC) timestamp, applying leap seconds."""
        gps_seconds = unix_seconds - GPS_EPOCH_UNIX + leap_seconds_at_unix(unix_seconds)
        if gps_seconds < 0:
            raise ConfigurationError(
                "Unix timestamp precedes the GPS epoch (1980-01-06)"
            )
        return cls.from_gps_seconds(gps_seconds)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_gps_seconds(self) -> float:
        """Total seconds since the GPS epoch."""
        return self.week * SECONDS_PER_WEEK + self.seconds_of_week

    def to_unix(self) -> float:
        """Unix (UTC) timestamp; inverts :meth:`from_unix` exactly away
        from leap-second boundaries."""
        approx_unix = self.to_gps_seconds() + GPS_EPOCH_UNIX
        # The leap-second offset depends on the UTC instant we are trying
        # to compute; one refinement step settles it everywhere except in
        # the single second of an insertion, which we do not simulate.
        offset = leap_seconds_at_unix(approx_unix)
        unix = self.to_gps_seconds() + GPS_EPOCH_UNIX - offset
        if leap_seconds_at_unix(unix) != offset:
            unix = self.to_gps_seconds() + GPS_EPOCH_UNIX - leap_seconds_at_unix(unix)
        return unix

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, seconds: Union[int, float]) -> "GpsTime":
        return GpsTime.from_gps_seconds(self.to_gps_seconds() + float(seconds))

    def __radd__(self, seconds: Union[int, float]) -> "GpsTime":
        return self.__add__(seconds)

    def __sub__(self, other: Union["GpsTime", int, float]):
        if isinstance(other, GpsTime):
            return self.to_gps_seconds() - other.to_gps_seconds()
        return GpsTime.from_gps_seconds(self.to_gps_seconds() - float(other))

    def time_of_week_difference(self, other: "GpsTime") -> float:
        """``self - other`` accounting for week crossovers the way
        broadcast ephemeris evaluation does (result wrapped into
        ``[-302400, 302400)``)."""
        dt = self.to_gps_seconds() - other.to_gps_seconds()
        half_week = SECONDS_PER_WEEK / 2.0
        while dt > half_week:
            dt -= SECONDS_PER_WEEK
        while dt < -half_week:
            dt += SECONDS_PER_WEEK
        return dt

    def __str__(self) -> str:
        return f"GpsTime(week={self.week}, sow={self.seconds_of_week:.3f})"
