"""GPS time scale: week/seconds-of-week arithmetic and UTC conversion."""

from repro.timebase.gpstime import GpsTime
from repro.timebase.leapseconds import leap_seconds_at_unix, LEAP_SECOND_TABLE

__all__ = ["GpsTime", "leap_seconds_at_unix", "LEAP_SECOND_TABLE"]
