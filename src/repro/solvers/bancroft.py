"""Bancroft's algebraic GPS solution (reference [2] of the paper).

The best-known closed-form comparator: solves position *and* clock
bias directly via the Lorentz inner product, with no clock prediction
model.  Included as an additional baseline so the benches can place
DLO/DLG against the classic direct method as well as against NR.

Derivation sketch: with ``y = (x, b)`` and ``B_i = (s_i, rho_i)``, each
pseudorange equation rearranges to ``<B_i, y> = a_i + Lambda`` where
``<.,.>`` is the Minkowski product with signature ``(+,+,+,-)``,
``Lambda = <y, y>/2`` and ``a_i = <B_i, B_i>/2``.  Solving the linear
part by pseudo-inverse and substituting back yields a scalar quadratic
in ``Lambda`` whose two roots give two candidate fixes.  With exactly
four satellites *both* roots satisfy the measurements exactly (the
classic trilateration ambiguity the paper notes in Section 3.1), so
selection is physical first — a candidate whose geocentric radius is
plausible for a terrestrial/airborne receiver wins — and
residual-based only among equally plausible candidates.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import PositioningAlgorithm
from repro.core.types import PositionFix
from repro.errors import EstimationError, GeometryError
from repro.estimation import cholesky_solve
from repro.observations import ObservationEpoch

#: Minkowski metric signature used by the algorithm.
_METRIC = np.array([1.0, 1.0, 1.0, -1.0])

#: Geocentric radius band (m) considered physically plausible for the
#: receiver: from slightly inside the earth (deep mines, numerical
#: slack) to well above airliner altitude.  The spurious Bancroft root
#: lands tens of thousands of kilometers away, far outside this band.
_PLAUSIBLE_RADIUS = (6.0e6, 7.5e6)


def _lorentz(a: np.ndarray, b: np.ndarray) -> float:
    """Minkowski inner product ``<a, b>`` with signature (+,+,+,-)."""
    return float(a @ (_METRIC * b))


class BancroftSolver(PositioningAlgorithm):
    """Closed-form position + clock bias via Bancroft's method."""

    name = "Bancroft"
    min_satellites = 4

    def solve(self, epoch: ObservationEpoch) -> PositionFix:
        self._require_satellites(epoch)
        positions = epoch.satellite_positions()
        pseudoranges = epoch.pseudoranges()
        m = len(pseudoranges)

        b_matrix = np.column_stack([positions, pseudoranges])  # (m, 4)
        a_vector = 0.5 * np.array(
            [_lorentz(b_matrix[i], b_matrix[i]) for i in range(m)]
        )
        ones = np.ones(m)

        # Least-squares pseudo-inverse application: B+ z = (B^T B)^-1 B^T z.
        gram = b_matrix.T @ b_matrix
        try:
            u = cholesky_solve(gram, b_matrix.T @ ones)
            v = cholesky_solve(gram, b_matrix.T @ a_vector)
        except EstimationError as exc:
            raise GeometryError(f"Bancroft system is degenerate: {exc}") from exc

        # Quadratic <u,u> L^2 + 2(<u,v> - 1) L + <v,v> = 0 in Lambda,
        # from substituting y = M (v + Lambda u) into 2 Lambda = <y, y>.
        # <u,u> is often vanishingly small (u is near-null in the
        # Lorentz metric for GPS geometries), so the roots are computed
        # with the cancellation-free "q" form: lam1 = q/qa, lam2 = qc/q
        # with q = -(qb + sign(qb) sqrt(disc))/2.  As qa -> 0 the first
        # root diverges harmlessly (filtered as non-finite) while the
        # second stays accurate — unlike the naive (-b +/- sqrt)/2a.
        qa = _lorentz(u, u)
        qb = 2.0 * (_lorentz(u, v) - 1.0)
        qc = _lorentz(v, v)

        candidates = []
        if qa == 0.0:
            if qb == 0.0:
                raise GeometryError("Bancroft quadratic is degenerate")
            candidates.append(-qc / qb)
        else:
            discriminant = qb * qb - 4.0 * qa * qc
            if discriminant < 0:
                raise GeometryError(
                    "Bancroft discriminant is negative; measurements are "
                    "inconsistent with any real solution"
                )
            q = -0.5 * (qb + math.copysign(math.sqrt(discriminant), qb))
            if q != 0.0:
                candidates.append(qc / q)
            candidates.append(q / qa)
            candidates = [lam for lam in candidates if math.isfinite(lam)]

        scored = []
        for lam in candidates:
            y = _METRIC * (v + lam * u)
            position, bias = y[:3], float(y[3])
            predicted = np.linalg.norm(positions - position, axis=1) + bias
            residual = float(np.linalg.norm(predicted - pseudoranges))
            radius = float(np.linalg.norm(position))
            plausible = _PLAUSIBLE_RADIUS[0] <= radius <= _PLAUSIBLE_RADIUS[1]
            scored.append((not plausible, residual, position, bias))

        if not scored:
            raise GeometryError("Bancroft produced no candidate solutions")
        # Plausible-radius candidates first, then smallest residual.
        scored.sort(key=lambda item: (item[0], item[1]))
        _implausible, residual, position, bias = scored[0]
        return PositionFix(
            position=position,
            clock_bias_meters=bias,
            algorithm=self.name,
            iterations=1,
            converged=True,
            residual_norm=residual,
        )
