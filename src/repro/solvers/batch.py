"""Batched direct-linearization solvers (paper Section 6, extension 3).

The paper's third future-work item: "optimize the matrix operations in
the context of our problem so the computation time may be further
reduced".  The closed-form structure of DLO/DLG makes them unusually
batchable: N epochs with the same satellite count m share identical
shapes, so the N difference systems can be built and solved as one
stacked ``(N, m-1, 3)`` tensor operation, amortizing the per-call
dispatch overhead that dominates small solves.

This is exactly the optimization a high-rate tracking server (the
paper's motivating "object moving at high speed" positioned many times
per second, or a post-processing service replaying a day of data)
would deploy.  Iterative NR converges along a per-epoch trajectory, so
it batches differently: :class:`BatchNewtonRaphsonSolver` stacks the
per-iteration linear algebra and masks converged epochs out of the
active set, so the baseline can be timed at scale too.

Usage::

    solver = BatchDLGSolver()
    positions = solver.solve_batch(epochs, predicted_biases)  # (N, 3)
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blocks import EpochBlock
from repro.constellation.systems import group_layout, system_code
from repro.errors import ConfigurationError, ConvergenceError, EstimationError, GeometryError
from repro.estimation import (
    batched_apply_inverse_diag_rank1,
    batched_gls_solve_diag_rank1,
    batched_gls_solve_grouped_rank1,
)
from repro.estimation.workspace import KernelWorkspace
from repro.observations import ObservationEpoch
from repro.solvers.direct_linear import CONSTELLATION_MODES, check_multi_admissibility
from repro.telemetry import get_registry

_log = logging.getLogger(__name__)

#: What the batch solvers accept: the legacy epoch-object form or the
#: already-columnar block the engine's zero-copy path hands over.
Batchable = Union[Sequence[ObservationEpoch], EpochBlock]


def _as_block(epochs: Batchable, kind: str) -> EpochBlock:
    """Coerce solver input to an :class:`EpochBlock`, validating size.

    ``kind`` names the algorithm family for the under-4-satellites
    message ("direct linearization" / "Newton-Raphson").
    """
    if isinstance(epochs, EpochBlock):
        block = epochs
        if len(block) == 0:
            raise GeometryError("solve_batch needs at least one epoch")
    else:
        if not epochs:
            raise GeometryError("solve_batch needs at least one epoch")
        if epochs[0].satellite_count < 4:
            raise GeometryError(
                f"batched {kind} needs at least 4 satellites, "
                f"got {epochs[0].satellite_count}"
            )
        block = EpochBlock.from_epochs(epochs)
    if block.satellite_count < 4:
        raise GeometryError(
            f"batched {kind} needs at least 4 satellites, "
            f"got {block.satellite_count}"
        )
    return block


def _corrected_pseudoranges(block: EpochBlock, biases: np.ndarray) -> np.ndarray:
    """Clock-corrected ``(N, m)`` pseudoranges, with bias validation."""
    biases = np.asarray(biases, dtype=float)
    if biases.shape != (len(block),):
        raise GeometryError(
            f"biases must be one per epoch: expected shape ({len(block)},), "
            f"got {biases.shape}"
        )
    corrected = block.pseudoranges - biases[:, None]
    if np.any(corrected <= 0):
        raise GeometryError(
            "clock-corrected pseudoranges are non-positive for some epoch; "
            "check the bias predictions"
        )
    return corrected


def _stack_epochs(epochs: Sequence[ObservationEpoch], biases: np.ndarray):
    """Validate and stack N same-size epochs into dense tensors.

    Retained for callers that want raw arrays; the solvers themselves
    now flow through :class:`~repro.blocks.EpochBlock`, which this
    helper builds (and whose memoized per-epoch arrays it reuses).
    """
    block = _as_block(epochs, "direct linearization")
    corrected = _corrected_pseudoranges(block, biases)
    return block.positions, corrected


def build_difference_systems(
    positions: np.ndarray, corrected: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized eq. 4-8 construction for a whole batch.

    Parameters are the stacked ``(N, m, 3)`` satellite positions and
    ``(N, m)`` clock-corrected pseudoranges; the base satellite is
    index 0 of each epoch.  Returns ``(N, m-1, 3)`` designs and
    ``(N, m-1)`` right-hand sides.
    """
    design = positions[:, 1:, :] - positions[:, :1, :]
    squared_norms = np.einsum("nmi,nmi->nm", positions, positions)
    rhs = 0.5 * (
        (squared_norms[:, 1:] - squared_norms[:, :1])
        - (corrected[:, 1:] ** 2 - corrected[:, :1] ** 2)
    )
    return design, rhs


def _require_uniform_pattern(block: EpochBlock) -> np.ndarray:
    """The block's shared ``(m,)`` system-id slot pattern.

    The multi-constellation kernels solve all N epochs with one shared
    group structure, so every row must put each constellation's
    satellites in the same slots — which :func:`~repro.blocks.
    pack_stream` buckets guarantee.  Mixed-pattern blocks fail loudly.
    """
    pattern = block.uniform_system_pattern()
    if pattern is None:
        raise GeometryError(
            "block rows carry different constellation patterns; "
            "re-bucket through pack_stream before a multi-constellation "
            "batch solve"
        )
    return pattern


def build_multi_difference_systems(
    positions: np.ndarray,
    pseudoranges: np.ndarray,
    pattern: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Vectorized per-constellation difference construction for a batch.

    The batched counterpart of :func:`~repro.solvers.direct_linear.
    build_multi_difference_system`: the ``(m,)`` system-id ``pattern``
    is shared by all N epochs, so the group layout, base satellites and
    sparsity structure are computed once and broadcast.

    Parameters
    ----------
    positions:
        ``(N, m, 3)`` stacked satellite positions.
    pseudoranges:
        ``(N, m)`` *raw* pseudoranges (the per-constellation biases are
        unknowns of this system, nothing is removed up front).
    pattern:
        ``(m,)`` per-slot system ids shared by every epoch.

    Returns ``(design (N, m-K, 3+K), rhs (N, m-K), row_groups (m-K,),
    base_indices (K,), codes (K,))``.
    """
    groups, codes = group_layout(pattern)
    check_multi_admissibility(groups, codes)
    n, m = pseudoranges.shape
    k_groups = int(codes.shape[0])

    base_indices = np.full(k_groups, -1, dtype=np.int64)
    for index in range(m):
        g = groups[index]
        if base_indices[g] < 0:
            base_indices[g] = index
    non_base = np.ones(m, dtype=bool)
    non_base[base_indices] = False
    row_groups = groups[non_base]

    base_positions = positions[:, base_indices, :]  # (N, K, 3)
    base_rho = pseudoranges[:, base_indices]  # (N, K)

    design = np.zeros((n, m - k_groups, 3 + k_groups))
    design[:, :, :3] = positions[:, non_base, :] - base_positions[:, row_groups, :]
    rows = np.arange(m - k_groups)
    design[:, rows, 3 + row_groups] = -(
        pseudoranges[:, non_base] - base_rho[:, row_groups]
    )

    squared_norms = np.einsum("nmi,nmi->nm", positions, positions)
    base_squared = squared_norms[:, base_indices]
    rhs = 0.5 * (
        (squared_norms[:, non_base] - base_squared[:, row_groups])
        - (pseudoranges[:, non_base] ** 2 - base_rho[:, row_groups] ** 2)
    )
    return design, rhs, row_groups, base_indices, codes


def _non_base_mask(base_indices: np.ndarray, m: int) -> np.ndarray:
    """Boolean ``(m,)`` mask of non-base satellite slots."""
    non_base = np.ones(m, dtype=bool)
    non_base[base_indices] = False
    return non_base


@dataclass(frozen=True)
class BatchMultiResult:
    """Per-epoch output of a multi-constellation batch solve.

    Attributes
    ----------
    positions:
        ``(N, 3)`` estimated receiver positions.
    constellation_biases:
        ``(N, K)`` solved clock biases (meters), one column per
        constellation in ``systems`` order.
    systems:
        ``(K,)`` constellation codes in first-appearance order of the
        block's shared slot pattern.
    norms:
        ``(N,)`` residual norms — whitened (Mahalanobis) for DLG, raw
        differenced-domain for DLO.
    """

    positions: np.ndarray
    constellation_biases: np.ndarray
    systems: Tuple[str, ...]
    norms: np.ndarray


def _check_constellations(constellations: str) -> str:
    if constellations not in CONSTELLATION_MODES:
        raise ConfigurationError(
            f"constellations must be one of {CONSTELLATION_MODES}, "
            f"got {constellations!r}"
        )
    return constellations


def _finish_multi_batch(
    solutions: np.ndarray, codes: np.ndarray, norms: np.ndarray
) -> BatchMultiResult:
    return BatchMultiResult(
        positions=solutions[:, :3].copy(),
        constellation_biases=solutions[:, 3:].copy(),
        systems=tuple(system_code(int(code)) for code in codes),
        norms=norms,
    )


class BatchDLOSolver:
    """Vectorized DLO: one stacked OLS solve for N epochs."""

    name = "BatchDLO"

    def __init__(self, constellations: str = "single") -> None:
        self.constellations = _check_constellations(constellations)

    def solve_batch(
        self,
        epochs: Batchable,
        biases: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array.

        ``biases`` are the predicted receiver clock biases (meters),
        one per epoch — the batched equivalent of the clock predictor
        hook on :class:`~repro.solvers.direct_linear.DLOSolver`.
        Required in ``"single"`` mode; in ``"per_constellation"`` mode
        the biases are *estimated* (one per constellation, see
        :meth:`solve_block_multi`), so none may be passed.
        Accepts an :class:`~repro.blocks.EpochBlock` directly.
        """
        block = _as_block(epochs, "direct linearization")
        if self.constellations == "per_constellation":
            if biases is not None:
                raise ConfigurationError(
                    "per-constellation mode estimates the clock biases; "
                    "predicted biases cannot be passed"
                )
            return self.solve_block_multi(block).positions
        if biases is None:
            raise ConfigurationError(
                "single-constellation batch DLO needs one predicted "
                "clock bias per epoch"
            )
        return self.solve_block(block, np.asarray(biases, dtype=float))

    def solve_block_multi(self, block: EpochBlock) -> BatchMultiResult:
        """Per-constellation solve of an already-columnar block.

        One stacked OLS solve of the ``(N, m-K, 3+K)`` per-constellation
        difference systems; the block must carry a uniform system
        pattern (as :func:`~repro.blocks.pack_stream` buckets do).
        """
        pattern = _require_uniform_pattern(block)
        design, rhs, _row_groups, _bases, codes = build_multi_difference_systems(
            block.positions, block.pseudoranges, pattern
        )
        gram = np.einsum("nij,nik->njk", design, design)
        moment = np.einsum("nij,ni->nj", design, rhs)
        try:
            solutions = np.linalg.solve(gram, moment[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc
        residuals = rhs - np.einsum("nki,ni->nk", design, solutions)
        return _finish_multi_batch(
            solutions, codes, np.linalg.norm(residuals, axis=1)
        )

    def solve_block(self, block: EpochBlock, biases: np.ndarray) -> np.ndarray:
        """Positions for an already-columnar block; zero repacking."""
        corrected = _corrected_pseudoranges(block, biases)
        design, rhs = build_difference_systems(block.positions, corrected)
        # Batched normal equations: (N,3,3) and (N,3).
        gram = np.einsum("nij,nik->njk", design, design)
        moment = np.einsum("nij,ni->nj", design, rhs)
        try:
            return np.linalg.solve(gram, moment[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc


class BatchDLGSolver:
    """Vectorized DLG: stacked GLS with the eq. 4-26 covariances.

    The eq. 4-26 covariance is diagonal-plus-rank-one
    (``Psi = diag(rho_j^2) + rho_base^2 * 11^T``), so instead of
    factorizing N dense ``(m-1, m-1)`` matrices the whole stack is
    whitened through the O(m)-per-epoch Sherman-Morrison identity
    (:func:`~repro.estimation.batched_gls_solve_diag_rank1`) — the same
    fast path the scalar :class:`~repro.solvers.direct_linear.DLGSolver`
    uses, vectorized across all N epochs at once.
    """

    name = "BatchDLG"

    def __init__(
        self,
        dtype: str = "float64",
        audit_every: int = 64,
        audit_tolerance_meters: float = 1.0,
        constellations: str = "single",
    ) -> None:
        """Configure the kernel precision.

        Parameters
        ----------
        dtype:
            ``"float64"`` (default, bit-stable reference path) or
            ``"float32"`` — an opt-in mixed-precision kernel that
            whitens and factorizes in single precision with float64
            residual refinement (see :meth:`_solve_float32`).
        audit_every:
            With ``dtype="float32"``, every ``audit_every``-th solve is
            also run through the float64 kernel and compared; the first
            solve is always audited.
        audit_tolerance_meters:
            Maximum allowed float32-vs-float64 position discrepancy.
            An audit exceeding it *permanently* drops the solver back
            to float64 (fail-safe: accuracy wins over throughput) and
            records ``repro_kernel_float32_audits_total{outcome=
            "tripped"}``.
        constellations:
            ``"single"`` (default) for the historical one-bias path, or
            ``"per_constellation"`` to estimate one clock bias per
            constellation (see :meth:`solve_block_multi`).  The
            per-constellation kernel has no float32 variant.
        """
        if dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        if audit_every < 1:
            raise ConfigurationError("audit_every must be at least 1")
        if audit_tolerance_meters <= 0:
            raise ConfigurationError("audit_tolerance_meters must be positive")
        self.constellations = _check_constellations(constellations)
        if self.constellations == "per_constellation" and dtype == "float32":
            raise ConfigurationError(
                "the float32 kernel is single-constellation only; "
                "per-constellation mode requires dtype='float64'"
            )
        self._dtype = dtype
        self._audit_every = int(audit_every)
        self._audit_tolerance = float(audit_tolerance_meters)
        self._solves = 0
        self._float32_tripped = False
        self._workspace = KernelWorkspace()

    @property
    def workspace(self) -> KernelWorkspace:
        """The preallocated scratch buffers this solver reuses."""
        return self._workspace

    @property
    def float32_active(self) -> bool:
        """Whether the float32 kernel is configured and not tripped."""
        return self._dtype == "float32" and not self._float32_tripped

    def solve_batch(
        self,
        epochs: Batchable,
        biases: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array.

        ``biases`` are required in ``"single"`` mode and must be absent
        in ``"per_constellation"`` mode, where the clock biases are
        solved for (see :meth:`solve_block_multi`).
        Accepts an :class:`~repro.blocks.EpochBlock` directly.
        """
        block = _as_block(epochs, "direct linearization")
        if self.constellations == "per_constellation":
            if biases is not None:
                raise ConfigurationError(
                    "per-constellation mode estimates the clock biases; "
                    "predicted biases cannot be passed"
                )
            return self.solve_block_multi(block).positions
        if biases is None:
            raise ConfigurationError(
                "single-constellation batch DLG needs one predicted "
                "clock bias per epoch"
            )
        return self.solve_block_full(
            block, np.asarray(biases, dtype=float)
        )[0]

    def solve_block_multi(self, block: EpochBlock) -> BatchMultiResult:
        """Per-constellation solve of an already-columnar block.

        The grouped generalization of :meth:`solve_block_full`: the
        block-diagonal eq. 4-26 covariance (one diag+rank-one block per
        constellation) is applied through
        :func:`~repro.estimation.batched_gls_solve_grouped_rank1`, so
        the whole stack whitens in O(m) per epoch with no
        factorization.  The block must carry a uniform system pattern.
        """
        pattern = _require_uniform_pattern(block)
        design, rhs, row_groups, base_indices, codes = (
            build_multi_difference_systems(
                block.positions, block.pseudoranges, pattern
            )
        )
        diag = block.pseudoranges[:, _non_base_mask(base_indices, pattern.shape[0])] ** 2
        scales = block.pseudoranges[:, base_indices] ** 2
        try:
            solutions, norms = batched_gls_solve_grouped_rank1(
                design, rhs, diag, scales, row_groups,
                workspace=self._workspace,
            )
        except EstimationError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc
        return _finish_multi_batch(solutions, codes, norms)

    def solve_block(self, block: EpochBlock, biases: np.ndarray) -> np.ndarray:
        """Positions for an already-columnar block; zero repacking."""
        return self.solve_block_full(block, biases)[0]

    def solve_block_full(
        self, block: EpochBlock, biases: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve a block, returning ``(solutions, norms, corrected)``.

        ``norms`` are the whitened (Mahalanobis) residual norms — the
        RAIM/FDE test quantities the GLS whitening produces for free —
        and ``corrected`` the clock-corrected pseudoranges, so the
        integrity gate can screen the batch without re-deriving either.
        """
        corrected = _corrected_pseudoranges(block, biases)
        if self.float32_active:
            self._solves += 1
            audited = (self._solves - 1) % self._audit_every == 0
            solutions, norms = self._solve_float32(block.positions, corrected)
            if audited:
                reference, ref_norms = self._solve_float64(
                    block.positions, corrected
                )
                worst = float(
                    np.max(np.linalg.norm(solutions - reference, axis=1))
                )
                if worst > self._audit_tolerance:
                    self._float32_tripped = True
                    _log.warning(
                        "float32 DLG kernel audit failed (%.3f m > %.3f m); "
                        "permanently falling back to float64",
                        worst,
                        self._audit_tolerance,
                    )
                    self._count_audit("tripped")
                    self._record_audit_trip(
                        block, biases, solutions, reference, worst
                    )
                    return reference, ref_norms, corrected
                self._count_audit("passed")
            return solutions, norms, corrected
        solutions, norms = self._solve_float64(block.positions, corrected)
        return solutions, norms, corrected

    def _solve_float64(
        self, positions: np.ndarray, corrected: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        design, rhs = build_difference_systems(positions, corrected)
        # Batched eq. 4-26 in structured form: diag rho_j^2, scale rho_base^2.
        diag = corrected[:, 1:] ** 2  # (N, m-1)
        scale = corrected[:, 0] ** 2  # (N,)
        try:
            return batched_gls_solve_diag_rank1(
                design, rhs, diag, scale, workspace=self._workspace
            )
        except EstimationError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc

    def _solve_float32(
        self, positions: np.ndarray, corrected: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mixed-precision kernel: float32 factorization, float64 refinement.

        A naive full-float32 solve is hopeless here: the difference
        right-hand sides are ~1e13 m² (squares of ECEF radii), so
        float32's 2^-24 relative precision maps to ~1e6 m of rhs error.
        Instead the system is *built* in float64, the whitening and
        Gram factorization are demoted to float32 (the memory-bound
        part whose cost scales with satellite count), and the solution
        is recovered by iterative refinement: each pass recomputes the
        residual ``rhs - A x`` in float64 (cheap, exact to ~mm) and
        solves for the correction against the float32 Gram.  Three
        passes contract the initial kilometer-scale error below the
        audit tolerance for any geometry the float64 path itself can
        solve; pathological conditioning is what the audit gate exists
        to catch.
        """
        design, rhs = build_difference_systems(positions, corrected)
        diag = corrected[:, 1:] ** 2
        scale = corrected[:, 0] ** 2
        ws = self._workspace
        n, k, p = design.shape
        design32 = ws.buffer("f32_design", (n, k, p), np.float32)
        design32[...] = design
        inv_d = 1.0 / diag
        inv_d32 = ws.buffer("f32_inv_d", (n, k), np.float32)
        inv_d32[...] = inv_d
        s_over_denom = (scale / (1.0 + scale * inv_d.sum(axis=1))).astype(
            np.float32
        )
        whitened = np.multiply(
            design32, inv_d32[:, :, None], out=ws.buffer("f32_u", (n, k, p), np.float32)
        )
        correction = s_over_denom[:, None] * whitened.sum(axis=1)
        whitened -= inv_d32[:, :, None] * correction[:, None, :]
        gram = np.einsum("nki,nkj->nij", design32, whitened)
        solutions = np.zeros((n, p))
        residual = rhs
        for _pass in range(3):
            moment = np.einsum(
                "nki,nk->ni", whitened, residual.astype(np.float32)
            )
            try:
                delta = np.linalg.solve(gram, moment[..., None])[..., 0]
            except np.linalg.LinAlgError as exc:
                raise EstimationError(
                    "a batch epoch has degenerate geometry; solve epochs "
                    "individually to identify it"
                ) from exc
            solutions = solutions + delta.astype(float)
            residual = rhs - np.einsum("nki,ni->nk", design, solutions)
        # Mahalanobis norms from the float64 residual, so FDE-style
        # consumers see statistics on the same scale as the reference
        # kernel (the engine still refuses float32+FDE outright).
        mahalanobis_sq = np.einsum(
            "nk,nk->n",
            residual,
            batched_apply_inverse_diag_rank1(diag, scale, residual),
        )
        return solutions, np.sqrt(np.maximum(mahalanobis_sq, 0.0))

    def _count_audit(self, outcome: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_kernel_float32_audits_total",
                "Float32 kernel differential audits by outcome.",
                labels=("outcome",),
            ).labels(outcome=outcome).inc()

    def _record_audit_trip(
        self,
        block: EpochBlock,
        biases: np.ndarray,
        solutions: np.ndarray,
        reference: np.ndarray,
        worst: float,
    ) -> None:
        """Hand the tripping epoch to the flight recorder, if one is on.

        The audit trip is the one anomaly the service layer cannot see
        (it happens inside the kernel and is silently repaired by the
        float64 fallback), so the solver reports it directly: the
        worst-discrepancy epoch's raw inputs go into a replayable
        incident record tagged ``float32_audit``.  Cold path — the trip
        is permanent, so this runs at most once per solver lifetime.
        """
        from repro.telemetry.recorder import (
            TRIGGER_FLOAT32_AUDIT,
            FixRecord,
            config_hash,
            get_recorder,
            inputs_digest,
            now_seconds,
        )

        recorder = get_recorder()
        if not recorder.enabled:
            return
        row = int(np.argmax(np.linalg.norm(solutions - reference, axis=1)))
        bias = float(biases[row])
        payload = {
            "week": int(block.weeks[row]),
            "seconds_of_week": float(block.seconds_of_week[row]),
            "prns": [int(prn) for prn in block.prns[row]],
            "pseudoranges": [float(r) for r in block.pseudoranges[row]],
            "positions": [
                [float(c) for c in sat] for sat in block.positions[row]
            ],
        }
        digest = inputs_digest(payload)
        solver_spec = {"algorithm": "dlg", "clock_bias_meters": bias}
        recorder.record(
            FixRecord(
                request_id=f"audit-{digest}",
                status="failed",
                solver="dlg/float32",
                recorded_at=now_seconds(),
                inputs_digest=digest,
                config_hash=config_hash(
                    solver_spec,
                    audit_every=self._audit_every,
                    audit_tolerance_meters=self._audit_tolerance,
                ),
                trigger=TRIGGER_FLOAT32_AUDIT,
                error=(
                    f"float32 audit discrepancy {worst:.3f} m exceeds "
                    f"{self._audit_tolerance:.3f} m"
                ),
                epoch=payload,
                solver_spec=solver_spec,
                attributes={
                    "worst_meters": worst,
                    "tolerance_meters": self._audit_tolerance,
                    "batch_size": len(block),
                    "row": row,
                },
            )
        )


@dataclass(frozen=True)
class BatchNrResult:
    """Full per-epoch record of a batched Newton-Raphson solve.

    Attributes
    ----------
    positions:
        ``(N, 3)`` estimated receiver positions.
    clock_biases:
        ``(N,)`` solved receiver clock biases (meters).
    iterations:
        ``(N,)`` iterations each epoch actually ran before converging
        (or hitting the budget).
    converged:
        ``(N,)`` whether each epoch met the update tolerance.
    constellation_biases:
        ``(N, K)`` per-constellation solved clock biases, or ``None``
        for single-constellation solves (where ``clock_biases`` is the
        whole story).  When present, ``clock_biases`` equals the first
        column.
    systems:
        ``(K,)`` constellation codes matching the bias columns, or
        ``None`` for single-constellation solves.
    """

    positions: np.ndarray
    clock_biases: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    constellation_biases: Optional[np.ndarray] = None
    systems: Optional[Tuple[str, ...]] = None


class BatchNewtonRaphsonSolver:
    """Vectorized NR over N same-size epochs, with active-set masking.

    Each iteration linearizes all still-unconverged epochs at once
    (stacked Jacobians, one batched 4x4 normal-equations solve) and
    drops epochs whose update norm falls below the tolerance out of
    the active set — so the batch cost tracks the *slowest* epochs
    without re-iterating the finished ones.  This gives the paper's
    baseline a throughput-comparable implementation: NR cannot be made
    closed-form, but its per-iteration linear algebra batches exactly
    like DLO/DLG's single solve does.

    Uses the ``"update"`` convergence criterion of
    :class:`~repro.solvers.newton_raphson.NewtonRaphsonSolver` (state
    update norm below ``tolerance_meters``) and the same cold start.
    """

    name = "BatchNR"

    def __init__(
        self,
        max_iterations: int = 20,
        tolerance_meters: float = 1e-4,
        initial_state: Optional[np.ndarray] = None,
        constellations: str = "single",
    ) -> None:
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        if tolerance_meters <= 0:
            raise ConfigurationError("tolerance_meters must be positive")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance_meters)
        self.constellations = _check_constellations(constellations)
        if self.constellations == "per_constellation" and initial_state is not None:
            raise ConfigurationError(
                "per-constellation mode sizes its state to the epoch's "
                "constellation count; a fixed initial_state cannot be "
                "combined with it"
            )
        if initial_state is None:
            self._initial_state = np.zeros(4)
        else:
            state = np.asarray(initial_state, dtype=float)
            if state.shape != (4,) or not np.all(np.isfinite(state)):
                raise ConfigurationError("initial_state must be a finite 4-vector")
            self._initial_state = state.copy()

    def solve_batch(self, epochs: Sequence[ObservationEpoch]) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array.

        Raises :class:`~repro.errors.ConvergenceError` if any epoch
        fails to converge; use :meth:`solve_batch_full` to get partial
        results with per-epoch convergence flags instead.
        """
        result = self.solve_batch_full(epochs)
        if not np.all(result.converged):
            stuck = int(np.count_nonzero(~result.converged))
            raise ConvergenceError(
                f"{stuck} of {len(epochs)} epochs did not converge within "
                f"{self._max_iterations} iterations",
                iterations=self._max_iterations,
            )
        return result.positions

    def solve_batch_full(self, epochs: Batchable) -> BatchNrResult:
        """Solve N same-size epochs, reporting per-epoch convergence.

        Accepts an :class:`~repro.blocks.EpochBlock` directly (alias
        :meth:`solve_block_full`); epoch sequences are packed once.
        """
        block = _as_block(epochs, "Newton-Raphson")
        if self.constellations == "per_constellation":
            return self._iterate_multi(block)
        return self._iterate(block.positions, block.pseudoranges)

    def solve_block_full(self, block: EpochBlock) -> BatchNrResult:
        """Solve an already-columnar block; zero repacking."""
        return self.solve_batch_full(block)

    def _iterate(
        self, positions: np.ndarray, pseudoranges: np.ndarray
    ) -> BatchNrResult:
        m = positions.shape[1]
        n = positions.shape[0]
        states = np.tile(self._initial_state, (n, 1))  # (N, 4)
        iterations = np.zeros(n, dtype=int)
        converged = np.zeros(n, dtype=bool)
        active = np.arange(n)

        for iteration in range(1, self._max_iterations + 1):
            state_a = states[active]
            deltas = positions[active] - state_a[:, None, :3]  # (Na, m, 3)
            ranges = np.sqrt(np.einsum("nmi,nmi->nm", deltas, deltas))
            if np.any(ranges < 1.0):
                raise GeometryError(
                    "NR state collided with a satellite position; "
                    "a batch epoch is degenerate"
                )

            # Residuals P_i and Jacobian rows (eq. 3-20..3-24), stacked.
            residuals = ranges - pseudoranges[active] + state_a[:, 3:4]
            jacobian = np.empty((active.size, m, 4))
            jacobian[..., :3] = -deltas / ranges[..., None]
            jacobian[..., 3] = 1.0

            gram = np.einsum("nmi,nmj->nij", jacobian, jacobian)
            moment = np.einsum("nmi,nm->ni", jacobian, -residuals)
            try:
                updates = np.linalg.solve(gram, moment[..., None])[..., 0]
            except np.linalg.LinAlgError as exc:
                raise GeometryError(
                    f"NR normal equations are singular at iteration {iteration}; "
                    "a batch epoch has degenerate geometry"
                ) from exc

            states[active] += updates
            iterations[active] = iteration
            if not np.all(np.isfinite(states[active])):
                raise ConvergenceError(
                    "NR state diverged to non-finite values for a batch epoch",
                    iterations=iteration,
                )

            # Active-set masking: converged epochs drop out of the batch.
            done = np.linalg.norm(updates, axis=1) < self._tolerance
            converged[active[done]] = True
            active = active[~done]
            if active.size == 0:
                break

        return BatchNrResult(
            positions=states[:, :3].copy(),
            clock_biases=states[:, 3].copy(),
            iterations=iterations,
            converged=converged,
        )

    def _iterate_multi(self, block: EpochBlock) -> BatchNrResult:
        """Batched NR with one clock-bias column per constellation.

        The batched counterpart of :meth:`~repro.solvers.
        newton_raphson.NewtonRaphsonSolver._solve_multi`: state
        ``(N, 3+K)``, residual ``P_i = R_i - rho_i + b_c(i)`` and
        one-hot bias columns in the Jacobian.  NR tolerates singleton
        constellations (the shared position couples their equation to
        the rest), so only ``m >= 3 + K`` is required; the block must
        carry a uniform system pattern so all N epochs share the
        group layout.
        """
        pattern = _require_uniform_pattern(block)
        groups, codes = group_layout(pattern)
        k_groups = int(codes.shape[0])
        positions = block.positions
        pseudoranges = block.pseudoranges
        n, m = pseudoranges.shape
        if m < 3 + k_groups:
            raise GeometryError(
                f"{m} satellites cannot determine {3 + k_groups} unknowns "
                f"({k_groups} constellation clock biases)"
            )
        states = np.zeros((n, 3 + k_groups))
        iterations = np.zeros(n, dtype=int)
        converged = np.zeros(n, dtype=bool)
        active = np.arange(n)
        bias_columns = 3 + groups  # (m,) column index of each slot's bias

        for iteration in range(1, self._max_iterations + 1):
            state_a = states[active]
            deltas = positions[active] - state_a[:, None, :3]
            ranges = np.sqrt(np.einsum("nmi,nmi->nm", deltas, deltas))
            if np.any(ranges < 1.0):
                raise GeometryError(
                    "NR state collided with a satellite position; "
                    "a batch epoch is degenerate"
                )

            residuals = ranges - pseudoranges[active] + state_a[:, bias_columns]
            jacobian = np.zeros((active.size, m, 3 + k_groups))
            jacobian[..., :3] = -deltas / ranges[..., None]
            jacobian[:, np.arange(m), bias_columns] = 1.0

            gram = np.einsum("nmi,nmj->nij", jacobian, jacobian)
            moment = np.einsum("nmi,nm->ni", jacobian, -residuals)
            try:
                updates = np.linalg.solve(gram, moment[..., None])[..., 0]
            except np.linalg.LinAlgError as exc:
                raise GeometryError(
                    f"NR normal equations are singular at iteration {iteration}; "
                    "a batch epoch has degenerate geometry"
                ) from exc

            states[active] += updates
            iterations[active] = iteration
            if not np.all(np.isfinite(states[active])):
                raise ConvergenceError(
                    "NR state diverged to non-finite values for a batch epoch",
                    iterations=iteration,
                )

            done = np.linalg.norm(updates, axis=1) < self._tolerance
            converged[active[done]] = True
            active = active[~done]
            if active.size == 0:
                break

        return BatchNrResult(
            positions=states[:, :3].copy(),
            clock_biases=states[:, 3].copy(),
            iterations=iterations,
            converged=converged,
            constellation_biases=states[:, 3:].copy(),
            systems=tuple(system_code(int(code)) for code in codes),
        )


def group_epochs_by_count(
    epochs: Sequence[ObservationEpoch],
) -> "dict[int, List[ObservationEpoch]]":
    """Group arbitrary epochs into batchable same-count buckets."""
    groups: "dict[int, List[ObservationEpoch]]" = {}
    for epoch in epochs:
        groups.setdefault(epoch.satellite_count, []).append(epoch)
    return groups
