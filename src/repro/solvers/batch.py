"""Batched direct-linearization solvers (paper Section 6, extension 3).

The paper's third future-work item: "optimize the matrix operations in
the context of our problem so the computation time may be further
reduced".  The closed-form structure of DLO/DLG makes them unusually
batchable: N epochs with the same satellite count m share identical
shapes, so the N difference systems can be built and solved as one
stacked ``(N, m-1, 3)`` tensor operation, amortizing the per-call
dispatch overhead that dominates small solves.

This is exactly the optimization a high-rate tracking server (the
paper's motivating "object moving at high speed" positioned many times
per second, or a post-processing service replaying a day of data)
would deploy.  Iterative NR converges along a per-epoch trajectory, so
it batches differently: :class:`BatchNewtonRaphsonSolver` stacks the
per-iteration linear algebra and masks converged epochs out of the
active set, so the baseline can be timed at scale too.

Usage::

    solver = BatchDLGSolver()
    positions = solver.solve_batch(epochs, predicted_biases)  # (N, 3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError, EstimationError, GeometryError
from repro.estimation import batched_gls_solve_diag_rank1
from repro.observations import ObservationEpoch


def _stack_epochs(epochs: Sequence[ObservationEpoch], biases: np.ndarray):
    """Validate and stack N same-size epochs into dense tensors."""
    if not epochs:
        raise GeometryError("solve_batch needs at least one epoch")
    m = epochs[0].satellite_count
    if m < 4:
        raise GeometryError(
            f"batched direct linearization needs at least 4 satellites, got {m}"
        )
    for epoch in epochs:
        if epoch.satellite_count != m:
            raise GeometryError(
                "all epochs in a batch must have the same satellite count "
                f"(got {epoch.satellite_count} and {m}); group epochs by "
                "count before batching"
            )
    biases = np.asarray(biases, dtype=float)
    if biases.shape != (len(epochs),):
        raise GeometryError(
            f"biases must be one per epoch: expected shape ({len(epochs)},), "
            f"got {biases.shape}"
        )

    positions = np.stack([epoch.satellite_positions() for epoch in epochs])  # (N,m,3)
    pseudoranges = np.stack([epoch.pseudoranges() for epoch in epochs])  # (N,m)
    corrected = pseudoranges - biases[:, None]
    if np.any(corrected <= 0):
        raise GeometryError(
            "clock-corrected pseudoranges are non-positive for some epoch; "
            "check the bias predictions"
        )
    return positions, corrected


def build_difference_systems(
    positions: np.ndarray, corrected: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized eq. 4-8 construction for a whole batch.

    Parameters are the stacked ``(N, m, 3)`` satellite positions and
    ``(N, m)`` clock-corrected pseudoranges; the base satellite is
    index 0 of each epoch.  Returns ``(N, m-1, 3)`` designs and
    ``(N, m-1)`` right-hand sides.
    """
    design = positions[:, 1:, :] - positions[:, :1, :]
    squared_norms = np.einsum("nmi,nmi->nm", positions, positions)
    rhs = 0.5 * (
        (squared_norms[:, 1:] - squared_norms[:, :1])
        - (corrected[:, 1:] ** 2 - corrected[:, :1] ** 2)
    )
    return design, rhs


class BatchDLOSolver:
    """Vectorized DLO: one stacked OLS solve for N epochs."""

    name = "BatchDLO"

    def solve_batch(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Sequence[float],
    ) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array.

        ``biases`` are the predicted receiver clock biases (meters),
        one per epoch — the batched equivalent of the clock predictor
        hook on :class:`~repro.solvers.direct_linear.DLOSolver`.
        """
        positions, corrected = _stack_epochs(epochs, np.asarray(biases, dtype=float))
        design, rhs = build_difference_systems(positions, corrected)
        # Batched normal equations: (N,3,3) and (N,3).
        gram = np.einsum("nij,nik->njk", design, design)
        moment = np.einsum("nij,ni->nj", design, rhs)
        try:
            return np.linalg.solve(gram, moment[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc


class BatchDLGSolver:
    """Vectorized DLG: stacked GLS with the eq. 4-26 covariances.

    The eq. 4-26 covariance is diagonal-plus-rank-one
    (``Psi = diag(rho_j^2) + rho_base^2 * 11^T``), so instead of
    factorizing N dense ``(m-1, m-1)`` matrices the whole stack is
    whitened through the O(m)-per-epoch Sherman-Morrison identity
    (:func:`~repro.estimation.batched_gls_solve_diag_rank1`) — the same
    fast path the scalar :class:`~repro.solvers.direct_linear.DLGSolver`
    uses, vectorized across all N epochs at once.
    """

    name = "BatchDLG"

    def solve_batch(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Sequence[float],
    ) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array."""
        positions, corrected = _stack_epochs(epochs, np.asarray(biases, dtype=float))
        design, rhs = build_difference_systems(positions, corrected)
        # Batched eq. 4-26 in structured form: diag rho_j^2, scale rho_base^2.
        diag = corrected[:, 1:] ** 2  # (N, m-1)
        scale = corrected[:, 0] ** 2  # (N,)
        try:
            solutions, _norms = batched_gls_solve_diag_rank1(design, rhs, diag, scale)
        except EstimationError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc
        return solutions


@dataclass(frozen=True)
class BatchNrResult:
    """Full per-epoch record of a batched Newton-Raphson solve.

    Attributes
    ----------
    positions:
        ``(N, 3)`` estimated receiver positions.
    clock_biases:
        ``(N,)`` solved receiver clock biases (meters).
    iterations:
        ``(N,)`` iterations each epoch actually ran before converging
        (or hitting the budget).
    converged:
        ``(N,)`` whether each epoch met the update tolerance.
    """

    positions: np.ndarray
    clock_biases: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray


class BatchNewtonRaphsonSolver:
    """Vectorized NR over N same-size epochs, with active-set masking.

    Each iteration linearizes all still-unconverged epochs at once
    (stacked Jacobians, one batched 4x4 normal-equations solve) and
    drops epochs whose update norm falls below the tolerance out of
    the active set — so the batch cost tracks the *slowest* epochs
    without re-iterating the finished ones.  This gives the paper's
    baseline a throughput-comparable implementation: NR cannot be made
    closed-form, but its per-iteration linear algebra batches exactly
    like DLO/DLG's single solve does.

    Uses the ``"update"`` convergence criterion of
    :class:`~repro.solvers.newton_raphson.NewtonRaphsonSolver` (state
    update norm below ``tolerance_meters``) and the same cold start.
    """

    name = "BatchNR"

    def __init__(
        self,
        max_iterations: int = 20,
        tolerance_meters: float = 1e-4,
        initial_state: Optional[np.ndarray] = None,
    ) -> None:
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        if tolerance_meters <= 0:
            raise ConfigurationError("tolerance_meters must be positive")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance_meters)
        if initial_state is None:
            self._initial_state = np.zeros(4)
        else:
            state = np.asarray(initial_state, dtype=float)
            if state.shape != (4,) or not np.all(np.isfinite(state)):
                raise ConfigurationError("initial_state must be a finite 4-vector")
            self._initial_state = state.copy()

    def solve_batch(self, epochs: Sequence[ObservationEpoch]) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array.

        Raises :class:`~repro.errors.ConvergenceError` if any epoch
        fails to converge; use :meth:`solve_batch_full` to get partial
        results with per-epoch convergence flags instead.
        """
        result = self.solve_batch_full(epochs)
        if not np.all(result.converged):
            stuck = int(np.count_nonzero(~result.converged))
            raise ConvergenceError(
                f"{stuck} of {len(epochs)} epochs did not converge within "
                f"{self._max_iterations} iterations",
                iterations=self._max_iterations,
            )
        return result.positions

    def solve_batch_full(self, epochs: Sequence[ObservationEpoch]) -> BatchNrResult:
        """Solve N same-size epochs, reporting per-epoch convergence."""
        if not epochs:
            raise GeometryError("solve_batch needs at least one epoch")
        m = epochs[0].satellite_count
        if m < 4:
            raise GeometryError(
                f"batched Newton-Raphson needs at least 4 satellites, got {m}"
            )
        for epoch in epochs:
            if epoch.satellite_count != m:
                raise GeometryError(
                    "all epochs in a batch must have the same satellite count "
                    f"(got {epoch.satellite_count} and {m}); group epochs by "
                    "count before batching"
                )
        positions = np.stack([epoch.satellite_positions() for epoch in epochs])
        pseudoranges = np.stack([epoch.pseudoranges() for epoch in epochs])

        n = len(epochs)
        states = np.tile(self._initial_state, (n, 1))  # (N, 4)
        iterations = np.zeros(n, dtype=int)
        converged = np.zeros(n, dtype=bool)
        active = np.arange(n)

        for iteration in range(1, self._max_iterations + 1):
            state_a = states[active]
            deltas = positions[active] - state_a[:, None, :3]  # (Na, m, 3)
            ranges = np.sqrt(np.einsum("nmi,nmi->nm", deltas, deltas))
            if np.any(ranges < 1.0):
                raise GeometryError(
                    "NR state collided with a satellite position; "
                    "a batch epoch is degenerate"
                )

            # Residuals P_i and Jacobian rows (eq. 3-20..3-24), stacked.
            residuals = ranges - pseudoranges[active] + state_a[:, 3:4]
            jacobian = np.empty((active.size, m, 4))
            jacobian[..., :3] = -deltas / ranges[..., None]
            jacobian[..., 3] = 1.0

            gram = np.einsum("nmi,nmj->nij", jacobian, jacobian)
            moment = np.einsum("nmi,nm->ni", jacobian, -residuals)
            try:
                updates = np.linalg.solve(gram, moment[..., None])[..., 0]
            except np.linalg.LinAlgError as exc:
                raise GeometryError(
                    f"NR normal equations are singular at iteration {iteration}; "
                    "a batch epoch has degenerate geometry"
                ) from exc

            states[active] += updates
            iterations[active] = iteration
            if not np.all(np.isfinite(states[active])):
                raise ConvergenceError(
                    "NR state diverged to non-finite values for a batch epoch",
                    iterations=iteration,
                )

            # Active-set masking: converged epochs drop out of the batch.
            done = np.linalg.norm(updates, axis=1) < self._tolerance
            converged[active[done]] = True
            active = active[~done]
            if active.size == 0:
                break

        return BatchNrResult(
            positions=states[:, :3].copy(),
            clock_biases=states[:, 3].copy(),
            iterations=iterations,
            converged=converged,
        )


def group_epochs_by_count(
    epochs: Sequence[ObservationEpoch],
) -> "dict[int, List[ObservationEpoch]]":
    """Group arbitrary epochs into batchable same-count buckets."""
    groups: "dict[int, List[ObservationEpoch]]" = {}
    for epoch in epochs:
        groups.setdefault(epoch.satellite_count, []).append(epoch)
    return groups
