"""The paper's direct-linearization algorithms DLO and DLG (Section 4).

Pipeline shared by both (Section 4.5):

1. Predict the receiver clock bias ``eps_hat_R`` with the clock model
   (Section 4.2) and remove it: ``rho_E_i = rho_e_i - eps_hat_R``
   (eq. 4-1).
2. Linearize algebraically: expand the squared-range equations
   (eq. 4-6) and subtract the *base* equation from the rest, which
   cancels the quadratic terms and yields the (m-1)-equation linear
   system ``A X = D`` of eq. 4-8..4-11 (:func:`build_difference_system`).
3. Solve:

   * **DLO** with ordinary least squares, ``X = (A^T A)^-1 A^T D``
     (eq. 4-12) — cheap but, per Theorem 4.1, not optimal because the
     differencing correlates the right-hand-side errors.
   * **DLG** with general least squares,
     ``X = (A^T M^-1 A)^-1 A^T M^-1 D`` (eq. 4-21), where ``M`` is the
     difference covariance of eq. 4-26
     (:func:`difference_covariance`) — optimal by Theorem 4.2.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.clocks.prediction import ClockBiasPredictor, ZeroClockBiasPredictor
from repro.constellation.systems import group_layout, system_code
from repro.core.base import PositioningAlgorithm
from repro.core.selection import BaseSatelliteSelector, FirstSelector
from repro.core.types import PositionFix
from repro.errors import ConfigurationError, EstimationError, GeometryError
from repro.estimation import (
    gls_solve_diag_rank1,
    gls_solve_grouped_rank1,
    ols_solve,
)
from repro.observations import ObservationEpoch
from repro.telemetry import get_registry

#: The two constellation policies of the direct-linear solvers.
CONSTELLATION_MODES = ("single", "per_constellation")

#: Condition numbers of the differenced design: well-posed skies sit
#: in the tens; sick geometry climbs orders of magnitude.
_CONDITION_BUCKETS = (1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 1e4, 1e5, 1e6)
#: Residual norms (meters in the whitened/differenced metric).
_RESIDUAL_BUCKETS = (1e-6, 1e-3, 0.1, 1.0, 3.0, 10.0, 30.0, 100.0, 1e3, 1e6)


def _observe_solve(registry, solver: str, design: np.ndarray, residual_norm: float) -> None:
    """Record per-solve design conditioning and residual telemetry.

    Only called when a real registry is installed: the condition
    number costs an SVD the solve itself never needs.
    """
    registry.counter(
        "repro_solver_solves_total",
        "Solver invocations by outcome.",
        labels=("solver", "status"),
    ).labels(solver=solver, status="converged").inc()
    registry.histogram(
        "repro_solver_condition_number",
        "Condition number of the design matrix per solve.",
        labels=("solver",),
        buckets=_CONDITION_BUCKETS,
    ).labels(solver=solver).observe(float(np.linalg.cond(design)))
    registry.histogram(
        "repro_solver_residual_norm",
        "Residual norm per solve (whitened for DLG).",
        labels=("solver",),
        buckets=_RESIDUAL_BUCKETS,
    ).labels(solver=solver).observe(float(residual_norm))


def build_difference_system(
    satellite_positions: np.ndarray,
    corrected_pseudoranges: np.ndarray,
    base_index: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Build the linear system ``A X = D`` of eq. (4-8).

    Parameters
    ----------
    satellite_positions:
        ``(m, 3)`` satellite ECEF positions.
    corrected_pseudoranges:
        ``(m,)`` clock-corrected pseudoranges ``rho_E_i`` (eq. 4-1).
    base_index:
        Which satellite's equation is subtracted from the others.

    Returns
    -------
    (A, D)
        ``A`` is ``(m-1, 3)`` with rows ``s_j - s_base`` (eq. 4-9);
        ``D`` is ``(m-1,)`` with entries
        ``((|s_j|^2 - |s_base|^2) - (rho_j^2 - rho_base^2)) / 2``
        (eq. 4-11).
    """
    positions = np.asarray(satellite_positions, dtype=float)
    pseudoranges = np.asarray(corrected_pseudoranges, dtype=float)
    m = positions.shape[0]
    if m < 2:
        raise GeometryError("differencing needs at least two satellites")
    if not 0 <= base_index < m:
        raise GeometryError(f"base_index {base_index} out of range for {m} satellites")

    mask = np.arange(m) != base_index
    base_position = positions[base_index]
    base_pseudorange = pseudoranges[base_index]

    design = positions[mask] - base_position
    squared_norms = np.einsum("ij,ij->i", positions, positions)
    rhs = 0.5 * (
        (squared_norms[mask] - squared_norms[base_index])
        - (pseudoranges[mask] ** 2 - base_pseudorange**2)
    )
    return design, rhs


def difference_covariance_components(
    corrected_pseudoranges: np.ndarray,
    base_index: int = 0,
) -> Tuple[np.ndarray, float]:
    """The eq. 4-26 covariance in its structured ``(diag, scale)`` form.

    The covariance is diagonal-plus-rank-one,
    ``Psi = diag(rho_j^2) + rho_base^2 * 11^T``: every row of the
    differenced system shares the base-satellite error, and nothing
    else couples rows.  Returning the two components instead of the
    materialized matrix lets GLS run through the O(m) Sherman-Morrison
    whitening (:func:`~repro.estimation.gls_solve_diag_rank1`) — the
    fast path shared by the scalar :class:`DLGSolver` and the batch
    engine.

    Returns
    -------
    (diag, scale)
        ``(m-1,)`` diagonal terms ``rho_j^2`` (base excluded, original
        order) and the scalar rank-one term ``rho_base^2``.
    """
    pseudoranges = np.asarray(corrected_pseudoranges, dtype=float)
    m = pseudoranges.shape[0]
    if m < 2:
        raise GeometryError("differencing needs at least two satellites")
    if not 0 <= base_index < m:
        raise GeometryError(f"base_index {base_index} out of range for {m} satellites")

    mask = np.arange(m) != base_index
    return pseudoranges[mask] ** 2, float(pseudoranges[base_index] ** 2)


def difference_covariance(
    corrected_pseudoranges: np.ndarray,
    base_index: int = 0,
) -> np.ndarray:
    """The covariance structure ``Psi`` of the differenced RHS (eq. 4-26).

    The error in row ``j`` of ``D`` is
    ``Delta beta_j = rho_base * Delta rho_base - rho_j * Delta rho_j``
    (eq. 4-18, to first order), so with i.i.d. pseudorange errors of
    variance ``sigma^2``:

    * diagonal: ``rho_base^2 + rho_j^2``
    * off-diagonal: ``rho_base^2`` (every row shares the base error)

    The common factor ``sigma^2`` cancels in GLS, so it is omitted.
    Measured pseudoranges stand in for the unknown true ranges, as the
    paper does — at GPS ranges (2e7 m) the relative substitution error
    is ~1e-6 and irrelevant.

    This materializes the dense ``(m-1, m-1)`` matrix for callers that
    need it (ablations, diagnostics); the solvers themselves use
    :func:`difference_covariance_components` and never build it.
    """
    diag, scale = difference_covariance_components(corrected_pseudoranges, base_index)
    covariance = np.full((diag.shape[0], diag.shape[0]), scale)
    covariance[np.diag_indices(diag.shape[0])] += diag
    return covariance


# ----------------------------------------------------------------------
# Multi-constellation differencing: one base satellite and one bias
# column per constellation.  Cross-constellation differences would keep
# quadratic ``b_c^2 - b_c'^2`` terms (different system clocks do not
# cancel), so each constellation differences against *its own* base —
# the quadratic terms cancel within the group exactly as in eq. 4-6,
# and the per-group bias survives as a *linear* column:
#
#     (s_i - s_b) . x  -  (rho_i - rho_b) b_c  =  D_i   (eq. 4-11 rhs)
#
# for satellite i and base b both in constellation c.  The unknown
# vector grows from (x, y, z) to (x, y, z, b_1..b_K).
# ----------------------------------------------------------------------


def check_multi_admissibility(groups: np.ndarray, codes: np.ndarray) -> None:
    """Reject group layouts the per-constellation system cannot solve.

    Every constellation must contribute at least two satellites (a
    singleton loses its only equation to the differencing, leaving its
    bias unobservable), and the differenced system must keep at least
    as many equations as unknowns: ``m - K >= 3 + K``.
    """
    k_groups = int(codes.shape[0])
    m = int(groups.shape[0])
    counts = np.bincount(groups, minlength=k_groups)
    if k_groups and counts.min() < 2:
        singleton = system_code(int(codes[int(np.argmin(counts))]))
        raise GeometryError(
            f"constellation {singleton!r} contributes a single satellite; "
            "its clock bias is unobservable under per-constellation "
            "differencing"
        )
    if m - k_groups < 3 + k_groups:
        raise GeometryError(
            f"{m} satellites across {k_groups} constellations give "
            f"{m - k_groups} differenced equations for {3 + k_groups} "
            f"unknowns; need at least {3 + 2 * k_groups} satellites"
        )


def build_multi_difference_system(
    satellite_positions: np.ndarray,
    pseudoranges: np.ndarray,
    system_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Build the per-constellation linear system ``A X = D``.

    Parameters
    ----------
    satellite_positions:
        ``(m, 3)`` satellite ECEF positions.
    pseudoranges:
        ``(m,)`` *raw* pseudoranges (no bias removal: the biases are
        unknowns of this system, one per constellation).
    system_ids:
        ``(m,)`` numeric system ids
        (:data:`repro.constellation.systems.SYSTEM_CODES` indices).

    Returns
    -------
    (design, rhs, row_groups, base_indices, codes)
        ``design`` is ``(m - K, 3 + K)``: position columns
        ``s_i - s_base(c)`` plus, in column ``3 + c``, the bias
        coefficient ``-(rho_i - rho_base(c))`` of satellite ``i``'s
        constellation (zero elsewhere).  ``rhs`` is the eq. 4-11
        right-hand side per-group.  ``row_groups`` maps each row to its
        constellation index, ``base_indices`` gives each
        constellation's base satellite (first occurrence, a
        deterministic choice that survives relabeling), and ``codes``
        the numeric system id of each group in first-appearance order.
    """
    positions = np.asarray(satellite_positions, dtype=float)
    rho = np.asarray(pseudoranges, dtype=float)
    groups, codes = group_layout(system_ids)
    check_multi_admissibility(groups, codes)
    m = positions.shape[0]
    k_groups = int(codes.shape[0])

    # First occurrence of each group is its base satellite.
    base_indices = np.full(k_groups, -1, dtype=np.int64)
    for index in range(m):
        g = groups[index]
        if base_indices[g] < 0:
            base_indices[g] = index
    non_base = np.ones(m, dtype=bool)
    non_base[base_indices] = False

    row_groups = groups[non_base]
    base_positions = positions[base_indices]  # (K, 3)
    base_rho = rho[base_indices]  # (K,)

    design = np.zeros((m - k_groups, 3 + k_groups))
    design[:, :3] = positions[non_base] - base_positions[row_groups]
    rows = np.arange(m - k_groups)
    design[rows, 3 + row_groups] = -(rho[non_base] - base_rho[row_groups])

    squared_norms = np.einsum("ij,ij->i", positions, positions)
    base_squared = squared_norms[base_indices]
    rhs = 0.5 * (
        (squared_norms[non_base] - base_squared[row_groups])
        - (rho[non_base] ** 2 - base_rho[row_groups] ** 2)
    )
    return design, rhs, row_groups, base_indices, codes


def multi_difference_covariance_components(
    pseudoranges: np.ndarray,
    base_indices: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """The block-diagonal eq. 4-26 covariance in ``(diag, scales)`` form.

    Within a constellation the differenced errors share that group's
    base satellite; across constellations the bases are independent, so
    the covariance is block-diagonal with one diag+rank-one block per
    group: ``Psi = diag(rho_j^2) + sum_g rho_base(g)^2 1_g 1_g^T``.

    Returns ``(diag (m-K,), scales (K,))`` aligned with the rows/groups
    of :func:`build_multi_difference_system`.
    """
    rho = np.asarray(pseudoranges, dtype=float)
    base_indices = np.asarray(base_indices, dtype=np.int64)
    non_base = np.ones(rho.shape[0], dtype=bool)
    non_base[base_indices] = False
    return rho[non_base] ** 2, rho[base_indices] ** 2


class _DirectLinearBase(PositioningAlgorithm):
    """Shared machinery of DLO and DLG."""

    #: Direct linearization consumes one equation for the differencing,
    #: so m satellites give m-1 linear equations in 3 unknowns: m >= 4.
    min_satellites = 4

    def __init__(
        self,
        clock_predictor: Optional[ClockBiasPredictor] = None,
        base_selector: Optional[BaseSatelliteSelector] = None,
        constellations: str = "single",
    ) -> None:
        if constellations not in CONSTELLATION_MODES:
            raise ConfigurationError(
                f"constellations must be one of {CONSTELLATION_MODES}, "
                f"got {constellations!r}"
            )
        if constellations == "per_constellation":
            # Per-constellation mode *estimates* every system's bias;
            # a predicted-and-removed global bias contradicts that, and
            # the base choice is per-group (first satellite of each
            # constellation), so a single-base selector has no meaning.
            if clock_predictor is not None:
                raise ConfigurationError(
                    "per-constellation mode estimates the clock biases; "
                    "a clock predictor cannot be combined with it"
                )
            if base_selector is not None:
                raise ConfigurationError(
                    "per-constellation mode picks one base per "
                    "constellation; a base selector cannot be combined "
                    "with it"
                )
        self.constellations = constellations
        #: The eps_hat_R source (eq. 4-4).  Defaults to the zero
        #: predictor, appropriate when the caller feeds pseudoranges
        #: that are already clock-free (e.g. unit tests, DGPS-corrected
        #: data); real pipelines pass a warmed-up LinearClockBiasPredictor.
        self.clock_predictor = (
            clock_predictor if clock_predictor is not None else ZeroClockBiasPredictor()
        )
        self.base_selector = base_selector if base_selector is not None else FirstSelector()

    # ------------------------------------------------------------------
    def _prepare(self, epoch: ObservationEpoch):
        """Steps 1-2 common to both algorithms."""
        self._require_satellites(epoch)
        bias = float(self.clock_predictor.predict_bias_meters(epoch.time))
        positions = epoch.satellite_positions()
        corrected = epoch.pseudoranges() - bias  # eq. 4-1
        if np.any(corrected <= 0):
            raise GeometryError(
                "clock-corrected pseudoranges are non-positive; the clock "
                "bias prediction is grossly wrong for this epoch"
            )
        base_index = self.base_selector.select(epoch)
        design, rhs = build_difference_system(positions, corrected, base_index)
        return bias, corrected, base_index, design, rhs

    def _finish(
        self,
        solution: np.ndarray,
        design: np.ndarray,
        rhs: np.ndarray,
        bias: float,
    ) -> PositionFix:
        residuals = rhs - design @ solution
        return PositionFix(
            position=solution,
            clock_bias_meters=bias,
            algorithm=self.name,
            iterations=1,
            converged=True,
            residual_norm=float(np.linalg.norm(residuals)),
        )

    def residual_dof(self, epoch: ObservationEpoch) -> int:
        """``m - 4`` classically; ``m - 3 - 2K`` per-constellation.

        Differencing consumes one equation per constellation (``m - K``
        rows) and the state gains one clock unknown per constellation
        (``3 + K`` columns), so each extra constellation costs *two*
        degrees of freedom — one equation and one unknown.
        """
        if self.constellations != "per_constellation":
            return epoch.satellite_count - 4
        return epoch.satellite_count - 3 - 2 * epoch.constellation_count

    # ------------------------------------------------------------------
    def _prepare_multi(self, epoch: ObservationEpoch):
        """Build the per-constellation differenced system for an epoch."""
        self._require_satellites(epoch)
        positions, rho, _prns, system_ids = epoch.dense()
        return build_multi_difference_system(positions, rho, system_ids)

    def _finish_multi(
        self,
        solution: np.ndarray,
        codes: np.ndarray,
        residual_norm: float,
    ) -> PositionFix:
        biases = tuple(
            (system_code(int(code)), float(solution[3 + g]))
            for g, code in enumerate(codes)
        )
        return PositionFix(
            position=solution[:3],
            clock_bias_meters=biases[0][1],
            algorithm=self.name,
            iterations=1,
            converged=True,
            residual_norm=float(residual_norm),
            clock_biases=biases,
        )


class DLOSolver(_DirectLinearBase):
    """Algorithm DLO: direct linearization + ordinary least squares.

    The fastest of the three methods (no iteration, no covariance
    handling), at the cost of the Theorem-4.1 sub-optimality: accuracy
    degrades as satellite count grows because the correlated
    differencing errors are treated as independent.
    """

    name = "DLO"

    def solve(self, epoch: ObservationEpoch) -> PositionFix:
        if self.constellations == "per_constellation":
            return self._solve_multi(epoch)
        bias, _corrected, _base, design, rhs = self._prepare(epoch)
        try:
            solution = ols_solve(design, rhs)  # eq. 4-12
        except EstimationError as exc:
            raise GeometryError(f"DLO design matrix is degenerate: {exc}") from exc
        fix = self._finish(solution, design, rhs, bias)
        registry = get_registry()
        if registry.enabled:
            _observe_solve(registry, self.name.lower(), design, fix.residual_norm)
        return fix

    def _solve_multi(self, epoch: ObservationEpoch) -> PositionFix:
        design, rhs, _row_groups, _bases, codes = self._prepare_multi(epoch)
        try:
            solution = ols_solve(design, rhs)  # eq. 4-12, (3+K) unknowns
        except EstimationError as exc:
            raise GeometryError(f"DLO design matrix is degenerate: {exc}") from exc
        fix = self._finish_multi(
            solution, codes, float(np.linalg.norm(rhs - design @ solution))
        )
        registry = get_registry()
        if registry.enabled:
            _observe_solve(registry, self.name.lower(), design, fix.residual_norm)
        return fix


class DLGSolver(_DirectLinearBase):
    """Algorithm DLG: direct linearization + general least squares.

    Whitens the differenced system with the eq. 4-26 covariance before
    solving, restoring optimality (Theorem 4.2) at a modest extra cost —
    still closed-form, still far cheaper than NR.

    DLG fixes report ``residual_norm`` as the *whitened* (Mahalanobis)
    residual norm, which the eq. 4-26 covariance scales back to
    pseudorange-domain units — chi-square testable with ``m - 4``
    degrees of freedom, so DLG plugs directly into
    :class:`~repro.integrity.raim.RaimMonitor`.  (DLO's residual norm
    stays
    in the raw differenced domain, ~range-times-larger.)
    """

    name = "DLG"

    def solve(self, epoch: ObservationEpoch) -> PositionFix:
        if self.constellations == "per_constellation":
            return self._solve_multi(epoch)
        bias, corrected, base_index, design, rhs = self._prepare(epoch)
        diag, scale = difference_covariance_components(corrected, base_index)
        try:
            # eq. 4-21 with the eq. 4-26 covariance applied through its
            # diag+rank-one structure: O(m) whitening, no factorization.
            solution, whitened_norm = gls_solve_diag_rank1(design, rhs, diag, scale)
        except EstimationError as exc:
            raise GeometryError(f"DLG system is degenerate: {exc}") from exc
        registry = get_registry()
        if registry.enabled:
            _observe_solve(registry, self.name.lower(), design, whitened_norm)
        return PositionFix(
            position=solution,
            clock_bias_meters=bias,
            algorithm=self.name,
            iterations=1,
            converged=True,
            residual_norm=whitened_norm,
        )

    def _solve_multi(self, epoch: ObservationEpoch) -> PositionFix:
        design, rhs, row_groups, base_indices, codes = self._prepare_multi(epoch)
        rho = epoch.dense()[1]
        diag, scales = multi_difference_covariance_components(rho, base_indices)
        try:
            # eq. 4-21 with the block-diagonal covariance applied
            # through its grouped diag+rank-one structure.
            solution, whitened_norm = gls_solve_grouped_rank1(
                design, rhs, diag, scales, row_groups
            )
        except EstimationError as exc:
            raise GeometryError(f"DLG system is degenerate: {exc}") from exc
        registry = get_registry()
        if registry.enabled:
            _observe_solve(registry, self.name.lower(), design, whitened_norm)
        return self._finish_multi(solution, codes, whitened_norm)
