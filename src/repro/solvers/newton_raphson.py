"""The classic Newton-Raphson GPS solver (paper Section 3.4).

Solves the P4P system (eq. 3-17): unknowns ``(x_e, y_e, z_e, eps_R)``,
measurements ``rho_e_i ~= ||s_i - x|| + eps_R``.  Each iteration
linearizes the residual function with its first-order Taylor expansion
(eq. 3-25/3-26) and solves the resulting linear system — with OLS when
more than four satellites make it over-determined (Step 4) — then adds
the correction to the state.  Iteration stops when the state stops
moving (equivalently, when the residuals ``P_i`` stop improving — the
paper's Step 5).

This is the baseline of every figure in Section 5, so the
implementation deliberately mirrors the paper's algorithm, including
the cold start at the earth's center (eq. 3-27).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.constellation.systems import group_layout, system_code
from repro.core.base import PositioningAlgorithm
from repro.core.types import PositionFix
from repro.errors import ConfigurationError, ConvergenceError, EstimationError, GeometryError
from repro.estimation import ols_solve, weighted_solve
from repro.observations import ObservationEpoch
from repro.telemetry import get_registry

#: NR converges in 4-6 iterations from the cold start, 1-2 warm.
_ITERATION_BUCKETS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 15, 20)


class NewtonRaphsonSolver(PositioningAlgorithm):
    """Iterative NR positioning with a solved receiver clock bias.

    Parameters
    ----------
    max_iterations:
        Iteration budget before declaring non-convergence — the failure
        mode the paper's closed-form methods are designed to avoid.
    tolerance_meters:
        Convergence threshold on the norm of the state update (position
        and clock components together, both in meters).
    initial_state:
        Optional warm start ``(x, y, z, eps_R)`` in meters.  Defaults to
        the paper's cold start at ``(0, 0, 0, 0)``.
    elevation_weighted:
        Solve the inner system with per-satellite weights
        ``sin^2(elevation)`` instead of plain OLS — the conventional
        de-weighting of noisy low satellites.  Off by default: the
        paper's NR uses OLS (§3.4 Step 4), and the figures are
        reproduced against that baseline.
    convergence:
        ``"update"`` (default) stops when the state update norm drops
        below ``tolerance_meters`` — the numerically robust criterion.
        ``"residual"`` stops when the residuals stop improving (their
        max-norm decreases by less than ``tolerance_meters`` between
        iterations) — the paper's literal Step 5 ("if P_i^[k+1] is
        small enough, stop"), which on noisy data means *stops
        changing*: the residual floor is the measurement noise, not
        zero.  Both criteria converge to the same fix; the counts of
        iterations differ by at most one in practice.
    """

    name = "NR"
    min_satellites = 4

    def __init__(
        self,
        max_iterations: int = 20,
        tolerance_meters: float = 1e-4,
        initial_state: Optional[np.ndarray] = None,
        elevation_weighted: bool = False,
        convergence: str = "update",
        constellations: str = "single",
    ) -> None:
        if max_iterations < 1:
            raise ConfigurationError("max_iterations must be at least 1")
        if tolerance_meters <= 0:
            raise ConfigurationError("tolerance_meters must be positive")
        if convergence not in ("update", "residual"):
            raise ConfigurationError(
                f"convergence must be 'update' or 'residual', got {convergence!r}"
            )
        if constellations not in ("single", "per_constellation"):
            raise ConfigurationError(
                "constellations must be 'single' or 'per_constellation', "
                f"got {constellations!r}"
            )
        if constellations == "per_constellation" and initial_state is not None:
            raise ConfigurationError(
                "per-constellation NR sizes its state per epoch "
                "(3 + K unknowns); a fixed initial_state cannot be combined "
                "with it"
            )
        self.constellations = constellations
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance_meters)
        self._elevation_weighted = bool(elevation_weighted)
        self._convergence = convergence
        if initial_state is None:
            self._initial_state = np.zeros(4)
        else:
            state = np.asarray(initial_state, dtype=float)
            if state.shape != (4,) or not np.all(np.isfinite(state)):
                raise ConfigurationError("initial_state must be a finite 4-vector")
            self._initial_state = state.copy()

    def as_batch(self) -> "BatchNewtonRaphsonSolver":
        """A batched NR solver sharing this solver's configuration.

        The batched implementation
        (:class:`~repro.solvers.batch.BatchNewtonRaphsonSolver`) stacks
        the per-iteration linear algebra across epochs and masks
        converged epochs out of the active set.  It always uses the
        ``"update"`` convergence criterion and plain OLS, so a solver
        configured with ``convergence="residual"`` or
        ``elevation_weighted=True`` cannot be batched faithfully.
        """
        if self._elevation_weighted:
            raise ConfigurationError(
                "batched NR does not support elevation weighting"
            )
        if self._convergence != "update":
            raise ConfigurationError(
                "batched NR only supports the 'update' convergence criterion"
            )
        from repro.solvers.batch import BatchNewtonRaphsonSolver

        return BatchNewtonRaphsonSolver(
            max_iterations=self._max_iterations,
            tolerance_meters=self._tolerance,
            initial_state=(
                None
                if self.constellations == "per_constellation"
                else self._initial_state
            ),
            constellations=self.constellations,
        )

    def residual_dof(self, epoch: ObservationEpoch) -> int:
        """``m - 4`` classically; ``m - 3 - K`` per-constellation.

        The undifferenced NR system keeps all ``m`` equations and adds
        one clock unknown per constellation, so redundancy shrinks by
        one per extra constellation — contrast the differenced DLO/DLG
        counting, which also loses one *equation* per constellation.
        """
        if self.constellations != "per_constellation":
            return epoch.satellite_count - 4
        return epoch.satellite_count - 3 - epoch.constellation_count

    def solve(self, epoch: ObservationEpoch) -> PositionFix:
        if self.constellations == "per_constellation":
            return self._solve_multi(epoch)
        self._require_satellites(epoch)
        positions = epoch.satellite_positions()  # (m, 3)
        pseudoranges = epoch.pseudoranges()  # (m,)
        weights = None
        if self._elevation_weighted:
            elevations = np.array([obs.elevation for obs in epoch.observations])
            clamped = np.clip(elevations, np.radians(5.0), None)
            weights = np.sin(clamped) ** 2
        state = self._initial_state.copy()  # [x, y, z, eps_R]

        iterations_used = 0
        residuals = np.zeros(len(pseudoranges))
        previous_residual_max = float("inf")
        for iteration in range(1, self._max_iterations + 1):
            iterations_used = iteration
            deltas = positions - state[:3]  # s_i - x, shape (m, 3)
            ranges = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
            if np.any(ranges < 1.0):
                # The estimate coincides with a satellite; the Jacobian
                # is undefined there.  This only happens on pathological
                # inputs, so fail loudly.
                raise GeometryError(
                    "NR state collided with a satellite position; "
                    "input epoch is degenerate"
                )

            # Residual function P_i = R_i - rho_i + eps_R (eq. 3-24).
            residuals = ranges - pseudoranges + state[3]

            # Jacobian rows: dP/dx = (x - x_i)/R_i (and likewise y, z),
            # dP/d eps_R = 1  (eq. 3-20..3-23).
            jacobian = np.empty((len(ranges), 4))
            jacobian[:, :3] = -deltas / ranges[:, None]
            jacobian[:, 3] = 1.0

            # Step 4: solve J * delta = -P, by (weighted) least squares
            # when over-determined.
            try:
                if weights is None:
                    update = ols_solve(jacobian, -residuals)
                else:
                    update = weighted_solve(jacobian, -residuals, weights)
            except EstimationError as exc:
                raise GeometryError(
                    f"NR normal equations are singular at iteration {iteration}: {exc}"
                ) from exc

            state += update
            if not np.all(np.isfinite(state)):
                raise ConvergenceError(
                    "NR state diverged to non-finite values", iterations=iteration
                )
            if self._convergence == "update":
                converged = float(np.linalg.norm(update)) < self._tolerance
            else:
                # Paper Step 5: stop when the residuals stop improving.
                residual_max = float(np.max(np.abs(residuals)))
                converged = (
                    previous_residual_max - residual_max
                ) < self._tolerance and iteration > 1
                previous_residual_max = residual_max
            if converged:
                registry = get_registry()
                if registry.enabled:
                    self._observe(registry, jacobian, residuals, iteration, True)
                return PositionFix(
                    position=state[:3],
                    clock_bias_meters=float(state[3]),
                    algorithm=self.name,
                    iterations=iteration,
                    converged=True,
                    residual_norm=float(np.linalg.norm(residuals)),
                )

        registry = get_registry()
        if registry.enabled:
            self._observe(registry, jacobian, residuals, iterations_used, False)
        raise ConvergenceError(
            f"NR did not converge within {self._max_iterations} iterations "
            f"(last update residual norm {np.linalg.norm(residuals):.3e} m)",
            iterations=iterations_used,
        )

    # ------------------------------------------------------------------
    def _solve_multi(self, epoch: ObservationEpoch) -> PositionFix:
        """NR with one clock-bias unknown per constellation present.

        State ``(x, y, z, b_1..b_K)``: the residual of satellite ``i``
        in constellation ``c`` is ``P_i = R_i - rho_i + b_c`` and its
        Jacobian bias columns are the one-hot group indicators — the
        undifferenced counterpart of the per-constellation DLO/DLG
        system.  Needs ``m >= 3 + K`` (NR does tolerate singleton
        constellations: the shared position couples their single
        equation to the rest).
        """
        self._require_satellites(epoch)
        positions, pseudoranges, _prns, system_ids = epoch.dense()
        groups, codes = group_layout(system_ids)
        k_groups = int(codes.shape[0])
        m = positions.shape[0]
        if m < 3 + k_groups:
            raise GeometryError(
                f"{m} satellites cannot determine {3 + k_groups} unknowns "
                f"({k_groups} constellation clock biases)"
            )
        weights = None
        if self._elevation_weighted:
            elevations = np.array([obs.elevation for obs in epoch.observations])
            clamped = np.clip(elevations, np.radians(5.0), None)
            weights = np.sin(clamped) ** 2
        state = np.zeros(3 + k_groups)

        iterations_used = 0
        residuals = np.zeros(m)
        previous_residual_max = float("inf")
        for iteration in range(1, self._max_iterations + 1):
            iterations_used = iteration
            deltas = positions - state[:3]
            ranges = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
            if np.any(ranges < 1.0):
                raise GeometryError(
                    "NR state collided with a satellite position; "
                    "input epoch is degenerate"
                )
            residuals = ranges - pseudoranges + state[3 + groups]
            jacobian = np.zeros((m, 3 + k_groups))
            jacobian[:, :3] = -deltas / ranges[:, None]
            jacobian[np.arange(m), 3 + groups] = 1.0
            try:
                if weights is None:
                    update = ols_solve(jacobian, -residuals)
                else:
                    update = weighted_solve(jacobian, -residuals, weights)
            except EstimationError as exc:
                raise GeometryError(
                    f"NR normal equations are singular at iteration {iteration}: {exc}"
                ) from exc
            state += update
            if not np.all(np.isfinite(state)):
                raise ConvergenceError(
                    "NR state diverged to non-finite values", iterations=iteration
                )
            if self._convergence == "update":
                converged = float(np.linalg.norm(update)) < self._tolerance
            else:
                residual_max = float(np.max(np.abs(residuals)))
                converged = (
                    previous_residual_max - residual_max
                ) < self._tolerance and iteration > 1
                previous_residual_max = residual_max
            if converged:
                registry = get_registry()
                if registry.enabled:
                    self._observe(registry, jacobian, residuals, iteration, True)
                biases = tuple(
                    (system_code(int(code)), float(state[3 + g]))
                    for g, code in enumerate(codes)
                )
                return PositionFix(
                    position=state[:3],
                    clock_bias_meters=biases[0][1],
                    algorithm=self.name,
                    iterations=iteration,
                    converged=True,
                    residual_norm=float(np.linalg.norm(residuals)),
                    clock_biases=biases,
                )

        registry = get_registry()
        if registry.enabled:
            self._observe(registry, jacobian, residuals, iterations_used, False)
        raise ConvergenceError(
            f"NR did not converge within {self._max_iterations} iterations "
            f"(last update residual norm {np.linalg.norm(residuals):.3e} m)",
            iterations=iterations_used,
        )

    def _observe(self, registry, jacobian, residuals, iterations, converged) -> None:
        """Per-solve telemetry: iterations, conditioning, residual, outcome."""
        solver = self.name.lower()
        registry.counter(
            "repro_solver_solves_total",
            "Solver invocations by outcome.",
            labels=("solver", "status"),
        ).labels(solver=solver, status="converged" if converged else "failed").inc()
        registry.histogram(
            "repro_solver_iterations",
            "Iterations to convergence (or budget exhaustion).",
            labels=("solver",),
            buckets=_ITERATION_BUCKETS,
        ).labels(solver=solver).observe(iterations)
        registry.histogram(
            "repro_solver_condition_number",
            "Condition number of the design matrix per solve.",
            labels=("solver",),
            buckets=(1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1e3, 1e4, 1e5, 1e6),
        ).labels(solver=solver).observe(float(np.linalg.cond(jacobian)))
        registry.histogram(
            "repro_solver_residual_norm",
            "Residual norm per solve (whitened for DLG).",
            labels=("solver",),
            buckets=(1e-6, 1e-3, 0.1, 1.0, 3.0, 10.0, 30.0, 100.0, 1e3, 1e6),
        ).labels(solver=solver).observe(float(np.linalg.norm(residuals)))
