"""repro.solvers — the canonical home of the positioning solvers.

The implementation layer behind the :mod:`repro.api` facade: the
paper's scalar algorithms and their stacked batch counterparts, seven
constructors in all.

* :class:`NewtonRaphsonSolver` — the iterative baseline (Section 3.4).
* :class:`DLOSolver` / :class:`DLGSolver` — the paper's direct
  linearization solved with OLS / GLS (Section 4.5).
* :class:`BancroftSolver` — the classic closed-form comparator [2].
* :class:`BatchNewtonRaphsonSolver` / :class:`BatchDLOSolver` /
  :class:`BatchDLGSolver` — the same three families as stacked-tensor
  batch solves (Section 6, extension 3).

Most callers should not construct these directly: build them from a
:class:`repro.api.SolverConfig` (``config.build_solver()`` /
``config.build_batch_solver()``) or call :func:`repro.api.solve`, so
solver choice and tuning travel as one frozen value instead of seven
scattered constructor signatures.  These classes remain public as the
extension surface — subclass or instantiate them when implementing a
new solver path, not when merely *using* one.

Up to PR 4 the modules lived under ``repro.core``; the old import
paths (``repro.core.newton_raphson`` et al.) still work as thin shims
that emit :class:`DeprecationWarning`, and the :mod:`repro.core`
package itself re-exports every solver name warning-free.
"""

from repro.solvers.newton_raphson import NewtonRaphsonSolver
from repro.solvers.direct_linear import (
    CONSTELLATION_MODES,
    DLOSolver,
    DLGSolver,
    build_difference_system,
    build_multi_difference_system,
    difference_covariance,
    difference_covariance_components,
    multi_difference_covariance_components,
)
from repro.solvers.bancroft import BancroftSolver
from repro.solvers.batch import (
    BatchDLOSolver,
    BatchDLGSolver,
    BatchMultiResult,
    BatchNewtonRaphsonSolver,
    BatchNrResult,
    build_difference_systems,
    build_multi_difference_systems,
    group_epochs_by_count,
)

__all__ = [
    "CONSTELLATION_MODES",
    "NewtonRaphsonSolver",
    "DLOSolver",
    "DLGSolver",
    "BancroftSolver",
    "BatchDLOSolver",
    "BatchDLGSolver",
    "BatchMultiResult",
    "BatchNewtonRaphsonSolver",
    "BatchNrResult",
    "build_difference_system",
    "build_difference_systems",
    "build_multi_difference_system",
    "build_multi_difference_systems",
    "difference_covariance",
    "difference_covariance_components",
    "multi_difference_covariance_components",
    "group_epochs_by_count",
]
