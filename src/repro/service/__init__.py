"""repro.service — the async positioning request server.

The serving layer of the reproduction: where
:class:`~repro.engine.PositioningEngine` answers a *pre-assembled
stream* in bulk, the service answers *individually submitted epochs*
from concurrent callers at near-batch throughput, by micro-batching:
requests coalesce in a :class:`MicroBatcher` until the batch is full
or the oldest request has waited ``max_wait_seconds``, then the whole
batch solves in one vectorized call.

The pieces:

* :class:`ServiceConfig` / :class:`ServiceResult` — frozen tuning and
  the structured per-request answer (failure is a status, never an
  exception escaping a batch).
* :class:`MicroBatcher` — the dynamic aggregator (flush on *full*,
  *deadline*, or *close*).
* :class:`PositioningService` — admission control with backpressure,
  the worker loop, and the batched→scalar→NR degradation ladder.
* :class:`AsyncPositioningClient` — in-process client offering both
  the structured contract (:meth:`~AsyncPositioningClient.submit`)
  and the exception-style one (:meth:`~AsyncPositioningClient.solve`).

Quickstart::

    import asyncio
    from repro.api import SolverConfig
    from repro.service import AsyncPositioningClient, PositioningService, ServiceConfig

    async def main(epochs):
        config = ServiceConfig(solver=SolverConfig(algorithm="dlg"))
        async with PositioningService(config) as service:
            client = AsyncPositioningClient(service)
            return await client.solve_many(epochs)

    results = asyncio.run(main(epochs))

``repro-gps serve`` runs exactly this loop against a simulated station
and reports the throughput/latency distribution.
"""

from repro.service.batcher import Flush, MicroBatcher
from repro.service.client import AsyncPositioningClient
from repro.service.executor import BatchExecutor, BatchMeta
from repro.service.service import PositioningService
from repro.service.shard import ShardConfig, ShardedPositioningService
from repro.service.types import RESULT_STATUSES, ServiceConfig, ServiceResult

__all__ = [
    "AsyncPositioningClient",
    "BatchExecutor",
    "BatchMeta",
    "Flush",
    "MicroBatcher",
    "PositioningService",
    "RESULT_STATUSES",
    "ServiceConfig",
    "ServiceResult",
    "ShardConfig",
    "ShardedPositioningService",
]
