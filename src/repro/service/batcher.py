"""The dynamic micro-batching aggregator.

:class:`MicroBatcher` is the service's admission queue *and* batch
former in one object, a three-state machine::

    EMPTY ──put()──► COLLECTING ──full / deadline / close──► FLUSH ──► EMPTY

* **EMPTY** — ``next_batch()`` parks on an event until a request
  arrives (or the batcher closes).
* **COLLECTING** — the flush deadline is pinned to the *oldest*
  pending item (``enqueued_at + max_wait_seconds``): a request never
  waits longer than ``max_wait_seconds`` for followers, no matter how
  steadily they trickle in behind it.
* **FLUSH** — triggered by whichever comes first: the queue reaching
  ``max_batch_size`` (*full*), the oldest item's deadline (*deadline*),
  or :meth:`close` (*close*, which then drains the remainder in
  max-batch-size chunks so shutdown never drops work).

The batcher is deliberately solver-agnostic — it hands back opaque
items plus the flush reason and lets the service do the dispatching —
so its timing logic is testable with plain integers as items.

Single-loop discipline: all methods must be called from the event loop
that runs ``next_batch()``.  ``put``/``close`` are plain synchronous
calls (no await), so there are no cross-coroutine races beyond the
event signalling handled here.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.errors import ConfigurationError, ServiceError

#: Why a batch was flushed.
FLUSH_FULL = "full"
FLUSH_DEADLINE = "deadline"
FLUSH_CLOSE = "close"


@dataclass(frozen=True)
class Flush:
    """One formed batch: the items and why they were flushed now.

    ``oldest_enqueued_at`` is the loop-clock enqueue time of the batch's
    oldest item — what queue-delay metrics are computed from.
    ``sequence`` numbers flushes monotonically per batcher (starting at
    0), giving every dispatched batch a stable identity that traces and
    flight-recorder records use as batch lineage.
    """

    items: Tuple
    reason: str
    oldest_enqueued_at: float
    sequence: int = 0

    def __len__(self) -> int:
        return len(self.items)


class MicroBatcher:
    """Coalesce individually submitted items into bounded batches."""

    def __init__(self, max_batch_size: int, max_wait_seconds: float) -> None:
        if max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if max_wait_seconds < 0.0:
            raise ConfigurationError("max_wait_seconds must be >= 0")
        self._max_batch = int(max_batch_size)
        self._max_wait = float(max_wait_seconds)
        self._pending: Deque[Tuple[object, float]] = deque()
        self._wakeup = asyncio.Event()
        self._closed = False
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def put(self, item: object) -> None:
        """Enqueue one item, stamping it with the loop clock."""
        if self._closed:
            raise ServiceError("cannot enqueue into a closed batcher")
        now = asyncio.get_running_loop().time()
        self._pending.append((item, now))
        self._wakeup.set()

    def close(self) -> None:
        """Stop admitting; pending items drain through ``next_batch``."""
        self._closed = True
        self._wakeup.set()

    def _drain(self, reason: str) -> Flush:
        take = min(self._max_batch, len(self._pending))
        oldest = self._pending[0][1]
        items = tuple(self._pending.popleft()[0] for _ in range(take))
        sequence = self._sequence
        self._sequence += 1
        return Flush(
            items=items,
            reason=reason,
            oldest_enqueued_at=oldest,
            sequence=sequence,
        )

    async def next_batch(self) -> Optional[Flush]:
        """The next formed batch, or ``None`` once closed and drained."""
        # EMPTY: park until something arrives or the batcher closes.
        while not self._pending:
            if self._closed:
                return None
            self._wakeup.clear()
            await self._wakeup.wait()

        # COLLECTING: the oldest item's age bounds everyone's wait.
        loop = asyncio.get_running_loop()
        deadline = self._pending[0][1] + self._max_wait
        while len(self._pending) < self._max_batch and not self._closed:
            remaining = deadline - loop.time()
            if remaining <= 0.0:
                return self._drain(FLUSH_DEADLINE)
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return self._drain(FLUSH_DEADLINE)

        # FLUSH: full batch, or close() interrupted the collection.
        if len(self._pending) >= self._max_batch:
            return self._drain(FLUSH_FULL)
        return self._drain(FLUSH_CLOSE)

    def drain_now(self) -> List[Flush]:
        """Synchronously flush everything pending (shutdown path)."""
        flushes: List[Flush] = []
        while self._pending:
            flushes.append(self._drain(FLUSH_CLOSE))
        return flushes
