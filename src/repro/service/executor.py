"""The process-agnostic batch-execution core.

:class:`BatchExecutor` is the part of the positioning service that
actually *answers* a formed batch: circuit-breaker admission, the
batched solve through :class:`~repro.engine.PositioningEngine`, the
batched→scalar→NR degradation ladder, and integrity verdict
accounting.  It holds no event loop, no queue, and no process state —
exactly the core that must run identically

* **in-process**, driven by the asyncio
  :class:`~repro.service.service.PositioningService` dispatch loop, and
* **in a shard worker**, driven by the worker main loop of
  :class:`~repro.service.shard.ShardedPositioningService` on batches
  that arrived as shared-memory struct-of-arrays views
  (:mod:`repro.service.shm`) rather than epoch objects.

Two entry points cover the two transports:

* :meth:`execute` — epoch objects in (the asyncio dispatch path),
* :meth:`execute_packed` — an already-columnar
  :class:`~repro.blocks.PackedStream` in (the shard worker path);
  epoch objects are materialized lazily only on the rare degradation
  rungs that need per-epoch scalar solving.

Both return the same ``(outcomes, BatchMeta)`` shape, where each
outcome is the tuple
``(status, position, clock_bias, solver, error, verdict, monitor)``
the service tier turns into
:class:`~repro.service.types.ServiceResult`\\ s.  The cross-process
determinism suite holds the two entry points to bitwise agreement on
identical batches.

When the config arms the signal-plausibility plane
(``config.monitors``), every successfully batched solve is also
observed by a :class:`~repro.integrity.monitors.MonitorSuite`:
per-epoch verdicts ride the outcomes, confirmed-``spoofed`` epochs are
blocked (``status="failed"``) when ``block_spoofed`` is set, and
flagged satellites feed the health tracker as monitor strikes.  The
suite's ring-buffer state is keyed on epoch order alone, so the shard
worker and the in-process loop produce bitwise-identical verdicts for
the same stream however it is batched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks import PackedStream, pack_stream
from repro.constellation.systems import system_code
from repro.engine import PositioningEngine
from repro.errors import ReproError
from repro.integrity.fde import EpochVerdict
from repro.integrity.health import SatelliteHealthTracker
from repro.integrity.monitors import (
    EpochMonitorVerdict,
    MonitorRecord,
    MonitorSuite,
    SEVERITY_NAMES,
    SEVERITY_SPOOFED,
)
from repro.observations import (
    EpochTruth,
    ObservationEpoch,
    SatelliteObservation,
    epoch_integrity_error,
)
from repro.telemetry import get_registry

#: One per-request outcome:
#: ``(status, position, clock_bias, solver, error, verdict, monitor)``.
Outcome = Tuple[
    str,
    Optional[np.ndarray],
    Optional[float],
    Optional[str],
    Optional[str],
    Optional[EpochVerdict],
    Optional[EpochMonitorVerdict],
]


@dataclass
class BatchMeta:
    """What one batch execution learned beyond the per-request outcomes.

    Carried back to the dispatching tier so traces and flight-recorder
    entries can name the stage split, the bucket lineage, and the
    resolved biases without re-deriving anything.  ``epochs`` is the
    post-admission epoch list when the caller provided epoch objects;
    the columnar (shard-worker) path leaves it ``None`` — nothing on
    that side retains epoch objects.
    """

    rung: str  # "batch" (engine answered) or "scalar" (ladder ran)
    epochs: Optional[List[ObservationEpoch]] = None
    stage_seconds: Optional[Dict[str, float]] = None
    bucket_keys: Optional[np.ndarray] = None
    bucket_rows: Optional[np.ndarray] = None
    resolved_biases: Optional[np.ndarray] = None

    def lineage(self, index: int):
        """``(bucket_satellites, bucket_row)`` for live-row ``index``."""
        if self.bucket_keys is None or self.bucket_rows is None:
            return -1, -1
        return int(self.bucket_keys[index]), int(self.bucket_rows[index])

    def bias(self, index: int) -> Optional[float]:
        """The clock bias the solve consumed for row ``index``."""
        if self.resolved_biases is None:
            return None
        value = float(self.resolved_biases[index])
        return value if np.isfinite(value) else None


class _ExecutorMetrics:
    """Pre-resolved integrity telemetry children for one registry."""

    __slots__ = (
        "registry",
        "preexclusions",
        "_integrity_family",
        "_children",
        "_monitor_family",
        "_monitor_children",
    )

    def __init__(self, registry) -> None:
        self.registry = registry
        self.preexclusions = registry.counter(
            "repro_service_integrity_preexclusions_total",
            "Quarantined satellites pre-excluded at admission.",
        ).labels()
        self._integrity_family = registry.counter(
            "repro_service_integrity_verdicts_total",
            "FDE verdicts on served epochs.",
            labels=("status",),
        )
        self._children: dict = {}
        self._monitor_family = registry.counter(
            "repro_service_monitor_verdicts_total",
            "Signal-plausibility verdicts on served epochs.",
            labels=("severity",),
        )
        self._monitor_children: dict = {}

    def integrity_child(self, status: str):
        child = self._children.get(status)
        if child is None:
            child = self._integrity_family.labels(status=status)
            self._children[status] = child
        return child

    def monitor_child(self, severity: str):
        child = self._monitor_children.get(severity)
        if child is None:
            child = self._monitor_family.labels(severity=severity)
            self._monitor_children[severity] = child
        return child


class BatchExecutor:
    """Answer formed batches; agnostic to queue, loop, and process.

    ``engine`` may be injected for tests; by default it is built from
    the config's solver via :meth:`PositioningEngine.from_config`
    (with the FDE gate armed when ``config.integrity`` is set).
    ``health_tracker`` may be injected to share satellite-health state
    with other consumers; by default one is built from
    ``config.health`` when the integrity rung is armed.
    """

    def __init__(
        self,
        config,
        engine: Optional[PositioningEngine] = None,
        health_tracker: Optional[SatelliteHealthTracker] = None,
    ) -> None:
        self._config = config
        self._engine = (
            engine
            if engine is not None
            else PositioningEngine.from_config(
                config.solver, fde_config=config.integrity
            )
        )
        if health_tracker is not None:
            self._tracker: Optional[SatelliteHealthTracker] = health_tracker
        elif config.integrity is not None or config.health is not None:
            # FDE always gets a breaker; a monitors-only config gets one
            # when health tracking is explicitly armed (monitor strikes
            # then drive quarantine exactly like exclusions).
            self._tracker = SatelliteHealthTracker(config.health)
        else:
            self._tracker = None
        self._monitors: Optional[MonitorSuite] = (
            config.monitors.build() if config.monitors is not None else None
        )
        solver_config = config.solver
        self._scalar = solver_config.build_solver()
        self._nr_scalar = (
            solver_config.nr_fallback().build_solver()
            if config.nr_fallback and solver_config.algorithm != "nr"
            else None
        )
        self._metrics: Optional[_ExecutorMetrics] = None

    # -- accessors -----------------------------------------------------

    @property
    def engine(self) -> PositioningEngine:
        """The batched engine this executor dispatches to."""
        return self._engine

    @property
    def algorithm(self) -> str:
        """The primary batch algorithm."""
        return self._engine.algorithm

    @property
    def health_tracker(self) -> Optional[SatelliteHealthTracker]:
        """The integrity circuit breaker, when armed."""
        return self._tracker

    @property
    def monitor_suite(self) -> Optional[MonitorSuite]:
        """The signal-plausibility monitor suite, when armed."""
        return self._monitors

    def _telemetry(self) -> Optional[_ExecutorMetrics]:
        registry = get_registry()
        if not registry.enabled:
            return None
        metrics = self._metrics
        if metrics is None or metrics.registry is not registry:
            metrics = _ExecutorMetrics(registry)
            self._metrics = metrics
        return metrics

    # -- admission -----------------------------------------------------

    def admit(self, epochs: List[ObservationEpoch]) -> List[ObservationEpoch]:
        """Circuit breaker: pre-exclude quarantined satellites.

        One :meth:`~repro.integrity.health.SatelliteHealthTracker.admit`
        tick per epoch; the tracker's admission floor guarantees the
        trimmed epoch stays solvable and RAIM-testable.
        """
        assert self._tracker is not None
        admitted: List[ObservationEpoch] = []
        removed = 0
        for epoch in epochs:
            banned = self._tracker.admit(epoch.prns)
            if banned:
                banned_set = set(banned)
                epoch = epoch.with_observations(
                    obs for obs in epoch.observations if obs.prn not in banned_set
                )
                removed += len(banned_set)
            admitted.append(epoch)
        if removed:
            metrics = self._telemetry()
            if metrics is not None:
                metrics.preexclusions.inc(removed)
        return admitted

    def _observe_verdict(
        self, prns: Sequence[int], verdict: EpochVerdict
    ) -> None:
        """Feed one verdict to the health tracker and telemetry."""
        if self._tracker is not None:
            if verdict.status == "repaired":
                self._tracker.record_exclusion(verdict.excluded_prn)
                self._tracker.record_clean(
                    prn for prn in prns if prn != verdict.excluded_prn
                )
            elif verdict.status == "passed":
                self._tracker.record_clean(prns)
        metrics = self._telemetry()
        if metrics is not None:
            metrics.integrity_child(verdict.status).inc()

    # -- execution: epoch objects in ----------------------------------

    def execute(
        self,
        epochs: List[ObservationEpoch],
        bias_overrides: Optional[Sequence[Optional[float]]] = None,
    ) -> Tuple[List[Outcome], BatchMeta]:
        """One formed batch of epoch objects through the full ladder.

        ``bias_overrides`` carries per-request clock-bias overrides
        (``None`` entries defer to the config's predictor).  Returns
        one :data:`Outcome` per epoch, in order.
        """
        if self._tracker is not None:
            epochs = self.admit(epochs)
        biases = self._resolve_biases(epochs, bias_overrides)
        # Pack the flushed batch into columnar blocks here, at the
        # request/array boundary — the engine and everything below it
        # (solvers, FDE, the monitor suite) then runs zero-copy on
        # these arrays.
        packed = pack_stream(epochs)
        try:
            stream = self._engine.solve_stream(packed, biases, on_undersized="drop")
        except ReproError:
            # Rung 2/3: the batched solve rejects whole buckets, so one
            # poisoned epoch fails its batchmates here.  Re-solve
            # per-epoch so every request gets its own verdict.
            return (
                [
                    self.solve_scalar(
                        epoch,
                        bias_overrides[index]
                        if bias_overrides is not None
                        else None,
                    )
                    for index, epoch in enumerate(epochs)
                ],
                BatchMeta(rung="scalar", epochs=epochs),
            )
        outcomes = self._stream_outcomes(
            stream,
            lambda index: epochs[index].prns,
            lambda index: epoch_integrity_error(epochs[index]),
            self._observe_monitors(packed, stream),
        )
        return outcomes, BatchMeta(
            rung="batch",
            epochs=epochs,
            stage_seconds=stream.stage_seconds,
            bucket_keys=stream.diagnostics.bucket_keys,
            bucket_rows=stream.diagnostics.bucket_rows,
            resolved_biases=stream.clock_biases,
        )

    # -- execution: columnar in ----------------------------------------

    def execute_packed(
        self,
        packed: PackedStream,
        biases: Optional[np.ndarray] = None,
    ) -> Tuple[List[Outcome], BatchMeta]:
        """One formed batch of already-columnar epochs (the shard path).

        The hot path never materializes epoch objects: the packed
        stream's arrays flow straight through the engine.  Only the
        rare rungs that need per-epoch treatment — an active quarantine
        trimming satellites, or whole-batch rejection degrading to the
        scalar ladder — rebuild epochs from the block rows.

        ``biases`` uses NaN entries for "no override" (a shared-memory
        array cannot carry ``None``).
        """
        overrides: Optional[List[Optional[float]]] = None
        if biases is not None:
            biases = np.asarray(biases, dtype=float)
            overrides = [
                float(value) if np.isfinite(value) else None
                for value in biases
            ]
            if all(value is None for value in overrides):
                overrides = None
        if self._tracker is not None and self._packed_needs_admission(packed):
            # Quarantine active and this batch carries banned PRNs:
            # admission must trim observations, which changes satellite
            # counts and bucket membership — materialize and take the
            # epoch-object path (rare by construction: the breaker
            # exists to make persistent faults cheap, not frequent).
            epochs = self.materialize(packed)
            return self.execute(epochs, overrides)
        if self._tracker is not None:
            # No trims, but admission still ticks the tracker clock so
            # probation/backoff timing is identical to the epoch path.
            for bucket in packed.buckets:
                for row in range(len(bucket)):
                    self._tracker.admit(
                        tuple(int(p) for p in bucket.block.prns[row])
                    )
        stream_biases = None
        if overrides is not None:
            stream_biases = self._override_array(packed, biases)
        try:
            stream = self._engine.solve_stream(
                packed, stream_biases, on_undersized="drop"
            )
        except ReproError:
            epochs = self.materialize(packed)
            return (
                [
                    self.solve_scalar(
                        epoch,
                        overrides[index] if overrides is not None else None,
                    )
                    if epoch is not None
                    else (
                        "invalid",
                        None,
                        None,
                        None,
                        "epoch failed batch screening",
                        None,
                        None,
                    )
                    for index, epoch in enumerate(epochs)
                ],
                BatchMeta(rung="scalar"),
            )
        prns_for, detail_for = self._packed_accessors(packed)
        outcomes = self._stream_outcomes(
            stream, prns_for, detail_for, self._observe_monitors(packed, stream)
        )
        return outcomes, BatchMeta(
            rung="batch",
            stage_seconds=stream.stage_seconds,
            bucket_keys=stream.diagnostics.bucket_keys,
            bucket_rows=stream.diagnostics.bucket_rows,
            resolved_biases=stream.clock_biases,
        )

    # -- shared internals ----------------------------------------------

    def _observe_monitors(self, packed, stream) -> Optional[MonitorRecord]:
        """Run the monitor suite over one solved batch, when armed.

        The suite sees the stream exactly as solved — NaN rows for
        screened/unrepaired epochs included — so its carried state
        depends only on epoch order, never on how the service batched
        the stream (the shard-parity contract).
        """
        if self._monitors is None:
            return None
        return self._monitors.observe_stream(packed, stream.positions)

    def _observe_monitor_record(self, record: MonitorRecord) -> None:
        """Batch monitor accounting for one segment: telemetry, strikes."""
        metrics = self._telemetry()
        if metrics is not None:
            counts = np.bincount(
                record.severities, minlength=len(SEVERITY_NAMES)
            )
            for level, name in enumerate(SEVERITY_NAMES):
                if counts[level]:
                    metrics.monitor_child(name).inc(int(counts[level]))
        if self._tracker is not None:
            # Monitors name satellites only when a per-satellite
            # statistic implicates them (C/N0 monitors); consistent
            # whole-constellation attacks flag nothing and strike
            # nothing — quarantining every satellite would just blind
            # the receiver the attacker is already blinding.
            for index in np.flatnonzero(record.severities == SEVERITY_SPOOFED):
                for key in record.flagged_keys(int(index), SEVERITY_SPOOFED):
                    self._tracker.record_monitor_strike(key >> 2)

    def _stream_outcomes(self, stream, prns_for, detail_for, monitors=None):
        """Scatter one engine result into per-request outcomes."""
        algorithm = self._engine.algorithm
        fde = stream.diagnostics.fde
        block_spoofed = (
            self._config.monitors is not None and self._config.monitors.block_spoofed
        )
        screened = set(stream.diagnostics.invalid_indices) | set(
            stream.diagnostics.dropped_indices
        )
        alerted = None
        if monitors is not None:
            self._observe_monitor_record(monitors)
            alerted = set(np.flatnonzero(monitors.severities).tolist())
        outcomes: List[Outcome] = []
        for index in range(len(stream.positions)):
            monitor = (
                monitors.verdict(index)
                if alerted is not None and index in alerted
                else None
            )
            if index in screened:
                detail = detail_for(index)
                outcomes.append(
                    (
                        "invalid",
                        None,
                        None,
                        None,
                        detail or "epoch failed batch screening",
                        None,
                        monitor,
                    )
                )
                continue
            verdict = None
            if fde is not None:
                verdict = fde.verdict(index)
                self._observe_verdict(prns_for(index), verdict)
                if verdict.status == "unusable":
                    outcomes.append(
                        (
                            "failed",
                            None,
                            None,
                            None,
                            "integrity: fault detected (statistic "
                            f"{verdict.test_statistic:.1f} > threshold "
                            f"{verdict.threshold:.1f}) and no single-satellite "
                            "exclusion repairs the epoch",
                            verdict,
                            monitor,
                        )
                    )
                    continue
            if (
                block_spoofed
                and monitor is not None
                and monitor.severity == SEVERITY_NAMES[SEVERITY_SPOOFED]
            ):
                tripped = ", ".join(m.monitor for m in monitor.monitors)
                outcomes.append(
                    (
                        "failed",
                        None,
                        None,
                        None,
                        "monitors: epoch confirmed spoofed "
                        f"({tripped}); fix withheld",
                        verdict,
                        monitor,
                    )
                )
                continue
            outcomes.append(
                (
                    "ok",
                    stream.positions[index],
                    float(stream.clock_biases[index]),
                    algorithm,
                    None,
                    verdict,
                    monitor,
                )
            )
        if fde is not None and self._tracker is not None:
            self._tracker.publish()
        return outcomes

    def _resolve_biases(
        self,
        epochs: List[ObservationEpoch],
        overrides: Optional[Sequence[Optional[float]]],
    ) -> Optional[np.ndarray]:
        """Per-request bias overrides, or ``None`` to let the engine's
        stream-level predictor (from the solver config) resolve them."""
        if overrides is None or all(value is None for value in overrides):
            return None
        predictor = self._config.solver.bias_predictor()
        biases = np.empty(len(epochs))
        for index, value in enumerate(overrides):
            if value is not None:
                biases[index] = float(value)
            elif predictor is not None:
                biases[index] = predictor.predict_bias_meters(
                    epochs[index].time
                )
            else:
                biases[index] = 0.0
        return biases

    def _override_array(
        self, packed: PackedStream, biases: np.ndarray
    ) -> np.ndarray:
        """NaN-padded overrides resolved against the config predictor."""
        resolved = np.array(biases, dtype=float)
        missing = ~np.isfinite(resolved)
        if missing.any():
            predictor = self._config.solver.bias_predictor()
            if predictor is None:
                resolved[missing] = 0.0
            else:
                for bucket in packed.buckets:
                    for row, stream_index in enumerate(
                        np.asarray(bucket.indices)
                    ):
                        if missing[stream_index]:
                            resolved[stream_index] = (
                                predictor.predict_bias_meters(
                                    bucket.block.time(row)
                                )
                            )
        return resolved

    @staticmethod
    def _packed_accessors(packed: PackedStream):
        """``(prns_for, detail_for)`` over a packed stream's buckets.

        ``detail_for`` mirrors :func:`~repro.observations.
        epoch_integrity_error` wording via
        :meth:`~repro.blocks.EpochBlock.row_integrity_error` so the
        columnar path reports screened rows identically to the
        epoch-object path.
        """
        rows: Dict[int, Tuple] = {}
        for bucket in packed.buckets:
            for row, stream_index in enumerate(np.asarray(bucket.indices)):
                rows[int(stream_index)] = (bucket, row)

        def prns_for(index: int):
            bucket, row = rows[index]
            return tuple(int(p) for p in bucket.block.prns[row])

        def detail_for(index: int):
            entry = rows.get(index)
            if entry is None:  # unpackable row: never reached a block
                return None
            bucket, row = entry
            return bucket.block.row_integrity_error(row)

        return prns_for, detail_for

    def _packed_needs_admission(self, packed: PackedStream) -> bool:
        """Whether any row carries a currently-quarantined satellite."""
        banned = self._tracker.quarantined_prns()
        if not banned:
            return False
        banned_array = np.fromiter(banned, dtype=np.int64)
        for bucket in packed.buckets:
            if np.isin(bucket.block.prns, banned_array).any():
                return True
        return False

    @staticmethod
    def materialize(
        packed: PackedStream,
    ) -> List[Optional[ObservationEpoch]]:
        """Epoch objects for every packable row, in stream order.

        The inverse boundary crossing, used only off the hot path
        (degradation rungs, admission trims).  Structurally invalid
        rows (the validating constructors reject them) and unpackable
        rows come back ``None``.
        """
        epochs: List[Optional[ObservationEpoch]] = [None] * len(packed)
        for bucket in packed.buckets:
            block = bucket.block
            has_truth = block.has_truth()
            for row, stream_index in enumerate(np.asarray(bucket.indices)):
                try:
                    observations = tuple(
                        SatelliteObservation(
                            prn=int(block.prns[row, j]),
                            position=block.positions[row, j].copy(),
                            pseudorange=float(block.pseudoranges[row, j]),
                            system=system_code(int(block.systems[row, j])),
                        )
                        for j in range(block.satellite_count)
                    )
                    truth = None
                    if has_truth[row]:
                        truth = EpochTruth(
                            receiver_position=block.truth_positions[row].copy(),
                            clock_bias_meters=float(block.truth_biases[row]),
                        )
                    epochs[int(stream_index)] = ObservationEpoch(
                        time=block.time(row),
                        observations=observations,
                        truth=truth,
                    )
                except ReproError:
                    epochs[int(stream_index)] = None
        return epochs

    def solve_scalar(
        self,
        epoch: ObservationEpoch,
        bias_override: Optional[float] = None,
    ) -> Outcome:
        """Degradation rungs for one epoch: scalar primary, then NR."""
        detail = epoch_integrity_error(epoch)
        if detail is not None:
            return ("invalid", None, None, None, detail, None, None)
        algorithm = self._config.solver.algorithm
        solver = self._scalar
        if bias_override is not None:
            solver = replace(
                self._config.solver,
                clock_bias_meters=bias_override,
                clock_predictor=None,
            ).build_solver()
        try:
            fix = solver.solve(epoch)
            return (
                "ok",
                fix.position,
                fix.clock_bias_meters,
                f"{algorithm}/scalar",
                None,
                None,
                None,
            )
        except ReproError as primary_error:
            if self._nr_scalar is None:
                return ("failed", None, None, None, str(primary_error), None, None)
            try:
                fix = self._nr_scalar.solve(epoch)
            except ReproError as fallback_error:
                return (
                    "failed",
                    None,
                    None,
                    None,
                    f"{algorithm}: {primary_error}; nr fallback: {fallback_error}",
                    None,
                    None,
                )
            return (
                "ok",
                fix.position,
                fix.clock_bias_meters,
                f"{algorithm}/nr-fallback",
                None,
                None,
                None,
            )
