"""The sharded multi-process serving tier.

:class:`ShardedPositioningService` is a front end over N worker
processes, each running the same
:class:`~repro.service.executor.BatchExecutor` the in-process
:class:`~repro.service.service.PositioningService` dispatches to.  The
router cuts an epoch stream into fixed-size batches, routes each batch
to a worker (**hash-by-client** or **least-loaded**), and moves the
bulk arrays through a shared-memory slab
(:mod:`repro.service.shm`) — epoch payloads are **never pickled** on
the hot path; only slot/sequence control messages and row-error
strings ride the per-worker pipe.

Determinism is a design contract, not an accident: batch boundaries
are fixed by ``batch_size`` (independent of worker count), each batch
executes whole on exactly one worker, and the worker rebuilds the same
count-bucketed :class:`~repro.blocks.PackedStream` the in-process
service builds — so the solver math sees identical arrays and the
fixes are **bitwise identical** across 1 worker, N workers, and the
in-process service (the cross-process determinism suite pins this).

Supervision: every worker heartbeats into its slab and is watched by
the router during dispatch.  A worker that dies mid-batch never hangs
or drops its requests — the seqlock on the response lane proves the
batch incomplete and every in-flight request resurfaces as
``status="retryable"``.  Crashed workers restart against the same slab
within a bounded budget (``max_restarts``); past it the shard degrades
to the remaining workers.  :meth:`ShardedPositioningService.stop`
drains queued work before shutdown, and slabs are always unlinked —
restart and shutdown leak nothing into ``/dev/shm`` (the lifecycle
tests enumerate it).

Telemetry: each worker owns a private
:class:`~repro.telemetry.MetricsRegistry` (no cross-process locks) and
ships snapshots over the pipe on demand; :meth:`ShardedPositioningService.
scrape` restores them (:func:`~repro.telemetry.registry_from_snapshot`)
and merges router + workers through
:func:`~repro.telemetry.aggregate_registries` /
:func:`~repro.telemetry.exporters.to_prometheus_fleet_text` into one
fleet scrape.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks import EpochBlock, PackedBucket, PackedStream
from repro.errors import ConfigurationError, ServiceError
from repro.observations import ObservationEpoch
from repro.service.executor import BatchExecutor
from repro.service.types import ServiceConfig, ServiceResult
from repro.service.shm import (
    SharedSlab,
    SlabLayout,
    TornBatchError,
    check_sealed,
    stamp_begin,
    stamp_end,
)
from repro.telemetry import get_registry

#: Routing policies.
POLICIES: Tuple[str, ...] = ("hash", "least_loaded")

#: ``resp_solver`` codes → solver-name suffix (index = code).  The
#: algorithm name itself stays router-side config; shipping a code
#: keeps the response lane fixed-width.
_SOLVER_CODES: Tuple[str, ...] = ("", "/scalar", "/nr-fallback")

#: ``resp_verdict_status`` codes (−1 = no verdict attached).
_VERDICT_CODES: Tuple[str, ...] = ("passed", "repaired", "unusable", "unchecked")

#: ``resp_status`` codes (index into this tuple; matches the executor's
#: possible per-row outcomes — routing statuses never cross the slab).
_STATUS_CODES: Tuple[str, ...] = ("ok", "invalid", "failed")


@dataclass(frozen=True)
class ShardConfig:
    """Frozen tuning for the sharded tier.

    Attributes
    ----------
    service:
        The per-worker :class:`~repro.service.types.ServiceConfig`
        (solver, integrity, batching bounds).  Workers build their
        :class:`~repro.service.executor.BatchExecutor` from it.
    workers:
        Worker process count.  ``0`` runs the executor **inline** in
        the router process — same batching, same results, no IPC — the
        parity baseline the tests compare against.
    policy:
        ``"hash"`` pins a client id to a worker (cache/affinity
        friendly); ``"least_loaded"`` picks the worker with the fewest
        in-flight slots (ties to the lowest id, deterministically).
    batch_size:
        Fixed batch cut applied to the input stream *before* routing.
        Determinism across worker counts holds because this, not the
        worker count, decides batch composition.
    slots_per_worker:
        In-flight batches a single worker can hold (slab slots).
    slot_epochs / slot_satellites:
        Per-slot capacity: max epochs per batch slot and max satellites
        per epoch the slab can carry.  ``batch_size`` must fit
        ``slot_epochs``.
    heartbeat_interval_seconds / heartbeat_timeout_seconds:
        Worker liveness: how often an idle worker stamps its heartbeat,
        and how stale the stamp may grow before the supervisor declares
        the worker dead even without a pipe EOF.
    max_restarts:
        Per-worker crash-restart budget; exhausted → the worker slot is
        abandoned and the shard degrades to the remaining workers.
    drain_timeout_seconds:
        How long :meth:`ShardedPositioningService.stop` waits for
        in-flight batches before giving up on a worker.
    start_method:
        ``multiprocessing`` start method.  ``"fork"`` (default) is
        fast and inherits warm imports; ``"spawn"`` works because the
        worker entry point is a module-level function fed only
        picklable config.
    """

    service: ServiceConfig = field(default_factory=ServiceConfig)
    workers: int = 2
    policy: str = "hash"
    batch_size: int = 64
    slots_per_worker: int = 4
    slot_epochs: int = 256
    slot_satellites: int = 16
    heartbeat_interval_seconds: float = 0.05
    heartbeat_timeout_seconds: float = 5.0
    max_restarts: int = 2
    drain_timeout_seconds: float = 10.0
    start_method: str = "fork"

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"policy must be one of {'/'.join(POLICIES)}, got {self.policy!r}"
            )
        if self.batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        if self.slots_per_worker <= 0:
            raise ConfigurationError("slots_per_worker must be positive")
        if self.batch_size > self.slot_epochs:
            raise ConfigurationError(
                f"batch_size {self.batch_size} exceeds slot_epochs "
                f"{self.slot_epochs}"
            )
        if self.slot_satellites < 4:
            raise ConfigurationError("slot_satellites must be >= 4")
        if self.heartbeat_interval_seconds <= 0:
            raise ConfigurationError("heartbeat_interval_seconds must be positive")
        if self.heartbeat_timeout_seconds <= self.heartbeat_interval_seconds:
            raise ConfigurationError(
                "heartbeat_timeout_seconds must exceed the interval"
            )
        if self.max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0")
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ConfigurationError(
                f"unknown start_method {self.start_method!r}"
            )


def slab_layout(config: ShardConfig) -> SlabLayout:
    """The per-worker slab layout both sides compute identically.

    Request lane (router writes, worker reads) and response lane
    (worker writes, router reads), each seqlock-bracketed per slot.
    Arrays are fixed-capacity and NaN/zero-padded: per-row satellite
    counts live in ``req_sats`` so the worker can rebuild exact-width
    blocks without shipping shapes.
    """
    slots = config.slots_per_worker
    n = config.slot_epochs
    m = config.slot_satellites
    return (
        SlabLayout()
        # liveness: monotonic counter + wall stamp, worker-written
        .add("heartbeat", (2,), "<i8")
        # request lane
        .add("req_begin", (slots,), "<i8")
        .add("req_end", (slots,), "<i8")
        .add("req_count", (slots,), "<i8")
        .add("req_sats", (slots, n), "<i8")
        .add("req_positions", (slots, n, m, 3), "<f8")
        .add("req_pseudoranges", (slots, n, m), "<f8")
        .add("req_cn0", (slots, n, m), "<f8")
        .add("req_prns", (slots, n, m), "<i8")
        .add("req_systems", (slots, n, m), "<i1")
        .add("req_weeks", (slots, n), "<i8")
        .add("req_sow", (slots, n), "<f8")
        .add("req_biases", (slots, n), "<f8")
        # response lane
        .add("resp_begin", (slots,), "<i8")
        .add("resp_end", (slots,), "<i8")
        .add("resp_status", (slots, n), "<i1")
        .add("resp_positions", (slots, n, 3), "<f8")
        .add("resp_biases", (slots, n), "<f8")
        .add("resp_solver", (slots, n), "<i1")
        .add("resp_verdict_status", (slots, n), "<i1")
        .add("resp_verdict_prn", (slots, n), "<i8")
        .add("resp_verdict_stat", (slots, n), "<f8")
        .add("resp_verdict_threshold", (slots, n), "<f8")
    )


def write_request(
    arrays: Dict[str, np.ndarray],
    slot: int,
    sequence: int,
    packed: PackedStream,
    biases: Optional[np.ndarray],
) -> None:
    """Fill one request slot from a packed batch (router side).

    Writes are per-*bucket* contiguous fancy-indexed copies — a few
    large array stores per batch, never a per-row Python loop over
    epochs.  Unpackable rows get ``req_sats = 0`` (the worker reports
    them invalid without touching their payload lanes).
    """
    n = int(len(packed))
    stamp_begin(arrays["req_begin"], slot, sequence)
    arrays["req_count"][slot] = n
    sats = arrays["req_sats"][slot]
    sats[:n] = 0
    # Slots are reused: the C/N0 lane must be NaN-filled (not left
    # over from the previous occupant) because "all-NaN" is how a
    # bucket with no signal features reads back as a None lane.
    arrays["req_cn0"][slot, :n] = np.nan
    if biases is None:
        arrays["req_biases"][slot, :n] = np.nan
    else:
        arrays["req_biases"][slot, :n] = biases
    for bucket in packed.buckets:
        block = bucket.block
        m = block.satellite_count
        rows = np.asarray(bucket.indices)
        sats[rows] = m
        arrays["req_positions"][slot, rows, :m] = block.positions
        arrays["req_pseudoranges"][slot, rows, :m] = block.pseudoranges
        if block.cn0 is not None:
            arrays["req_cn0"][slot, rows, :m] = block.cn0
        arrays["req_prns"][slot, rows, :m] = block.prns
        arrays["req_systems"][slot, rows, :m] = block.systems
        arrays["req_weeks"][slot, rows] = block.weeks
        arrays["req_sow"][slot, rows] = block.seconds_of_week
    stamp_end(arrays["req_end"], slot, sequence)


def read_request(
    arrays: Dict[str, np.ndarray], slot: int, sequence: int
) -> Tuple[PackedStream, Optional[np.ndarray]]:
    """Rebuild the packed batch from one request slot (worker side).

    Groups rows by satellite count *and* per-slot system pattern
    exactly like :func:`~repro.blocks.pack_stream` (buckets sorted by
    count, patterns in first-appearance order within a count, stream
    order within a bucket), so the solver math downstream is identical
    to the in-process path — including the uniform-pattern guarantee
    the multi-constellation kernels rely on.  Raises
    :class:`~repro.service.shm.TornBatchError` if the slot's seqlock
    does not seal ``sequence``.
    """
    check_sealed(arrays["req_begin"], arrays["req_end"], slot, sequence)
    n = int(arrays["req_count"][slot])
    sats = arrays["req_sats"][slot, :n]
    buckets: List[PackedBucket] = []
    unpackable: List[int] = []
    zero_rows = np.flatnonzero(sats == 0)
    if zero_rows.size:
        unpackable = [int(row) for row in zero_rows]
    for m in np.unique(sats):
        m = int(m)
        if m == 0:
            continue
        count_rows = np.flatnonzero(sats == m)
        pattern_rows: Dict[bytes, List[int]] = {}
        for row in count_rows:
            pattern = arrays["req_systems"][slot, row, :m].tobytes()
            pattern_rows.setdefault(pattern, []).append(int(row))
        for grouped in pattern_rows.values():  # insertion == stream order
            rows = np.asarray(grouped, dtype=np.intp)
            count = rows.size
            cn0 = arrays["req_cn0"][slot, rows, :m].copy()
            block = EpochBlock(
                positions=arrays["req_positions"][slot, rows, :m].copy(),
                pseudoranges=arrays["req_pseudoranges"][slot, rows, :m].copy(),
                # First-row probe, exactly like EpochBlock.from_epochs:
                # an all-NaN first row decodes as "no signal features"
                # (the producers fill all epochs or none), so the lane
                # is None precisely when the in-process pack's would be.
                cn0=cn0 if np.isfinite(cn0[0]).any() else None,
                prns=arrays["req_prns"][slot, rows, :m].copy(),
                systems=arrays["req_systems"][slot, rows, :m].copy(),
                weeks=arrays["req_weeks"][slot, rows].copy(),
                seconds_of_week=arrays["req_sow"][slot, rows].copy(),
                truth_positions=np.full((count, 3), np.nan),
                truth_biases=np.full(count, np.nan),
            )
            buckets.append(
                PackedBucket(
                    satellite_count=m,
                    indices=rows,
                    block=block,
                )
            )
    overrides = arrays["req_biases"][slot, :n].copy()
    biases = overrides if np.isfinite(overrides).any() else None
    return (
        PackedStream(
            length=n, buckets=tuple(buckets), unpackable=tuple(unpackable)
        ),
        biases,
    )


def write_response(
    arrays: Dict[str, np.ndarray],
    slot: int,
    sequence: int,
    outcomes: Sequence,
) -> Tuple[Dict[int, str], Dict[int, Dict]]:
    """Encode executor outcomes into one response slot (worker side).

    Returns ``(errors, monitors)`` for the control pipe: the row →
    error-string map and the row → monitor-verdict-dict map (the two
    outcome fields that do not fit a fixed-width lane; both are rare —
    only failed/invalid rows carry an error, only non-nominal epochs a
    monitor verdict).
    """
    n = len(outcomes)
    stamp_begin(arrays["resp_begin"], slot, sequence)
    status = arrays["resp_status"][slot]
    solver_codes = arrays["resp_solver"][slot]
    verdict_status = arrays["resp_verdict_status"][slot]
    positions = arrays["resp_positions"][slot]
    biases = arrays["resp_biases"][slot]
    errors: Dict[int, str] = {}
    monitors: Dict[int, Dict] = {}
    for row, outcome in enumerate(outcomes):
        row_status, position, bias, solver, error, verdict, monitor = outcome
        if monitor is not None:
            monitors[row] = monitor.to_dict()
        status[row] = _STATUS_CODES.index(row_status)
        if position is not None:
            positions[row] = position
        else:
            positions[row] = np.nan
        biases[row] = bias if bias is not None else np.nan
        if solver is None:
            solver_codes[row] = -1
        elif solver.endswith("/nr-fallback"):
            solver_codes[row] = 2
        elif solver.endswith("/scalar"):
            solver_codes[row] = 1
        else:
            solver_codes[row] = 0
        if verdict is not None:
            verdict_status[row] = _VERDICT_CODES.index(verdict.status)
            arrays["resp_verdict_prn"][slot, row] = (
                verdict.excluded_prn if verdict.excluded_prn is not None else -1
            )
            # Floats pass through verbatim (NaN marks unchecked).
            arrays["resp_verdict_stat"][slot, row] = verdict.test_statistic
            arrays["resp_verdict_threshold"][slot, row] = verdict.threshold
        else:
            verdict_status[row] = -1
        if error is not None:
            errors[row] = error
    stamp_end(arrays["resp_end"], slot, sequence)
    return errors, monitors


def read_response(
    arrays: Dict[str, np.ndarray],
    slot: int,
    sequence: int,
    count: int,
    errors: Dict[int, str],
    algorithm: str,
    batch_size: int,
    monitors: Optional[Dict[int, Dict]] = None,
) -> List[ServiceResult]:
    """Decode one sealed response slot into results (router side).

    ``monitors`` is the row → monitor-verdict-dict map shipped in the
    worker's ``done`` message; a crash-recovered sealed slot decodes
    without one (the verdicts died with the worker's pipe).
    """
    from repro.integrity.fde import EpochVerdict
    from repro.integrity.monitors import EpochMonitorVerdict

    check_sealed(arrays["resp_begin"], arrays["resp_end"], slot, sequence)
    status = arrays["resp_status"][slot]
    solver_codes = arrays["resp_solver"][slot]
    verdict_status = arrays["resp_verdict_status"][slot]
    results: List[ServiceResult] = []
    for row in range(count):
        row_status = _STATUS_CODES[status[row]]
        verdict = None
        code = int(verdict_status[row])
        if code >= 0:
            prn = int(arrays["resp_verdict_prn"][slot, row])
            verdict = EpochVerdict(
                status=_VERDICT_CODES[code],
                test_statistic=float(arrays["resp_verdict_stat"][slot, row]),
                threshold=float(arrays["resp_verdict_threshold"][slot, row]),
                excluded_prn=prn if prn >= 0 else None,
            )
        solver = None
        code = int(solver_codes[row])
        if code >= 0:
            solver = algorithm + _SOLVER_CODES[code]
        bias = float(arrays["resp_biases"][slot, row])
        monitor = None
        if monitors is not None:
            payload = monitors.get(row)
            if payload is not None:
                monitor = EpochMonitorVerdict.from_dict(payload)
        results.append(
            ServiceResult(
                status=row_status,
                position=(
                    arrays["resp_positions"][slot, row].copy()
                    if row_status == "ok"
                    else None
                ),
                clock_bias_meters=bias if np.isfinite(bias) else None,
                solver=solver if row_status == "ok" else None,
                error=errors.get(row),
                batch_size=batch_size,
                integrity=verdict,
                monitor=monitor,
            )
        )
    return results


# -- the worker process ------------------------------------------------


def worker_main(
    worker_id: int,
    slab_path: str,
    layout_spec: list,
    slab_size: int,
    service_config: ServiceConfig,
    conn,
    heartbeat_interval: float,
) -> None:
    """One shard worker: attach the slab, answer batches until told to stop.

    Module-level on purpose — picklable by reference, so the same entry
    point works under fork and spawn.  The worker installs a **fresh**
    private registry (the fork hook in :mod:`repro.telemetry` already
    cleared any inherited one) and ships snapshots on ``scrape``.
    """
    from repro import telemetry

    registry, _tracer = telemetry.install()
    layout = SlabLayout.from_spec(layout_spec)
    slab = SharedSlab.attach(slab_path, slab_size)
    arrays = layout.arrays(slab.buffer)
    executor = BatchExecutor(service_config)
    heartbeat = arrays["heartbeat"]
    batches = registry.counter(
        "repro_shard_worker_batches_total",
        "Batches answered by this worker.",
    ).labels()
    crash_after: Optional[int] = None
    stall = False
    try:
        while True:
            heartbeat[0] += 1
            heartbeat[1] = time.monotonic_ns()
            if not conn.poll(heartbeat_interval):
                continue
            try:
                message = conn.recv()
            except EOFError:  # router died; nothing left to serve
                return
            kind = message[0]
            if kind == "stop":
                return
            if kind == "scrape":
                conn.send(("metrics", registry.snapshot()))
                continue
            if kind == "chaos":
                # Fault-injection hook for the supervisor tests: die
                # after N row-fills of the next batch (torn response),
                # or stall (heartbeat-timeout path).  Never reachable
                # in production — the router only sends it from tests.
                crash_after = message[1]
                stall = bool(message[2]) if len(message) > 2 else False
                continue
            _kind, slot, sequence = message
            if stall:
                while True:  # simulate a wedged worker (no heartbeats)
                    time.sleep(3600)
            packed, biases = read_request(arrays, slot, sequence)
            outcomes, _meta = executor.execute_packed(packed, biases)
            if crash_after is not None:
                # Torn-write chaos: open the response window, fill only
                # a prefix, then die without sealing.
                stamp_begin(arrays["resp_begin"], slot, sequence)
                for row in range(min(crash_after, len(outcomes))):
                    arrays["resp_positions"][slot, row] = 1.0
                os._exit(17)
            errors, monitors = write_response(arrays, slot, sequence, outcomes)
            batches.inc()
            heartbeat[0] += 1
            heartbeat[1] = time.monotonic_ns()
            conn.send(("done", slot, sequence, len(outcomes), errors, monitors))
    finally:
        del arrays, heartbeat
        slab.close()


# -- the router --------------------------------------------------------


@dataclass
class _Worker:
    """Router-side bookkeeping for one worker process."""

    index: int
    slab: SharedSlab
    arrays: Dict[str, np.ndarray]
    process: Optional[multiprocessing.process.BaseProcess] = None
    conn: object = None
    restarts: int = 0
    alive: bool = False
    sequence: int = 0
    # slot -> (sequence, batch row count, stream offset) while in flight
    inflight: Dict[int, Tuple[int, int, int]] = field(default_factory=dict)
    free_slots: List[int] = field(default_factory=list)

    @property
    def load(self) -> int:
        return len(self.inflight)


class _RouterMetrics:
    """Pre-resolved router-side telemetry children."""

    __slots__ = ("registry", "requests", "batches", "retryable", "restarts", "workers_up")

    def __init__(self, registry) -> None:
        self.registry = registry
        self.requests = registry.counter(
            "repro_shard_requests_total", "Requests routed through the shard."
        ).labels()
        self.batches = registry.counter(
            "repro_shard_batches_total", "Batches dispatched to workers."
        ).labels()
        self.retryable = registry.counter(
            "repro_shard_retryable_total",
            "Requests resurfaced as retryable after a worker death.",
        ).labels()
        self.restarts = registry.counter(
            "repro_shard_worker_restarts_total", "Worker crash-restarts."
        ).labels()
        self.workers_up = registry.gauge(
            "repro_shard_workers_up", "Live worker processes."
        ).labels()


class ShardedPositioningService:
    """Multi-process sharded front end over the batch-execution core.

    Usage::

        config = ShardConfig(service=ServiceConfig(...), workers=4)
        with ShardedPositioningService(config) as shard:
            results = shard.solve_many(epochs)

    The router is synchronous: callers hand it an epoch stream (or use
    the CLI's ``serve --workers N`` front end) and get stream-ordered
    results.  All IPC, supervision, and retry surfacing happens inside
    :meth:`solve_many`.
    """

    def __init__(self, config: Optional[ShardConfig] = None) -> None:
        self._config = config if config is not None else ShardConfig()
        self._layout = slab_layout(self._config)
        self._workers: List[_Worker] = []
        self._inline: Optional[BatchExecutor] = None
        self._context = multiprocessing.get_context(self._config.start_method)
        self._running = False
        self._metrics: Optional[_RouterMetrics] = None
        self._algorithm = self._config.service.solver.algorithm

    # -- lifecycle -----------------------------------------------------

    @property
    def config(self) -> ShardConfig:
        return self._config

    @property
    def running(self) -> bool:
        return self._running

    @property
    def live_workers(self) -> int:
        """Currently-live worker processes (0 in inline mode)."""
        return sum(1 for worker in self._workers if worker.alive)

    def start(self) -> None:
        """Create slabs and spawn every worker."""
        if self._running:
            raise ServiceError("shard is already running")
        if self._config.workers == 0:
            self._inline = BatchExecutor(self._config.service)
            self._running = True
            return
        try:
            for index in range(self._config.workers):
                slab = SharedSlab.create(self._layout.nbytes)
                worker = _Worker(
                    index=index,
                    slab=slab,
                    arrays=self._layout.arrays(slab.buffer),
                    free_slots=list(range(self._config.slots_per_worker)),
                )
                self._workers.append(worker)
                self._spawn(worker)
        except BaseException:
            self._teardown()
            raise
        self._running = True

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            name=f"repro-shard-worker-{worker.index}",
            args=(
                worker.index,
                worker.slab.path,
                self._layout.spec(),
                self._layout.nbytes,
                self._config.service,
                child_conn,
                self._config.heartbeat_interval_seconds,
            ),
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn
        worker.alive = True
        metrics = self._telemetry()
        if metrics is not None:
            metrics.workers_up.set(self.live_workers)

    def stop(self, drain: bool = True) -> None:
        """Drain in-flight work (optionally), stop workers, free slabs."""
        if not self._running:
            return
        if drain and self._workers:
            deadline = time.monotonic() + self._config.drain_timeout_seconds
            for worker in self._workers:
                while worker.alive and worker.inflight:
                    if time.monotonic() >= deadline:
                        break
                    self._poll_worker(worker, timeout=0.05, collector=None)
        self._teardown()
        self._running = False

    def _teardown(self) -> None:
        for worker in self._workers:
            if worker.alive and worker.conn is not None:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            if worker.process is not None:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()
                    worker.process.join(timeout=2.0)
            if worker.conn is not None:
                worker.conn.close()
            worker.arrays = {}
            worker.slab.close()
            worker.slab.unlink()
        self._workers = []
        self._inline = None

    def __enter__(self) -> "ShardedPositioningService":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _telemetry(self) -> Optional[_RouterMetrics]:
        registry = get_registry()
        if not registry.enabled:
            return None
        metrics = self._metrics
        if metrics is None or metrics.registry is not registry:
            metrics = _RouterMetrics(registry)
            self._metrics = metrics
        return metrics

    # -- routing -------------------------------------------------------

    def _route(self, batch_index: int, client_id: Optional[str]) -> Optional[_Worker]:
        """Pick the live worker for one batch, or ``None`` if none live."""
        live = [worker for worker in self._workers if worker.alive]
        if not live:
            return None
        if self._config.policy == "hash":
            # Deterministic content hash (not Python's seeded hash()):
            # a client sticks to its worker across runs and processes.
            key = client_id if client_id is not None else str(batch_index)
            digest = 0
            for byte in key.encode():
                digest = (digest * 131 + byte) % 1000000007
            return live[digest % len(live)]
        return min(live, key=lambda worker: (worker.load, worker.index))

    # -- solving -------------------------------------------------------

    def solve_many(
        self,
        epochs: Sequence[ObservationEpoch],
        bias_meters: Optional[Sequence[Optional[float]]] = None,
        client_ids: Optional[Sequence[str]] = None,
    ) -> List[ServiceResult]:
        """Solve a stream through the shard; results in stream order.

        ``bias_meters`` optionally carries per-epoch clock-bias
        overrides; ``client_ids`` optionally names a routing client per
        epoch (hash policy routes each batch by its first client id).
        """
        if not self._running:
            raise ServiceError(
                "shard is not running; enter it with 'with' or start()"
            )
        epochs = list(epochs)
        metrics = self._telemetry()
        if metrics is not None:
            metrics.requests.inc(len(epochs))
        size = self._config.batch_size
        batches: List[Tuple[int, int]] = [  # (offset, count)
            (start, min(size, len(epochs) - start))
            for start in range(0, len(epochs), size)
        ]
        results: List[Optional[ServiceResult]] = [None] * len(epochs)

        if self._inline is not None:
            for offset, count in batches:
                chunk = epochs[offset : offset + count]
                overrides = (
                    list(bias_meters[offset : offset + count])
                    if bias_meters is not None
                    else None
                )
                outcomes, _meta = self._inline.execute(chunk, overrides)
                for row, outcome in enumerate(outcomes):
                    status, position, bias, solver, error, verdict, monitor = (
                        outcome
                    )
                    results[offset + row] = ServiceResult(
                        status=status,
                        position=position,
                        clock_bias_meters=bias,
                        solver=solver,
                        error=error,
                        batch_size=count,
                        integrity=verdict,
                        monitor=monitor,
                    )
                if metrics is not None:
                    metrics.batches.inc()
            return [result for result in results if result is not None]

        from repro.blocks import pack_stream

        pending = list(enumerate(batches))
        pending.reverse()  # pop() takes them in stream order
        while pending or any(worker.inflight for worker in self._workers):
            self._reap_dead(results, epochs)
            dispatched = False
            while pending:
                batch_index, (offset, count) = pending[-1]
                client_id = (
                    client_ids[offset]
                    if client_ids is not None and offset < len(client_ids)
                    else None
                )
                worker = self._route(batch_index, client_id)
                if worker is None:
                    # Every worker is gone: resurface everything left.
                    pending.pop()
                    self._fail_batch(
                        results,
                        offset,
                        count,
                        "no live workers remain (restart budget exhausted)",
                    )
                    continue
                if not worker.free_slots:
                    if self._config.policy == "least_loaded":
                        candidates = [
                            w
                            for w in self._workers
                            if w.alive and w.free_slots
                        ]
                        if candidates:
                            worker = min(
                                candidates,
                                key=lambda w: (w.load, w.index),
                            )
                        else:
                            break  # all slots busy; go collect
                    else:
                        break  # hash affinity: wait for this worker
                pending.pop()
                self._dispatch(
                    worker,
                    offset,
                    count,
                    epochs,
                    bias_meters,
                    pack_stream,
                )
                if metrics is not None:
                    metrics.batches.inc()
                dispatched = True
            progressed = self._collect(results, epochs, timeout=0.05)
            if not progressed and not dispatched:
                # Nothing landed this round: liveness is re-checked at
                # the top of the loop (pipe EOF, heartbeat staleness).
                continue
        return [
            result
            if result is not None
            else ServiceResult(status="retryable", error="lost in dispatch")
            for result in results
        ]

    def _dispatch(
        self,
        worker: _Worker,
        offset: int,
        count: int,
        epochs: List[ObservationEpoch],
        bias_meters,
        pack_stream,
    ) -> None:
        chunk = epochs[offset : offset + count]
        packed = pack_stream(chunk)
        biases = None
        if bias_meters is not None:
            biases = np.array(
                [
                    float(value) if value is not None else np.nan
                    for value in bias_meters[offset : offset + count]
                ]
            )
        slot = worker.free_slots.pop()
        worker.sequence += 1
        sequence = worker.sequence * self._config.slots_per_worker + slot
        write_request(worker.arrays, slot, sequence, packed, biases)
        worker.inflight[slot] = (sequence, count, offset)
        try:
            worker.conn.send(("batch", slot, sequence))
        except (BrokenPipeError, OSError):
            pass  # death is observed (and the batch resurfaced) in _reap_dead

    def _poll_worker(self, worker: _Worker, timeout: float, collector) -> bool:
        """Drain one worker's pipe; returns whether anything landed."""
        landed = False
        try:
            while worker.conn.poll(timeout if not landed else 0):
                message = worker.conn.recv()
                if message[0] != "done":
                    continue  # stray scrape replies handled elsewhere
                _kind, slot, sequence, count, errors, monitors = message
                entry = worker.inflight.get(slot)
                if entry is None or entry[0] != sequence:
                    continue  # stale slot from before a restart
                _sequence, batch_count, offset = entry
                rows = read_response(
                    worker.arrays,
                    slot,
                    sequence,
                    count,
                    errors,
                    self._algorithm,
                    batch_count,
                    monitors,
                )
                del worker.inflight[slot]
                worker.free_slots.append(slot)
                if collector is not None:
                    collector(offset, rows)
                landed = True
        except (EOFError, OSError):
            worker.alive = False
        return landed

    def _collect(self, results, epochs, timeout: float) -> bool:
        def place(offset: int, rows: List[ServiceResult]) -> None:
            for row, result in enumerate(rows):
                results[offset + row] = result

        landed = False
        for worker in self._workers:
            if worker.alive and worker.inflight:
                landed |= self._poll_worker(worker, timeout, place)
            elif worker.alive:
                self._poll_worker(worker, 0, place)
        return landed

    def _reap_dead(self, results, epochs) -> None:
        """Detect dead/wedged workers; resurface their in-flight work."""
        now = time.monotonic_ns()
        timeout_ns = int(self._config.heartbeat_timeout_seconds * 1e9)
        for worker in self._workers:
            if not worker.alive and not worker.inflight:
                continue
            # A worker is dead if its pipe EOF'd (alive already cleared
            # with work still in flight), its process exited, or its
            # heartbeat went stale while holding a batch.
            dead = not worker.alive or (
                worker.process is not None and not worker.process.is_alive()
            )
            if not dead and worker.inflight:
                stamp = int(worker.arrays["heartbeat"][1])
                if stamp and now - stamp > timeout_ns:
                    dead = True
            if not dead:
                continue
            if worker.process is not None and worker.process.is_alive():
                # Wedged (stale heartbeat) or half-dead (EOF): kill so
                # restart or degradation proceeds deterministically.
                worker.process.kill()
                worker.process.join(timeout=2.0)
            metrics = self._telemetry()
            for slot, (sequence, count, offset) in sorted(
                worker.inflight.items()
            ):
                # The seqlock decides: a sealed response is usable even
                # though the worker died after writing it; an unsealed
                # one resurfaces as retryable.
                try:
                    check_sealed(
                        worker.arrays["resp_begin"],
                        worker.arrays["resp_end"],
                        slot,
                        sequence,
                    )
                except TornBatchError:
                    self._fail_batch(
                        results,
                        offset,
                        count,
                        f"worker {worker.index} died mid-batch",
                    )
                    if metrics is not None:
                        metrics.retryable.inc(count)
                else:
                    rows = read_response(
                        worker.arrays,
                        slot,
                        sequence,
                        count,
                        {},
                        self._algorithm,
                        count,
                    )
                    for row, result in enumerate(rows):
                        results[offset + row] = result
            worker.inflight = {}
            worker.free_slots = list(range(self._config.slots_per_worker))
            worker.alive = False
            if worker.conn is not None:
                worker.conn.close()
                worker.conn = None
            if worker.process is not None:
                worker.process.join(timeout=2.0)
            if worker.restarts < self._config.max_restarts:
                worker.restarts += 1
                if metrics is not None:
                    metrics.restarts.inc()
                self._spawn(worker)
            elif metrics is not None:
                metrics.workers_up.set(self.live_workers)

    def _fail_batch(
        self, results, offset: int, count: int, reason: str
    ) -> None:
        for row in range(count):
            if results[offset + row] is None:
                results[offset + row] = ServiceResult(
                    status="retryable",
                    error=f"{reason}; resubmit the request",
                    retry_after_seconds=self._config.service.retry_after_seconds,
                    batch_size=count,
                )

    # -- chaos hooks (tests only) --------------------------------------

    def inject_crash(self, worker_index: int, after_rows: int = 0) -> None:
        """Tell one worker to die mid-fill on its next batch (tests)."""
        self._workers[worker_index].conn.send(("chaos", after_rows))

    def inject_stall(self, worker_index: int) -> None:
        """Tell one worker to wedge (stop heartbeating) on its next batch."""
        self._workers[worker_index].conn.send(("chaos", 0, True))

    # -- fleet telemetry -----------------------------------------------

    def worker_registries(self, timeout: float = 5.0) -> List:
        """Live workers' registries, restored from pipe snapshots."""
        from repro.telemetry import registry_from_snapshot

        registries = []
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("scrape",))
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    if not worker.conn.poll(deadline - time.monotonic()):
                        break
                    message = worker.conn.recv()
                    if message[0] == "metrics":
                        registries.append(registry_from_snapshot(message[1]))
                        break
            except (BrokenPipeError, EOFError, OSError):
                worker.alive = False
        return registries

    def scrape(self) -> str:
        """One Prometheus fleet scrape: router + every live worker."""
        from repro.telemetry import get_registry as _get_registry
        from repro.telemetry.exporters import to_prometheus_fleet_text

        registries = list(self.worker_registries())
        local = _get_registry()
        if local.enabled:
            registries.insert(0, local)
        return to_prometheus_fleet_text(registries)
