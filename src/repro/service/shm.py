"""Shared-memory struct-of-arrays transport for the shard tier.

The sharded service (:mod:`repro.service.shard`) moves batches between
the router process and its workers.  Pickling epoch payloads across a
pipe would reintroduce exactly the object/array boundary cost the
columnar store (:mod:`repro.blocks`) was built to eliminate, so the
bulk arrays travel through a **slab**: one flat shared-memory mapping
whose layout both sides compute identically from the same
:class:`SlabLayout` spec.  Only tiny control messages (slot number,
sequence number, row-error strings) ride the pipe.

Three pieces:

* :class:`SlabLayout` — named, 64-byte-aligned array fields over a flat
  buffer; JSON-able spec so a spawned worker can rebuild the exact
  layout without pickling numpy metadata.
* :class:`SharedSlab` — the mapping itself.  A plain file in
  ``/dev/shm`` (tmpfs) + ``mmap``, **not**
  :mod:`multiprocessing.shared_memory`: the stdlib resource tracker
  unlinks attached segments when any attaching process exits (see
  cpython bpo-38119), which is exactly wrong for a supervisor that
  restarts crashed workers against a live slab.  Ownership is explicit:
  the creator unlinks, attachers only close.
* The **seqlock** protocol — per-slot ``begin``/``end`` sequence
  stamps bracketing every payload fill.  A reader that was notified of
  sequence ``s`` accepts the payload only if ``end[slot] == s`` (and
  the writer stamps ``end`` strictly after the payload), so a writer
  crash mid-fill can never yield a partially-read batch: the stale
  ``end`` stamp fails the check and the read raises
  :class:`TornBatchError` instead.

CPython-level stores to an ``mmap``-backed numpy array are plain
stores; on the architectures this repo targets store order is
preserved and each stamp is a single aligned int64 write, which is all
the one-writer-one-reader-per-slot discipline here needs.
"""

from __future__ import annotations

import mmap
import os
import secrets
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ServiceError

#: Field offsets are rounded up to this many bytes so every array is
#: cache-line aligned (and safely aligned for any dtype).
_ALIGNMENT = 64

#: Slab file name prefix — the lifecycle tests enumerate ``shm_dir()``
#: for leaks by this prefix, so keep it stable.
SLAB_PREFIX = "repro-shard-"


class TornBatchError(ServiceError):
    """A seqlock-guarded payload failed its completion check.

    The writer died (or is still writing) between the ``begin`` and
    ``end`` stamps; the payload must be treated as absent, never
    partially read.
    """


def shm_dir() -> str:
    """The directory slabs live in: tmpfs when the OS offers it.

    ``/dev/shm`` is memory-backed on Linux; elsewhere (or in mount
    namespaces without it) a regular temp file still works — ``mmap``
    sharing is what matters, the backing store is an optimization.
    """
    if os.path.isdir("/dev/shm"):
        return "/dev/shm"
    return tempfile.gettempdir()


class SlabLayout:
    """Named, aligned array fields over one flat buffer.

    Build by repeated :meth:`add` (order is part of the layout), then
    map any writable buffer with :meth:`arrays`.  Both sides of the
    transport must construct the layout from the same spec —
    :meth:`spec`/:meth:`from_spec` round-trip it through plain JSON
    types for spawn-safe handoff.
    """

    def __init__(self) -> None:
        self._fields: List[Tuple[str, Tuple[int, ...], str, int]] = []
        self._names: set = set()
        self._size = 0

    def add(self, name: str, shape: Sequence[int], dtype: str) -> "SlabLayout":
        """Append one field; returns ``self`` for chaining."""
        if name in self._names:
            raise ConfigurationError(f"duplicate slab field {name!r}")
        shape = tuple(int(dim) for dim in shape)
        if any(dim < 0 for dim in shape):
            raise ConfigurationError(
                f"slab field {name!r} has negative dimensions {shape}"
            )
        offset = -(-self._size // _ALIGNMENT) * _ALIGNMENT
        nbytes = int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
        self._fields.append((name, shape, np.dtype(dtype).str, offset))
        self._names.add(name)
        self._size = offset + nbytes
        return self

    @property
    def nbytes(self) -> int:
        """Total slab size the layout needs (bytes)."""
        return self._size

    def spec(self) -> list:
        """A JSON-able description of the layout (order preserved)."""
        return [
            [name, list(shape), dtype]
            for name, shape, dtype, _offset in self._fields
        ]

    @classmethod
    def from_spec(cls, spec: Sequence) -> "SlabLayout":
        """Rebuild a layout from :meth:`spec` output."""
        layout = cls()
        for name, shape, dtype in spec:
            layout.add(name, shape, dtype)
        return layout

    def arrays(self, buffer) -> Dict[str, np.ndarray]:
        """Map every field as a numpy view over ``buffer``."""
        views: Dict[str, np.ndarray] = {}
        for name, shape, dtype, offset in self._fields:
            count = int(np.prod(shape, dtype=np.int64))
            views[name] = np.frombuffer(
                buffer, dtype=dtype, count=count, offset=offset
            ).reshape(shape)
        return views


class SharedSlab:
    """One shared mapping: a ``/dev/shm`` file the router owns.

    The creating process (:meth:`create`) is the owner and the only
    side that :meth:`unlink`\\ s; workers :meth:`attach` and only ever
    :meth:`close`.  Mapping length is fixed at creation.
    """

    def __init__(
        self, path: str, mapping: mmap.mmap, size: int, owner: bool
    ) -> None:
        self.path = path
        self.size = size
        self._mmap: Optional[mmap.mmap] = mapping
        self._owner = owner

    @classmethod
    def create(cls, size: int, directory: Optional[str] = None) -> "SharedSlab":
        """Allocate a fresh zero-filled slab of ``size`` bytes."""
        if size <= 0:
            raise ConfigurationError(f"slab size must be positive, got {size}")
        directory = directory if directory is not None else shm_dir()
        path = os.path.join(
            directory, f"{SLAB_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        )
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.ftruncate(fd, size)
            mapping = mmap.mmap(fd, size)
        except BaseException:
            os.close(fd)
            os.unlink(path)
            raise
        os.close(fd)
        return cls(path, mapping, size, owner=True)

    @classmethod
    def attach(cls, path: str, size: int) -> "SharedSlab":
        """Map an existing slab (worker side)."""
        fd = os.open(path, os.O_RDWR)
        try:
            mapping = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        return cls(path, mapping, size, owner=False)

    @property
    def buffer(self) -> mmap.mmap:
        """The live mapping (raises once closed)."""
        if self._mmap is None:
            raise ServiceError(f"slab {self.path} is closed")
        return self._mmap

    @property
    def closed(self) -> bool:
        return self._mmap is None

    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        Callers must drop their numpy views first — a view over a
        closed mmap is a crash, and ``mmap.close`` refuses while
        exported buffers exist.
        """
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None

    def unlink(self) -> None:
        """Remove the backing file (owner only, idempotent)."""
        if not self._owner:
            raise ServiceError(
                f"slab {self.path} is attached, not owned; only the creator unlinks"
            )
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass

    def __enter__(self) -> "SharedSlab":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
        if self._owner:
            self.unlink()


def list_slabs(directory: Optional[str] = None) -> List[str]:
    """Paths of every slab file currently present (for leak checks)."""
    directory = directory if directory is not None else shm_dir()
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        os.path.join(directory, name)
        for name in names
        if name.startswith(SLAB_PREFIX)
    )


# -- the seqlock protocol ----------------------------------------------
#
# One int64 pair per slot: ``begin[slot]`` stamps before the payload
# fill, ``end[slot]`` strictly after.  Sequence numbers increase
# monotonically per slot and never repeat, so a reader comparing
# ``end[slot]`` against the sequence it was *notified* of cannot be
# fooled by a stale complete fill either.


def stamp_begin(begin: np.ndarray, slot: int, sequence: int) -> None:
    """Writer: open the fill window for ``sequence``."""
    begin[slot] = sequence


def stamp_end(end: np.ndarray, slot: int, sequence: int) -> None:
    """Writer: commit the fill — call strictly after the payload."""
    end[slot] = sequence


def check_sealed(
    begin: np.ndarray, end: np.ndarray, slot: int, sequence: int
) -> None:
    """Reader: accept slot ``slot`` for ``sequence`` or raise.

    Raises :class:`TornBatchError` unless both stamps match the
    notified sequence — i.e. the writer opened *and* committed exactly
    this fill.
    """
    begin_seen = int(begin[slot])
    end_seen = int(end[slot])
    if begin_seen != sequence or end_seen != sequence:
        raise TornBatchError(
            f"slot {slot} torn for sequence {sequence}: "
            f"begin={begin_seen} end={end_seen} — writer died or is "
            "still writing; payload must not be used"
        )
