"""Value types for the async positioning service.

:class:`ServiceConfig` is the service's entire tuning surface — the
solver it serves (as a :class:`repro.api.SolverConfig`), the
micro-batching window, and the backpressure limits — frozen so a
running service can never be reconfigured under its worker's feet.
:class:`ServiceResult` is the structured per-request answer: every
request gets exactly one, whatever happened to it; failure is a
*status*, never an exception escaping the batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.api import BATCH_ALGORITHMS, SolverConfig
from repro.errors import ConfigurationError
from repro.integrity.fde import EpochVerdict, FdeConfig
from repro.integrity.health import HealthConfig
from repro.integrity.monitors import EpochMonitorVerdict, MonitorConfig
from repro.telemetry.recorder import RecorderConfig
from repro.telemetry.slo import SloConfig
from repro.telemetry.trace import RequestTrace

#: Every status a :class:`ServiceResult` can carry.
RESULT_STATUSES: Tuple[str, ...] = (
    "ok",  # solved; position/clock_bias/solver are set
    "invalid",  # the epoch failed integrity screening (never solved)
    "failed",  # solver(s) rejected the epoch (degradation exhausted)
    "timeout",  # the request's deadline expired (possibly mid-batch)
    "rejected",  # backpressure: queue full at admission, retry later
    "cancelled",  # the submitting task was cancelled while queued
    "retryable",  # a shard worker died mid-batch; safe to resubmit
)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning for one :class:`~repro.service.PositioningService`.

    Attributes
    ----------
    solver:
        Which solver the service runs, as a facade
        :class:`~repro.api.SolverConfig`.  Must name a batchable
        algorithm (``nr``/``dlo``/``dlg``) — micro-batching *is* the
        service.
    max_batch_size:
        Flush the aggregator as soon as this many requests are pending.
    max_wait_seconds:
        Flush no later than this long after the *oldest* pending
        request arrived — the latency a lone request pays to give
        followers a chance to coalesce with it.
    max_queue_depth:
        Admission limit.  A request arriving with this many already
        pending is rejected with ``status="rejected"`` and
        :attr:`retry_after_seconds` instead of growing the queue
        without bound.
    default_timeout_seconds:
        Per-request deadline when ``submit()`` is not given one;
        ``None`` means requests wait as long as dispatch takes.
    nr_fallback:
        Degrade to Newton-Raphson (tuned by ``solver``'s NR knobs) when
        the primary closed-form path rejects an epoch, instead of
        failing the request outright.  Ignored when the primary *is*
        NR.
    retry_after_seconds:
        Backoff hint attached to rejected results.
    integrity:
        When set (an :class:`~repro.integrity.fde.FdeConfig`), every
        batched solve runs through the FDE rung: faults are detected,
        the faulty satellite is excluded and the epoch re-solved
        *within the batch*, and each result carries a structured
        verdict.  Epochs a detected fault leaves unrepaired come back
        ``status="failed"`` rather than serving a known-bad fix.
        Requires ``solver.algorithm="dlg"`` (the only batch path with
        chi-square-scaled residuals).
    health:
        Tuning for the integrity circuit breaker
        (:class:`~repro.integrity.health.SatelliteHealthTracker`):
        satellites excluded repeatedly get quarantined and are
        pre-excluded from incoming epochs before any solving.  Only
        meaningful with ``integrity`` set; ``None`` uses the tracker's
        defaults.
    trace:
        Arm the per-request trace plane: every submission mints a
        :class:`~repro.telemetry.trace.TraceContext` and its result
        carries a :class:`~repro.telemetry.trace.RequestTrace` span
        tree with per-stage timings and batch lineage.  **Off by
        default** and zero-cost when off (no contexts, no trees —
        the traced-off overhead gate in ``bench_service.py`` holds
        the service to the same ≤5% budget as plain telemetry).
    recorder:
        Arm the anomaly flight recorder with this
        :class:`~repro.telemetry.recorder.RecorderConfig`: the service
        retains a ring of compact per-fix records and dumps replayable
        incident artifacts on FDE exclusions/unrepaired faults,
        degradation-ladder fallbacks, and deadline misses.  ``None``
        (default) records nothing.
    slo:
        Arm the SLO engine with this
        :class:`~repro.telemetry.slo.SloConfig`: windowed latency
        quantiles, availability, and error-budget tracking over every
        finished request, published at scrape time.  ``None``
        (default) tracks nothing.
    monitors:
        Arm the signal-plausibility plane with this
        :class:`~repro.integrity.monitors.MonitorConfig`: streaming
        C/N0, clock-drift, and stationarity monitors watch every
        solved batch and their per-epoch verdicts ride the results.
        Confirmed-``spoofed`` epochs come back ``status="failed"``
        when ``monitors.block_spoofed`` (the default) instead of
        serving a fix the monitors call hostile; ``suspect`` epochs
        are served but tagged.  Orthogonal to ``integrity`` — FDE
        checks residual consistency, monitors check signal
        plausibility — but when both are armed, monitor-flagged
        satellites feed the same health tracker.  ``None`` (default)
        runs no monitors.
    """

    solver: SolverConfig = field(default_factory=SolverConfig)
    max_batch_size: int = 64
    max_wait_seconds: float = 0.002
    max_queue_depth: int = 1024
    default_timeout_seconds: Optional[float] = None
    nr_fallback: bool = True
    retry_after_seconds: float = 0.05
    integrity: Optional[FdeConfig] = None
    health: Optional[HealthConfig] = None
    trace: bool = False
    recorder: Optional[RecorderConfig] = None
    slo: Optional[SloConfig] = None
    monitors: Optional[MonitorConfig] = None

    def __post_init__(self) -> None:
        if self.solver.algorithm not in BATCH_ALGORITHMS:
            raise ConfigurationError(
                f"service solver must be batchable ({'/'.join(BATCH_ALGORITHMS)}), "
                f"got {self.solver.algorithm!r}"
            )
        if self.integrity is not None and self.solver.algorithm != "dlg":
            raise ConfigurationError(
                "the integrity rung needs chi-square-scaled residuals, which "
                f"only DLG provides; got solver.algorithm={self.solver.algorithm!r}"
            )
        if self.health is not None and self.integrity is None and self.monitors is None:
            raise ConfigurationError(
                "health tracking is driven by integrity verdicts and monitor "
                "strikes; set integrity=FdeConfig(...) or monitors="
                "MonitorConfig(...) alongside health"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError("max_batch_size must be >= 1")
        if self.max_wait_seconds < 0.0:
            raise ConfigurationError("max_wait_seconds must be >= 0")
        if self.max_queue_depth < 1:
            raise ConfigurationError("max_queue_depth must be >= 1")
        if (
            self.default_timeout_seconds is not None
            and self.default_timeout_seconds <= 0.0
        ):
            raise ConfigurationError("default_timeout_seconds must be positive")
        if self.retry_after_seconds < 0.0:
            raise ConfigurationError("retry_after_seconds must be >= 0")


@dataclass(frozen=True)
class ServiceResult:
    """The structured answer to one submitted request.

    Attributes
    ----------
    status:
        One of :data:`RESULT_STATUSES`.
    position:
        ``(3,)`` ECEF position in meters when ``status="ok"``, else
        ``None``.
    clock_bias_meters:
        The bias associated with the fix (predicted for DLO/DLG,
        solved for NR), when available.
    solver:
        Which path actually answered: the batch path (``"dlg"``), the
        scalar degradation (``"dlg/scalar"``), or the NR fallback
        (``"dlg/nr-fallback"``).
    error:
        Human-readable failure detail for non-``ok`` statuses.
    retry_after_seconds:
        Backoff hint, set only on ``rejected`` results.
    batch_size:
        How many requests shared this request's dispatch (0 when it
        never reached a batch).
    wait_seconds / solve_seconds:
        Time spent queued before dispatch, and inside the solve that
        answered (the whole batch's solve time — requests in one batch
        share it).
    integrity:
        The FDE verdict for this request's epoch
        (:class:`~repro.integrity.fde.EpochVerdict`) when the service
        runs with the integrity rung armed, else ``None``.  A
        ``repaired`` verdict names the excluded PRN; an ``unusable``
        one accompanies ``status="failed"``.
    enqueued_at / dispatched_at / completed_at:
        Monotonic loop-clock stamps of the request's life: admission
        into the batcher, the start of the dispatch that solved (or
        screened) it, and result resolution.  Always populated on the
        dispatch path — no trace plane required — so queue-wait vs.
        solve latency is attributable from any result.
        ``dispatched_at`` is ``None`` for requests that never reached
        a dispatch (rejected at admission) or were screened out of one
        (cancelled, deadline already expired).
    trace:
        The request's span tree and batch lineage
        (:class:`~repro.telemetry.trace.RequestTrace`) when the
        service runs with ``ServiceConfig(trace=True)``, else ``None``.
    monitor:
        The signal-plausibility verdict for this request's epoch
        (:class:`~repro.integrity.monitors.EpochMonitorVerdict`) when
        the service runs with monitors armed *and* at least one
        monitor raised — nominal epochs carry ``None`` so the common
        case stays allocation-free.  A ``spoofed`` verdict accompanies
        ``status="failed"`` when blocking is on.
    """

    status: str
    position: Optional[np.ndarray] = field(default=None, compare=False)
    clock_bias_meters: Optional[float] = None
    solver: Optional[str] = None
    error: Optional[str] = None
    retry_after_seconds: Optional[float] = None
    batch_size: int = 0
    wait_seconds: float = 0.0
    solve_seconds: float = 0.0
    integrity: Optional[EpochVerdict] = None
    enqueued_at: Optional[float] = None
    dispatched_at: Optional[float] = None
    completed_at: Optional[float] = None
    trace: Optional[RequestTrace] = field(default=None, compare=False)
    monitor: Optional[EpochMonitorVerdict] = None

    def __post_init__(self) -> None:
        if self.status not in RESULT_STATUSES:
            raise ConfigurationError(
                f"status must be one of {'/'.join(RESULT_STATUSES)}, "
                f"got {self.status!r}"
            )
        if self.position is not None:
            position = np.asarray(self.position, dtype=float)
            if position.shape != (3,):
                raise ConfigurationError("result position must be a 3-vector")
            object.__setattr__(self, "position", position)

    @property
    def ok(self) -> bool:
        """Whether the request was answered with a position."""
        return self.status == "ok"

    def to_dict(self) -> Dict:
        """JSON-ready form (latency report rows, CLI output)."""
        return {
            "status": self.status,
            "position": (
                None if self.position is None else [float(v) for v in self.position]
            ),
            "clock_bias_meters": self.clock_bias_meters,
            "solver": self.solver,
            "error": self.error,
            "retry_after_seconds": self.retry_after_seconds,
            "batch_size": self.batch_size,
            "wait_seconds": self.wait_seconds,
            "solve_seconds": self.solve_seconds,
            "integrity": (
                None if self.integrity is None else self.integrity.to_dict()
            ),
            "enqueued_at": self.enqueued_at,
            "dispatched_at": self.dispatched_at,
            "completed_at": self.completed_at,
            "trace": None if self.trace is None else self.trace.to_dict(),
            "monitor": None if self.monitor is None else self.monitor.to_dict(),
        }
