"""In-process async client for :class:`~repro.service.PositioningService`.

Two consumption styles:

* :meth:`AsyncPositioningClient.submit` — the service's own structured
  contract: always returns a :class:`~repro.service.types.ServiceResult`,
  never raises for per-request outcomes.
* :meth:`AsyncPositioningClient.solve` — the exception-style contract
  callers coming from ``solver.solve(epoch)`` expect: returns a
  :class:`~repro.core.types.PositionFix` or raises a typed error
  (:class:`~repro.errors.QueueFullError`,
  :class:`~repro.errors.RequestTimeoutError`,
  :class:`~repro.errors.ServiceError`).

:meth:`solve_many` fans a sequence out with bounded concurrency and
optional bounded retry of backpressure rejections — the polite-client
loop the benchmark and the ``serve`` CLI both run.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence

from repro.core.types import PositionFix
from repro.errors import QueueFullError, RequestTimeoutError, ServiceError
from repro.observations import ObservationEpoch
from repro.service.service import _UNSET, PositioningService
from repro.service.types import ServiceResult


class AsyncPositioningClient:
    """Thin, stateless wrapper around one running service."""

    def __init__(self, service: PositioningService) -> None:
        self._service = service

    async def submit(
        self,
        epoch: ObservationEpoch,
        timeout: object = _UNSET,
        bias_meters: Optional[float] = None,
    ) -> ServiceResult:
        """Forward to the service; structured result, never raises."""
        return await self._service.submit(
            epoch, timeout=timeout, bias_meters=bias_meters
        )

    async def solve(
        self,
        epoch: ObservationEpoch,
        timeout: object = _UNSET,
        bias_meters: Optional[float] = None,
    ) -> PositionFix:
        """Exception-style solve: a fix, or a typed error.

        Raises
        ------
        QueueFullError
            Backpressure rejection; carries ``retry_after_seconds``.
        RequestTimeoutError
            The request's deadline expired before (or during) solving.
        ServiceError
            The epoch was invalid, every solver rung rejected it, or
            the request was cancelled.
        """
        result = await self.submit(epoch, timeout=timeout, bias_meters=bias_meters)
        if result.ok:
            assert result.position is not None
            return PositionFix(
                position=result.position,
                clock_bias_meters=result.clock_bias_meters,
                algorithm=result.solver or "",
            )
        if result.status == "rejected":
            raise QueueFullError(
                result.error or "service queue full",
                retry_after_seconds=(
                    result.retry_after_seconds
                    if result.retry_after_seconds is not None
                    else 0.05
                ),
            )
        if result.status == "timeout":
            raise RequestTimeoutError(result.error or "request timed out")
        raise ServiceError(f"{result.status}: {result.error or 'request failed'}")

    async def solve_many(
        self,
        epochs: Sequence[ObservationEpoch],
        timeout: object = _UNSET,
        biases: Optional[Sequence[Optional[float]]] = None,
        concurrency: int = 256,
        max_retries: int = 0,
    ) -> List[ServiceResult]:
        """Submit many epochs concurrently; results in input order.

        ``concurrency`` bounds in-flight submissions (keep it at or
        below the service's ``max_queue_depth`` to avoid manufacturing
        rejections); the bound is a pool of that many pump tasks over a
        shared index iterator rather than a per-request semaphore,
        whose waiter-queue rescans grow quadratically in the size of
        each resolved batch.  ``max_retries`` > 0 resubmits *rejected*
        requests after sleeping their ``retry_after_seconds`` hint, up
        to the given attempts — other statuses are final.
        """
        if biases is not None and len(biases) != len(epochs):
            raise ServiceError(
                f"biases must be one per epoch: got {len(biases)} "
                f"for {len(epochs)} epochs"
            )
        results: List[Optional[ServiceResult]] = [None] * len(epochs)
        indices = iter(range(len(epochs)))

        async def pump() -> None:
            for index in indices:
                epoch = epochs[index]
                bias = None if biases is None else biases[index]
                result = await self.submit(epoch, timeout=timeout, bias_meters=bias)
                for _ in range(max_retries):
                    if result.status != "rejected":
                        break
                    await asyncio.sleep(result.retry_after_seconds or 0.05)
                    result = await self.submit(
                        epoch, timeout=timeout, bias_meters=bias
                    )
                results[index] = result

        pumps = min(max(1, int(concurrency)), max(1, len(epochs)))
        await asyncio.gather(*(pump() for _ in range(pumps)))
        return list(results)
