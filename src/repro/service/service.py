"""The async positioning service.

:class:`PositioningService` turns the stacked-solver throughput of
:class:`~repro.engine.PositioningEngine` into a request/response
surface: callers submit *single epochs* from concurrent asyncio tasks,
the service coalesces them through a :class:`~repro.service.batcher.
MicroBatcher`, solves each formed batch in one vectorized call, and
scatters :class:`~repro.service.types.ServiceResult`\\ s back onto the
callers' futures.

Everything runs on one event loop; the solve itself executes inline in
the worker task.  On the single-core boxes this repo targets, a thread
pool would only add handoff latency — batching, not parallelism, is
where the throughput comes from (see ``BENCH_engine_throughput.json``:
the batched solvers are ~18× the scalar ones).

Failure is data, not control flow.  Every submitted request resolves
to exactly one structured result; the degradation ladder runs

1. the batched solve (invalid epochs screened out per-row, healthy
   rows unaffected — partial-batch completion),
2. on whole-batch rejection, per-epoch scalar re-solve with the
   configured algorithm,
3. per-epoch Newton-Raphson fallback for epochs the closed-form path
   rejects (ill-conditioned difference geometry), when enabled,

and only a request whose *own* epoch defeats every rung comes back
``status="failed"`` — its batchmates still succeed.

With ``config.integrity`` set the ladder gains a fault rung *inside*
step 1: the batched solve runs through
:class:`~repro.integrity.fde.BatchFde`, so a spiked pseudorange is
detected, its satellite excluded, and the epoch re-solved within the
same batch — the requester sees ``status="ok"`` with a ``repaired``
verdict naming the excluded PRN.  A
:class:`~repro.integrity.health.SatelliteHealthTracker` remembers
exclusions across requests and pre-excludes persistently faulty
satellites at admission (the circuit breaker), so a satellite with a
stuck fault stops costing an exclusion search per epoch.  Epochs a
detected fault leaves unrepairable come back ``status="failed"`` with
an ``unusable`` verdict — the service never serves a fix it knows is
bad.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine import PositioningEngine
from repro.errors import ServiceError
from repro.integrity.health import SatelliteHealthTracker
from repro.observations import ObservationEpoch
from repro.service.batcher import Flush, MicroBatcher
from repro.service.executor import BatchExecutor, BatchMeta
from repro.service.types import ServiceConfig, ServiceResult
from repro.telemetry import get_registry, get_tracer
from repro.telemetry.recorder import (
    TRIGGER_DEADLINE_MISS,
    TRIGGER_DEGRADED,
    TRIGGER_FDE_EXCLUSION,
    TRIGGER_FDE_UNREPAIRED,
    TRIGGER_MONITOR,
    FixRecord,
    FlightRecorder,
    config_hash,
    epoch_payload,
    now_seconds,
)
from repro.telemetry.slo import SloTracker
from repro.telemetry.trace import (
    RequestTrace,
    assemble_request_trace,
    mint_request_number,
)

#: Distinguishes "no timeout argument" from an explicit ``None``
#: (= wait indefinitely).
_UNSET = object()

#: Batch-size histogram bounds (requests per dispatch).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)

#: Request-latency histogram bounds (seconds, submit → resolve).
_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.002,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


@dataclass
class _PendingRequest:
    """One queued epoch and the future its submitter awaits."""

    epoch: ObservationEpoch
    bias_meters: Optional[float]
    future: "asyncio.Future[ServiceResult]"
    submitted_at: float
    deadline: Optional[float]
    # The request's trace identity: a bare counter number from
    # mint_request_number (the TraceContext materializes lazily from
    # whichever RequestTrace carries it), or None when tracing is off.
    trace: Optional[int] = None


class _MetricHandles:
    """Pre-resolved telemetry children for the per-request hot path.

    Looking metric families and label children up through the registry
    costs a handful of dict probes per call — noise anywhere else, but
    the service resolves *every request* through this path, and at
    micro-batch throughputs those probes were a measurable slice of
    the per-request budget.  One instance is built per installed
    registry (rebuilt if telemetry is reinstalled) and caches every
    child the dispatch loop touches.
    """

    __slots__ = (
        "registry",
        "latency",
        "batch_size",
        "queue_depth",
        "_requests_family",
        "_batches_family",
        "_request_children",
        "_batch_children",
    )

    def __init__(self, registry) -> None:
        self.registry = registry
        self._requests_family = registry.counter(
            "repro_service_requests_total",
            "Requests by final status.",
            labels=("status",),
        )
        self._batches_family = registry.counter(
            "repro_service_batches_total",
            "Batches by flush reason.",
            labels=("reason",),
        )
        self.latency = registry.histogram(
            "repro_service_request_latency_seconds",
            "Submit-to-resolve latency.",
            buckets=_LATENCY_BUCKETS,
        ).labels()
        self.batch_size = registry.histogram(
            "repro_service_batch_size",
            "Requests per dispatched batch.",
            buckets=_BATCH_SIZE_BUCKETS,
        ).labels()
        self.queue_depth = registry.gauge(
            "repro_service_queue_depth",
            "Requests waiting to be batched, sampled at each flush.",
        ).labels()
        self._request_children: dict = {}
        self._batch_children: dict = {}

    def request_child(self, status: str):
        child = self._request_children.get(status)
        if child is None:
            child = self._requests_family.labels(status=status)
            self._request_children[status] = child
        return child

    def batch_child(self, reason: str):
        child = self._batch_children.get(reason)
        if child is None:
            child = self._batches_family.labels(reason=reason)
            self._batch_children[reason] = child
        return child


class PositioningService:
    """Micro-batching request server over the positioning engine.

    Usage::

        config = ServiceConfig(solver=SolverConfig(algorithm="dlg"))
        async with PositioningService(config) as service:
            results = await asyncio.gather(
                *(service.submit(epoch) for epoch in epochs)
            )

    ``engine`` may be injected for tests; by default it is built from
    the config's solver via :meth:`PositioningEngine.from_config`
    (with the FDE gate armed when ``config.integrity`` is set).
    ``health_tracker`` may be injected to share satellite-health state
    with other consumers (a :class:`~repro.core.receiver.GpsReceiver`,
    another service); by default one is built from ``config.health``
    when the integrity rung is armed.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        engine: Optional[PositioningEngine] = None,
        health_tracker: Optional[SatelliteHealthTracker] = None,
    ) -> None:
        self._config = config if config is not None else ServiceConfig()
        # The batch-execution core is process-agnostic (shard workers
        # run the same object); this class owns only the asyncio
        # dispatch around it.
        self._executor = BatchExecutor(
            self._config, engine=engine, health_tracker=health_tracker
        )
        self._engine = self._executor.engine
        solver_config = self._config.solver
        self._batcher: Optional[MicroBatcher] = None
        self._worker: Optional["asyncio.Task[None]"] = None
        self._handles: Optional[_MetricHandles] = None
        # Observability plane (all opt-in, all None/off by default).
        self._recorder = (
            FlightRecorder(self._config.recorder)
            if self._config.recorder is not None
            else None
        )
        self._slo = (
            SloTracker(self._config.slo) if self._config.slo is not None else None
        )
        # Fallback record ids for trace-off recording ("fix-<n>").
        self._fix_sequence = 0
        # Shared solver spec for untriggered fix records: only
        # triggered records are replayable (they capture the epoch), so
        # only they pay for a per-request spec with the resolved bias.
        self._base_solver_spec = {
            "algorithm": solver_config.algorithm,
            "clock_bias_meters": solver_config.clock_bias_meters,
        }
        self._fde_spec = (
            self._config.integrity.to_dict()
            if self._config.integrity is not None
            else None
        )
        self._config_hash = config_hash(
            {"algorithm": self._config.solver.algorithm},
            self._fde_spec,
            nr_fallback=self._config.nr_fallback,
            max_batch_size=self._config.max_batch_size,
        )

    def _telemetry_handles(self) -> Optional[_MetricHandles]:
        """Cached hot-path metric children for the installed registry."""
        registry = get_registry()
        if not registry.enabled:
            return None
        handles = self._handles
        if handles is None or handles.registry is not registry:
            handles = _MetricHandles(registry)
            self._handles = handles
        return handles

    # -- lifecycle -----------------------------------------------------

    @property
    def config(self) -> ServiceConfig:
        """The frozen tuning this service runs with."""
        return self._config

    @property
    def executor(self) -> BatchExecutor:
        """The process-agnostic batch-execution core."""
        return self._executor

    @property
    def health_tracker(self) -> Optional[SatelliteHealthTracker]:
        """The satellite-health circuit breaker, when integrity is armed."""
        return self._executor.health_tracker

    @property
    def recorder(self) -> Optional[FlightRecorder]:
        """The anomaly flight recorder, when ``config.recorder`` is set."""
        return self._recorder

    @property
    def slo(self) -> Optional[SloTracker]:
        """The SLO tracker, when ``config.slo`` is set."""
        return self._slo

    @property
    def running(self) -> bool:
        """Whether the worker is accepting requests."""
        return (
            self._worker is not None
            and self._batcher is not None
            and not self._batcher.closed
        )

    @property
    def queue_depth(self) -> int:
        """Requests currently waiting for a batch."""
        return 0 if self._batcher is None else len(self._batcher)

    async def start(self) -> None:
        """Spawn the worker; must run inside an event loop."""
        if self._worker is not None:
            raise ServiceError("service is already running")
        self._batcher = MicroBatcher(
            max_batch_size=self._config.max_batch_size,
            max_wait_seconds=self._config.max_wait_seconds,
        )
        self._worker = asyncio.get_running_loop().create_task(
            self._run_worker(), name="repro-positioning-service"
        )

    async def stop(self) -> None:
        """Stop admissions, drain every pending request, join the worker."""
        if self._worker is None:
            return
        assert self._batcher is not None
        self._batcher.close()
        try:
            await self._worker
        finally:
            self._worker = None
            self._batcher = None

    async def __aenter__(self) -> "PositioningService":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # -- request intake ------------------------------------------------

    async def submit(
        self,
        epoch: ObservationEpoch,
        timeout: object = _UNSET,
        bias_meters: Optional[float] = None,
    ) -> ServiceResult:
        """One epoch in, one structured result out.

        ``timeout`` defaults to the config's
        ``default_timeout_seconds``; pass ``None`` explicitly to wait
        indefinitely.  ``bias_meters`` overrides the solver config's
        clock-bias source for this request only (DLO/DLG).

        Never raises for per-request outcomes — backpressure, deadline
        expiry, and solver failure all come back as statuses.  Raises
        :class:`~repro.errors.ServiceError` only for *misuse*:
        submitting to a service that is not running.
        """
        if not self.running:
            raise ServiceError(
                "service is not running; enter it with 'async with' or start()"
            )
        assert self._batcher is not None
        if len(self._batcher) >= self._config.max_queue_depth:
            handles = self._telemetry_handles()
            if handles is not None:
                handles.request_child("rejected").inc()
            if self._slo is not None:
                self._slo.observe("rejected", 0.0)
            return ServiceResult(
                status="rejected",
                error=(
                    f"queue full ({self._config.max_queue_depth} pending); "
                    f"retry after {self._config.retry_after_seconds:g}s"
                ),
                retry_after_seconds=self._config.retry_after_seconds,
                completed_at=asyncio.get_running_loop().time(),
            )

        loop = asyncio.get_running_loop()
        now = loop.time()
        effective_timeout = (
            self._config.default_timeout_seconds if timeout is _UNSET else timeout
        )
        if effective_timeout is not None and effective_timeout <= 0.0:
            raise ServiceError("timeout must be positive (or None)")
        deadline = None if effective_timeout is None else now + effective_timeout
        request = _PendingRequest(
            epoch=epoch,
            bias_meters=bias_meters,
            future=loop.create_future(),
            submitted_at=now,
            deadline=deadline,
            trace=mint_request_number() if self._config.trace else None,
        )
        self._batcher.put(request)
        # No wait_for here: the worker always resolves the future — on
        # solve, on deadline expiry at dispatch, or on drain at stop().
        return await request.future

    # -- worker --------------------------------------------------------

    async def _run_worker(self) -> None:
        assert self._batcher is not None
        while True:
            flush = await self._batcher.next_batch()
            if flush is None:
                return
            try:
                self._dispatch(flush)
            except Exception as exc:  # never strand a caller's future
                handles = self._telemetry_handles()
                for request in flush.items:
                    self._finish(
                        request,
                        ServiceResult(
                            status="failed",
                            error=f"internal dispatch error: {exc}",
                            batch_size=len(flush),
                        ),
                        handles,
                        None,
                    )

    def _finish(
        self,
        request: _PendingRequest,
        result: ServiceResult,
        handles: Optional[_MetricHandles],
        now: Optional[float],
    ) -> None:
        """Hand a result to the submitter, if it is still listening."""
        future = request.future
        if not future.done():
            future.set_result(result)
            status = result.status
        elif future.cancelled():
            status = "cancelled"
        else:
            status = future.result().status
        if handles is not None or self._slo is not None:
            if now is None:
                now = asyncio.get_running_loop().time()
            latency = max(0.0, now - request.submitted_at)
            if handles is not None:
                handles.request_child(status).inc()
                handles.latency.observe(latency)
            if self._slo is not None:
                self._slo.observe(status, latency)

    def _dispatch(self, flush: Flush) -> None:
        """Solve one formed batch and resolve every request in it."""
        handles = self._telemetry_handles()
        tracer = get_tracer()
        loop = asyncio.get_running_loop()
        now = loop.time()

        if handles is not None:
            handles.batch_child(flush.reason).inc()
            handles.batch_size.observe(len(flush))
            handles.queue_depth.set(self.queue_depth)

        # Screen out requests nobody is waiting for anymore.
        live: List[_PendingRequest] = []
        for request in flush.items:
            if request.future.cancelled():
                self._finish(
                    request,
                    self._screened_result("cancelled", None, request, now, flush),
                    handles,
                    now,
                )
            elif request.deadline is not None and now >= request.deadline:
                result = self._screened_result(
                    "timeout", "deadline expired while queued", request, now, flush
                )
                self._finish(request, result, handles, now)
                if self._recorder is not None:
                    self._record_fix(request, result, request.epoch, None, flush)
            else:
                live.append(request)
        if not live:
            return

        batch_size = len(live)
        solve_started = loop.time()
        with tracer.span(
            "service.dispatch",
            batch=batch_size,
            reason=flush.reason,
            algorithm=self._engine.algorithm,
        ):
            outcomes, meta = self._solve_batch(live)
        solve_seconds = loop.time() - solve_started

        resolved_at = loop.time()
        # Per-flush trace constants: the peer list and the solve-span
        # annotations are shared (never copied, never mutated) by every
        # trace of the flush, and the bucket lineage arrays are
        # converted to plain lists once instead of through two numpy
        # scalar casts per request.
        peers: tuple = ()
        solve_attributes = None
        bucket_keys = bucket_rows = None
        if self._config.trace:
            # Peer request *numbers*, shared by every trace of the
            # flush; the id strings materialize lazily in
            # RequestTrace.batch_peers so the dispatch loop never
            # formats (or even allocates contexts for) them.
            peers = tuple(
                [
                    request.trace
                    for request in live
                    if request.trace is not None
                ]
            )
            solve_attributes = {
                "algorithm": self._engine.algorithm,
                "rung": meta.rung,
                "batch": batch_size,
                "reason": flush.reason,
            }
            if meta.bucket_keys is not None and meta.bucket_rows is not None:
                bucket_keys = meta.bucket_keys.tolist()
                bucket_rows = meta.bucket_rows.tolist()
            else:
                # Pre-built "-1 everywhere" lineage so the per-request
                # loop indexes unconditionally instead of branching.
                bucket_keys = bucket_rows = (-1,) * batch_size
        # Per-flush flight-recorder constants (stamp, shared attributes
        # and stage split), hoisted off the per-request path.
        recording = self._recorder is not None
        if recording:
            record_stamp = now_seconds()
            record_stages = meta.stage_seconds if meta.stage_seconds else {}
            record_attributes = {
                "batch_sequence": flush.sequence,
                "batch_size": batch_size,
                "flush_reason": flush.reason,
                "rung": meta.rung,
            }
            # The shared half of every lazy flush entry (see
            # FlightRecorder.record_flush): uneventful fixes ride the
            # ring as tuples over these constants plus the live
            # result/epoch, and only anomalies build a FixRecord here.
            record_shared = (
                record_stamp,
                self._config_hash,
                record_attributes,
                record_stages,
                self._base_solver_spec,
                self._fde_spec,
            )
            record_entries: List = []
            record_triggered: List[FixRecord] = []
        slo = self._slo
        observing = handles is not None or slo is not None
        statuses: List[str] = []
        latencies: List[float] = []
        for index, (request, outcome) in enumerate(zip(live, outcomes)):
            status, position, bias, solver, error, verdict, monitor = outcome
            if (
                request.deadline is not None
                and resolved_at >= request.deadline
            ):
                # Solved, but past the caller's deadline: the contract
                # is the deadline, so report the timeout (noting the
                # answer existed — it helps operators size timeouts).
                status, position, bias, solver = "timeout", None, None, None
                error = "deadline expired during batch solve"
                verdict = None
                monitor = None
            trace = None
            if request.trace is not None:
                # Constructed directly (not via assemble_request_trace)
                # on the dispatch path: resolved_at >= submitted_at by
                # construction, and the helper's validation plus kwargs
                # forwarding are measurable per request.
                trace = RequestTrace(
                    request.trace,
                    request.submitted_at,
                    resolved_at,
                    solve_started,
                    solve_seconds,
                    meta.stage_seconds,
                    solve_attributes,
                    flush.sequence,
                    peers,
                    bucket_keys[index],
                    bucket_rows[index],
                    request.deadline,
                )
            result = ServiceResult(
                status=status,
                position=position,
                clock_bias_meters=bias,
                solver=solver,
                error=error,
                batch_size=batch_size,
                wait_seconds=max(0.0, solve_started - request.submitted_at),
                solve_seconds=solve_seconds,
                integrity=verdict,
                enqueued_at=request.submitted_at,
                dispatched_at=solve_started,
                completed_at=resolved_at,
                trace=trace,
                monitor=monitor,
            )
            # Resolve the caller's future inline; the metric, SLO, and
            # flight-recorder accounting for the whole flush is batched
            # after the loop (one counter increment per status, one
            # histogram lock, one recorder pass — not one each per
            # request).
            future = request.future
            if not future.done():
                future.set_result(result)
                effective = status
            elif future.cancelled():
                effective = "cancelled"
            else:
                effective = future.result().status
            if observing:
                statuses.append(effective)
                latencies.append(resolved_at - request.submitted_at)
            if recording:
                # Mirror of _build_fix_record's trigger derivation: an
                # FDE exclusion/unrepaired verdict, a deadline miss, a
                # degraded solver rung ("dlg/scalar"), or a raised
                # signal-plausibility verdict is an anomaly and builds
                # its record (and dump) eagerly; everything else defers
                # construction to the recorder's read paths.
                if (
                    status == "timeout"
                    or (
                        verdict is not None
                        and verdict.status in ("repaired", "unusable")
                    )
                    or (solver is not None and "/" in solver)
                    or monitor is not None
                ):
                    record = self._build_fix_record(
                        request,
                        result,
                        meta.epochs[index],
                        meta,
                        flush,
                        index,
                        record_stamp,
                        record_attributes,
                        record_stages,
                    )
                    record_entries.append(record)
                    record_triggered.append(record)
                else:
                    # The entry carries the record-relevant *fields*,
                    # not the result: retaining whole results in the
                    # ring makes their (cold) deallocation a recorder
                    # cost a few flushes later.
                    record_entries.append(
                        (
                            record_shared,
                            request.trace,
                            status,
                            solver,
                            error,
                            verdict,
                            trace,
                            meta.epochs[index],
                            index,
                        )
                    )
        if observing:
            if handles is not None:
                for effective, count in Counter(statuses).items():
                    handles.request_child(effective).inc(count)
                handles.latency.observe_many(latencies)
            if slo is not None:
                slo.observe_batch(statuses, latencies)
        if recording:
            self._recorder.record_flush(record_entries, record_triggered)

    def _screened_result(
        self,
        status: str,
        error: Optional[str],
        request: _PendingRequest,
        now: float,
        flush: Flush,
    ) -> ServiceResult:
        """A stamped (and traced, if armed) result for a request that
        was screened out of its dispatch before solving."""
        trace = None
        if request.trace is not None:
            trace = assemble_request_trace(
                request.trace,
                submitted_at=request.submitted_at,
                completed_at=now,
                batch_sequence=flush.sequence,
                deadline=request.deadline,
            )
        return ServiceResult(
            status=status,
            error=error,
            wait_seconds=(
                max(0.0, now - request.submitted_at) if status == "timeout" else 0.0
            ),
            enqueued_at=request.submitted_at,
            completed_at=now,
            trace=trace,
        )

    def _record_fix(
        self,
        request: _PendingRequest,
        result: ServiceResult,
        epoch: ObservationEpoch,
        meta: Optional[BatchMeta],
        flush: Flush,
    ) -> None:
        """Retain one screened-out fix in the flight recorder."""
        self._recorder.record(
            self._build_fix_record(request, result, epoch, meta, flush)
        )

    def _build_fix_record(
        self,
        request: _PendingRequest,
        result: ServiceResult,
        epoch: ObservationEpoch,
        meta: Optional[BatchMeta],
        flush: Flush,
        index: Optional[int] = None,
        recorded_at: Optional[float] = None,
        attributes: Optional[Dict] = None,
        stages: Optional[Dict[str, float]] = None,
    ) -> FixRecord:
        """The flight-recorder record for one served fix.

        ``recorded_at``/``attributes``/``stages`` are supplied per
        flush by ``_dispatch`` so the per-request work here stays at
        one :class:`FixRecord` construction; only triggered records —
        the replayable ones — pay for the epoch capture and the
        resolved per-request solver spec.
        """
        trigger = None
        verdict_dict = None
        if result.integrity is not None:
            verdict_dict = result.integrity.to_dict()
            if result.integrity.status == "repaired":
                trigger = TRIGGER_FDE_EXCLUSION
            elif result.integrity.status == "unusable":
                trigger = TRIGGER_FDE_UNREPAIRED
        if result.status == "timeout":
            trigger = TRIGGER_DEADLINE_MISS
        elif result.solver is not None and "/" in result.solver:
            # "dlg/scalar", "dlg/nr-fallback": the ladder degraded.
            trigger = TRIGGER_DEGRADED
        monitor_dict = None
        if result.monitor is not None:
            monitor_dict = result.monitor.to_dict()
            if trigger is None:
                # FDE/timeout/degradation triggers take precedence in
                # the taxonomy; the verdict still rides the record.
                trigger = TRIGGER_MONITOR
        if trigger is None:
            epoch_dict = None
            solver_spec = self._base_solver_spec
        else:
            resolved_bias = (
                meta.bias(index)
                if meta is not None and index is not None
                else None
            )
            if resolved_bias is None:
                resolved_bias = (
                    result.clock_bias_meters
                    if result.clock_bias_meters is not None
                    else request.bias_meters
                )
            # The captured epoch is the expensive part; only triggered
            # records (the ones that can dump) carry it.
            epoch_dict = epoch_payload(epoch)
            solver_spec = {
                "algorithm": self._engine.algorithm,
                "clock_bias_meters": resolved_bias,
            }
        if attributes is None:
            attributes = {
                "batch_sequence": flush.sequence,
                "batch_size": result.batch_size,
                "flush_reason": flush.reason,
                "rung": meta.rung if meta is not None else "screened",
            }
        # The materialized context (ids resolve lazily from it inside
        # FixRecord).  request.trace is just a number; the trace on the
        # result — built whenever tracing is armed — owns the lazy
        # materialization, and this path only runs for triggered or
        # screened fixes, never per uneventful request.
        context = result.trace.context if result.trace is not None else None
        self._fix_sequence += 1
        # Positional FixRecord construction (parameter order matches
        # recorder.FixRecord.__init__): keyword passing of 17 fields is
        # measurable at once-per-served-fix rates.  stage_seconds is
        # shared with every record of the flush and never mutated; the
        # digest hashes lazily off epoch_ref, and when a trace context
        # exists the id *strings* resolve lazily from it at read time.
        return FixRecord(
            (
                None
                if context is not None
                else f"fix-{self._fix_sequence}"
            ),  # request_id: lazy via context when traced
            result.status,
            result.solver or "",
            recorded_at if recorded_at is not None else now_seconds(),
            self._config_hash,
            "",  # inputs_digest: lazy, via epoch_ref
            None if context is not None else "",  # trace_id: lazy
            trigger,
            (
                stages
                if stages is not None
                else (
                    meta.stage_seconds
                    if meta is not None and meta.stage_seconds
                    else {}
                )
            ),
            verdict_dict,
            result.error,
            epoch_dict,
            solver_spec,
            self._fde_spec,
            result.trace,
            attributes,
            epoch,  # epoch_ref
            context,
            monitor_dict,
        )

    # -- solving -------------------------------------------------------

    def _solve_batch(self, live: Sequence[_PendingRequest]):
        """``(outcomes, BatchMeta)``: one
        ``(status, position, bias, solver, error, verdict)`` tuple per
        live request, plus what the dispatch learned along the way.

        Thin delegation to the process-agnostic
        :class:`~repro.service.executor.BatchExecutor` — shard workers
        run the same core on batches that arrived over shared memory.
        """
        overrides: Optional[List[Optional[float]]] = None
        if any(request.bias_meters is not None for request in live):
            overrides = [request.bias_meters for request in live]
        return self._executor.execute(
            [request.epoch for request in live], overrides
        )
