"""RINEX 2.11 GPS navigation file writer."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.errors import RinexError
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.rinex.format import fortran_double, header_line
from repro.rinex.types import gps_to_calendar


def write_navigation_file(
    path: Union[str, Path],
    ephemerides: Iterable[BroadcastEphemeris],
) -> int:
    """Write broadcast ephemerides as a RINEX 2.11 navigation file.

    Returns the number of ephemeris records written.
    """
    lines = [
        header_line(
            f"{'2.11':>9}{'':11}{'N: GPS NAV DATA':<40}", "RINEX VERSION / TYPE"
        ),
        header_line(f"{'repro':<20}{'repro-simulator':<20}{'':20}", "PGM / RUN BY / DATE"),
        header_line("", "END OF HEADER"),
    ]

    count = 0
    for ephemeris in ephemerides:
        lines.extend(_record_lines(ephemeris))
        count += 1
    if count == 0:
        raise RinexError("refusing to write a navigation file with no ephemerides")

    Path(path).write_text("\n".join(lines) + "\n")
    return count


def _record_lines(eph: BroadcastEphemeris):
    year, month, day, hour, minute, second = gps_to_calendar(eph.toc)
    d = fortran_double
    # Line 0: PRN / toc / clock polynomial.
    yield (
        f"{eph.prn:2d} {year % 100:02d} {month:2d} {day:2d} {hour:2d} {minute:2d}"
        f"{second:5.1f}{d(eph.af0)}{d(eph.af1)}{d(eph.af2)}"
    )
    # Orbit lines 1..7, four D19.12 fields each, 3-space indent.
    indent = "   "
    iode = 0.0
    yield indent + d(iode) + d(eph.crs) + d(eph.delta_n) + d(eph.m0)
    yield indent + d(eph.cuc) + d(eph.eccentricity) + d(eph.cus) + d(eph.sqrt_a)
    yield indent + d(eph.toe.seconds_of_week) + d(eph.cic) + d(eph.omega0) + d(eph.cis)
    yield indent + d(eph.i0) + d(eph.crc) + d(eph.omega) + d(eph.omega_dot)
    yield indent + d(eph.idot) + d(0.0) + d(float(eph.toe.week)) + d(0.0)
    yield indent + d(2.0) + d(0.0) + d(0.0) + d(float(iode))
    yield indent + d(eph.toe.seconds_of_week) + d(eph.fit_interval_seconds / 3600.0) + d(0.0) + d(0.0)
