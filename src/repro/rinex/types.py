"""Shared RINEX data structures and calendar/GPS time conversion."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import RinexError
from repro.timebase import GpsTime

#: The GPS epoch as a calendar instant; RINEX GPS-time tags are civil
#: renderings of the continuous GPS scale (no leap seconds applied).
_GPS_EPOCH = _dt.datetime(1980, 1, 6, 0, 0, 0)


def gps_to_calendar(time: GpsTime) -> Tuple[int, int, int, int, int, float]:
    """Render a GPS time as ``(year, month, day, hour, minute, second)``.

    The rendering is on the GPS time scale itself (the RINEX convention
    for GPS observation files), so no leap-second adjustment applies.
    """
    total = time.to_gps_seconds()
    whole = int(total)
    fraction = total - whole
    moment = _GPS_EPOCH + _dt.timedelta(seconds=whole)
    return (
        moment.year,
        moment.month,
        moment.day,
        moment.hour,
        moment.minute,
        moment.second + fraction,
    )


def calendar_to_gps(
    year: int, month: int, day: int, hour: int, minute: int, second: float
) -> GpsTime:
    """Inverse of :func:`gps_to_calendar`."""
    whole = int(second)
    fraction = second - whole
    try:
        moment = _dt.datetime(year, month, day, hour, minute, whole)
    except ValueError as exc:
        raise RinexError(f"invalid calendar instant in RINEX file: {exc}") from exc
    delta = (moment - _GPS_EPOCH).total_seconds() + fraction
    if delta < 0:
        raise RinexError("RINEX instant precedes the GPS epoch")
    return GpsTime.from_gps_seconds(delta)


@dataclass(frozen=True)
class ObservationHeader:
    """The subset of RINEX 2.11 observation-header fields we carry.

    Attributes
    ----------
    marker_name:
        Station identifier (the Table 5.1 site id).
    approx_position:
        The header's APPROX POSITION XYZ (meters, ECEF).
    interval:
        Observation cadence in seconds.
    observation_types:
        Codes in per-satellite record order, e.g. ``("C1",)``.
    """

    marker_name: str
    approx_position: Tuple[float, float, float]
    interval: float
    observation_types: Tuple[str, ...] = ("C1",)


@dataclass(frozen=True)
class ObservationRecord:
    """One epoch record: GPS time tag + per-PRN observables."""

    time: GpsTime
    #: PRN -> observable code -> value (meters for code pseudoranges).
    observables: Dict[int, Dict[str, float]]

    @property
    def prns(self) -> List[int]:
        """PRNs present in this record, sorted."""
        return sorted(self.observables)


@dataclass
class ObservationData:
    """A parsed observation file: header plus epoch records."""

    header: ObservationHeader
    records: List[ObservationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)
