"""Shared RINEX data structures and calendar/GPS time conversion."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import RinexError
from repro.timebase import GpsTime

#: Width of one RINEX signal-strength-indicator step in dB-Hz.  The
#: SSI flag digit projects C/N0 onto nine coarse intervals ("1:
#: minimum possible ... 5: threshold for good S/N ... 9: maximum"),
#: conventionally ~6 dB-Hz each, so digit ``n`` reads back as
#: ``6 * n`` dB-Hz when no ``S*`` observable carries the real value.
SSI_STEP_DBHZ = 6.0

#: The GPS epoch as a calendar instant; RINEX GPS-time tags are civil
#: renderings of the continuous GPS scale (no leap seconds applied).
_GPS_EPOCH = _dt.datetime(1980, 1, 6, 0, 0, 0)


def gps_to_calendar(time: GpsTime) -> Tuple[int, int, int, int, int, float]:
    """Render a GPS time as ``(year, month, day, hour, minute, second)``.

    The rendering is on the GPS time scale itself (the RINEX convention
    for GPS observation files), so no leap-second adjustment applies.
    """
    total = time.to_gps_seconds()
    whole = int(total)
    fraction = total - whole
    moment = _GPS_EPOCH + _dt.timedelta(seconds=whole)
    return (
        moment.year,
        moment.month,
        moment.day,
        moment.hour,
        moment.minute,
        moment.second + fraction,
    )


def calendar_to_gps(
    year: int, month: int, day: int, hour: int, minute: int, second: float
) -> GpsTime:
    """Inverse of :func:`gps_to_calendar`."""
    whole = int(second)
    fraction = second - whole
    try:
        moment = _dt.datetime(year, month, day, hour, minute, whole)
    except ValueError as exc:
        raise RinexError(f"invalid calendar instant in RINEX file: {exc}") from exc
    delta = (moment - _GPS_EPOCH).total_seconds() + fraction
    if delta < 0:
        raise RinexError("RINEX instant precedes the GPS epoch")
    return GpsTime.from_gps_seconds(delta)


@dataclass(frozen=True)
class ObservationHeader:
    """The subset of RINEX 2.11 observation-header fields we carry.

    Attributes
    ----------
    marker_name:
        Station identifier (the Table 5.1 site id).
    approx_position:
        The header's APPROX POSITION XYZ (meters, ECEF).
    interval:
        Observation cadence in seconds.
    observation_types:
        Codes in per-satellite record order, e.g. ``("C1",)``.
    """

    marker_name: str
    approx_position: Tuple[float, float, float]
    interval: float
    observation_types: Tuple[str, ...] = ("C1",)


@dataclass(frozen=True)
class ObservationRecord:
    """One epoch record: GPS time tag + per-PRN observables."""

    time: GpsTime
    #: PRN -> observable code -> value (meters for code pseudoranges).
    observables: Dict[int, Dict[str, float]]
    #: PRN -> observable code -> SSI flag digit (1-9); only non-blank,
    #: non-zero flags are recorded.
    signal_strength: Dict[int, Dict[str, int]] = field(default_factory=dict)

    @property
    def prns(self) -> List[int]:
        """PRNs present in this record, sorted."""
        return sorted(self.observables)

    def cn0_dbhz(self, prn: int, observable: str = "C1") -> Optional[float]:
        """Best-effort C/N0 for one satellite, in dB-Hz.

        Prefers the matching ``S*`` signal-strength observable (``S1``
        for ``C1``) when the file carries one; otherwise falls back to
        the observable's SSI flag digit scaled by
        :data:`SSI_STEP_DBHZ`.  Returns ``None`` when the file recorded
        neither — C/N0 is genuinely unknown, not zero.
        """
        values = self.observables.get(prn)
        if values is not None:
            strength = values.get("S" + observable[1:])
            if strength is not None and strength > 0:
                return strength
        ssi = self.signal_strength.get(prn, {}).get(observable, 0)
        if ssi > 0:
            return SSI_STEP_DBHZ * ssi
        return None


@dataclass
class ObservationData:
    """A parsed observation file: header plus epoch records."""

    header: ObservationHeader
    records: List[ObservationRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)
