"""RINEX 2.11 observation file parser (GPS, code observables)."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import RinexError
from repro.rinex.types import (
    ObservationData,
    ObservationHeader,
    ObservationRecord,
    calendar_to_gps,
)

_SATS_PER_EPOCH_LINE = 12


def read_observation_file(path: Union[str, Path]) -> ObservationData:
    """Parse a RINEX 2.11 observation file.

    Supports the GPS/C1 subset the library writes plus tolerant
    handling of blank lines.  Raises :class:`RinexError` with the
    offending line number on malformed input.
    """
    lines = Path(path).read_text().splitlines()
    header, body_start = _parse_header(lines)
    records = _parse_records(lines, body_start, header)
    return ObservationData(header=header, records=records)


# ----------------------------------------------------------------------
# Header
# ----------------------------------------------------------------------
def _parse_header(lines: List[str]) -> Tuple[ObservationHeader, int]:
    marker_name: Optional[str] = None
    approx: Optional[Tuple[float, float, float]] = None
    interval = 1.0
    types: Tuple[str, ...] = ()

    for index, line in enumerate(lines):
        label = line[60:].strip()
        content = line[:60]
        if label == "RINEX VERSION / TYPE":
            version = content[:9].strip()
            if not version.startswith("2"):
                raise RinexError(f"unsupported RINEX version {version!r}")
            if "OBSERVATION" not in content:
                raise RinexError("not an observation file")
        elif label == "MARKER NAME":
            marker_name = content.strip()
        elif label == "APPROX POSITION XYZ":
            parts = content.split()
            if len(parts) != 3:
                raise RinexError(f"malformed APPROX POSITION XYZ at line {index + 1}")
            try:
                approx = (float(parts[0]), float(parts[1]), float(parts[2]))
            except ValueError as exc:
                raise RinexError(
                    f"malformed APPROX POSITION XYZ at line {index + 1}"
                ) from exc
        elif label == "INTERVAL":
            parts = content.split()
            try:
                interval = float(parts[0])
            except (IndexError, ValueError) as exc:
                raise RinexError(f"malformed INTERVAL at line {index + 1}") from exc
        elif label == "# / TYPES OF OBSERV":
            parts = content.split()
            try:
                count = int(parts[0])
            except (IndexError, ValueError) as exc:
                raise RinexError(
                    f"malformed # / TYPES OF OBSERV at line {index + 1}"
                ) from exc
            types = tuple(parts[1 : 1 + count])
            if len(types) != count:
                raise RinexError(
                    f"TYPES OF OBSERV announces {count} codes, lists {len(types)}"
                )
        elif label == "END OF HEADER":
            if marker_name is None or approx is None or not types:
                raise RinexError(
                    "observation header missing MARKER NAME, APPROX POSITION "
                    "XYZ, or # / TYPES OF OBSERV"
                )
            header = ObservationHeader(
                marker_name=marker_name,
                approx_position=approx,
                interval=interval,
                observation_types=types,
            )
            return header, index + 1

    raise RinexError("observation file has no END OF HEADER")


# ----------------------------------------------------------------------
# Body
# ----------------------------------------------------------------------
def _parse_records(
    lines: List[str], start: int, header: ObservationHeader
) -> List[ObservationRecord]:
    records: List[ObservationRecord] = []
    index = start
    type_count = len(header.observation_types)

    while index < len(lines):
        line = lines[index]
        if not line.strip():
            index += 1
            continue

        time, prns, index = _parse_epoch_line(lines, index)
        observables: Dict[int, Dict[str, float]] = {}
        signal_strength: Dict[int, Dict[str, int]] = {}
        for prn in prns:
            if index >= len(lines):
                raise RinexError(
                    f"file truncated: missing observation line for PRN {prn}"
                )
            values, ssis = _parse_observation_line(lines[index], type_count, index)
            observables[prn] = dict(zip(header.observation_types, values))
            flags = {
                code: ssi
                for code, ssi in zip(header.observation_types, ssis)
                if ssi
            }
            if flags:
                signal_strength[prn] = flags
            index += 1
        records.append(
            ObservationRecord(
                time=time,
                observables=observables,
                signal_strength=signal_strength,
            )
        )

    return records


def _parse_epoch_line(lines: List[str], index: int):
    line = lines[index]
    try:
        year = int(line[1:3])
        month = int(line[4:6])
        day = int(line[7:9])
        hour = int(line[10:12])
        minute = int(line[13:15])
        second = float(line[15:26])
        flag = int(line[26:29])
        count = int(line[29:32])
    except (ValueError, IndexError) as exc:
        raise RinexError(f"malformed epoch line {index + 1}: {line!r}") from exc
    if flag != 0:
        raise RinexError(f"epoch flag {flag} at line {index + 1} not supported")

    # Two-digit years: RINEX 2 convention (80-99 -> 1900s, else 2000s).
    full_year = 1900 + year if year >= 80 else 2000 + year
    time = calendar_to_gps(full_year, month, day, hour, minute, second)

    prns: List[int] = []
    field = line[32:]
    index += 1
    while True:
        for offset in range(0, min(len(field), 3 * _SATS_PER_EPOCH_LINE), 3):
            token = field[offset : offset + 3]
            if not token.strip():
                continue
            system, number = token[0], token[1:]
            if system not in ("G", " "):
                raise RinexError(f"unsupported satellite system {token!r}")
            try:
                prns.append(int(number))
            except ValueError as exc:
                raise RinexError(f"malformed satellite token {token!r}") from exc
        if len(prns) >= count:
            break
        if index >= len(lines):
            raise RinexError("file truncated inside an epoch satellite list")
        field = lines[index][32:]
        index += 1

    if len(prns) != count:
        raise RinexError(
            f"epoch announces {count} satellites but lists {len(prns)}"
        )
    return time, prns, index


def _parse_observation_line(
    line: str, type_count: int, index: int
) -> Tuple[List[float], List[int]]:
    """One satellite's observables plus their SSI flag digits.

    Each 16-column slot is ``F14.3`` value + LLI digit + SSI digit; a
    blank SSI column means "strength not recorded" and parses as 0.
    """
    values: List[float] = []
    ssis: List[int] = []
    for slot in range(type_count):
        field = line[slot * 16 : slot * 16 + 14]
        if not field.strip():
            raise RinexError(f"missing observable at line {index + 1}")
        try:
            values.append(float(field))
        except ValueError as exc:
            raise RinexError(
                f"malformed observable {field!r} at line {index + 1}"
            ) from exc
        flag = line[slot * 16 + 15 : slot * 16 + 16].strip()
        if flag and not flag.isdigit():
            raise RinexError(
                f"malformed SSI flag {flag!r} at line {index + 1}"
            )
        ssis.append(int(flag) if flag else 0)
    return values, ssis
