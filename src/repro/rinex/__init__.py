"""RINEX 2.11 layer: the file format the paper's data sets arrive in.

The paper downloads CORS observation data — RINEX observation files
(pseudoranges) plus navigation files (broadcast ephemerides).  Our
substitute pipeline emits the same two files from the simulator and
reads them back through an independent parser, so the code path a real
deployment would exercise (files in, epochs out) is covered end to end:

* :func:`write_observation_file` / :func:`read_observation_file` —
  L1 C/A pseudoranges (the ``C1`` observable of Table 5.1).
* :func:`write_navigation_file` / :func:`read_navigation_file` —
  broadcast ephemeris records.
* :func:`reconstruct_epochs` — the receiver-style join: evaluate the
  navigation ephemerides at the signal transmit times implied by the
  observation records to recover per-epoch satellite coordinates.
"""

from repro.rinex.types import (
    SSI_STEP_DBHZ,
    ObservationHeader,
    ObservationRecord,
    ObservationData,
    gps_to_calendar,
    calendar_to_gps,
)
from repro.rinex.obs_writer import write_observation_file
from repro.rinex.obs_reader import read_observation_file
from repro.rinex.nav_writer import write_navigation_file
from repro.rinex.nav_reader import read_navigation_file
from repro.rinex.reconstruct import reconstruct_epochs

__all__ = [
    "SSI_STEP_DBHZ",
    "ObservationHeader",
    "ObservationRecord",
    "ObservationData",
    "gps_to_calendar",
    "calendar_to_gps",
    "write_observation_file",
    "read_observation_file",
    "write_navigation_file",
    "read_navigation_file",
    "reconstruct_epochs",
]
