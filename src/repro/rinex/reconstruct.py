"""Rebuild solver-ready epochs from parsed RINEX files.

This is the receiver-style join the paper's experiments performed on
CORS data: observation records carry (time, PRN, pseudorange); the
satellite coordinates come from evaluating the navigation ephemerides
at the signal *transmit* time, which the receiver infers from the
pseudorange itself (``tau ~= rho / c``), with the Sagnac frame rotation
applied.  The result is the exact ``(satellite coordinates,
pseudorange)`` tuples the positioning equations (3-2..3-4) consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.constants import L1_WAVELENGTH, SPEED_OF_LIGHT
from repro.errors import RinexError
from repro.geodesy import elevation_azimuth
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.rinex.types import ObservationData
from repro.signals.sagnac import sagnac_rotation


def reconstruct_epochs(
    observation_data: ObservationData,
    ephemerides: List[BroadcastEphemeris],
    observable: str = "C1",
    min_satellites: int = 4,
    receiver_hint: Optional[np.ndarray] = None,
) -> List[ObservationEpoch]:
    """Join observation records with navigation data into epochs.

    Parameters
    ----------
    observation_data:
        Parsed observation file.
    ephemerides:
        Parsed navigation file (latest record wins per PRN).
    observable:
        Which code observable carries the pseudorange.
    min_satellites:
        Records with fewer usable satellites are skipped (a real
        processing chain logs and drops them too).
    receiver_hint:
        Optional approximate receiver position used to attach
        elevation/azimuth to the observations; defaults to the
        observation header's APPROX POSITION XYZ.

    Returns
    -------
    list of ObservationEpoch
        Epochs ordered as in the file, each observation carrying the
        transmit-time satellite position in the receive-time frame.
    """
    if observable not in observation_data.header.observation_types:
        raise RinexError(
            f"observable {observable!r} not in file types "
            f"{observation_data.header.observation_types}"
        )

    # Navigation files carry one record per satellite per upload; for
    # each measurement the receiver uses the record whose toe is
    # nearest the signal time (records re-issued every ~2 h).
    by_prn: Dict[int, List[BroadcastEphemeris]] = {}
    for ephemeris in ephemerides:
        by_prn.setdefault(ephemeris.prn, []).append(ephemeris)

    def nearest_record(prn: int, when) -> Optional[BroadcastEphemeris]:
        records = by_prn.get(prn)
        if not records:
            return None
        return min(records, key=lambda eph: abs(eph.time_from_toe(when)))

    if receiver_hint is None:
        receiver_hint = np.array(observation_data.header.approx_position, dtype=float)

    epochs: List[ObservationEpoch] = []
    for record in observation_data.records:
        observations: List[SatelliteObservation] = []
        for prn in record.prns:
            ephemeris = nearest_record(prn, record.time)
            if ephemeris is None:
                continue  # no ephemeris broadcast for this PRN
            pseudorange = record.observables[prn].get(observable)
            if pseudorange is None or pseudorange <= 0:
                continue

            travel_time = pseudorange / SPEED_OF_LIGHT
            transmit_time = record.time - travel_time
            position = sagnac_rotation(
                ephemeris.satellite_position(transmit_time), travel_time
            )
            elevation, azimuth = elevation_azimuth(position, receiver_hint)
            carrier_cycles = record.observables[prn].get("L1")
            observations.append(
                SatelliteObservation(
                    prn=prn,
                    position=position,
                    pseudorange=pseudorange,
                    elevation=elevation,
                    azimuth=azimuth,
                    carrier_range=(
                        carrier_cycles * L1_WAVELENGTH
                        if carrier_cycles is not None
                        else None
                    ),
                    # S1 observable when present, SSI flag digit as the
                    # coarse fallback — the lane the plausibility
                    # monitors read on real station replays.
                    cn0_dbhz=record.cn0_dbhz(prn, observable),
                )
            )

        if len(observations) < min_satellites:
            continue
        observations.sort(key=lambda obs: obs.elevation, reverse=True)
        epochs.append(
            ObservationEpoch(time=record.time, observations=tuple(observations))
        )
    return epochs
