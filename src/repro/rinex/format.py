"""Low-level RINEX field formatting helpers.

RINEX is a fixed-column FORTRAN-era format: floats use ``D`` exponent
markers in navigation files and ``F14.3`` fields in observation files,
and header labels live in columns 61-80.  Centralizing the formatting
keeps the writers readable and gives the parsers one place to match.
"""

from __future__ import annotations

from repro.errors import RinexError

#: Total line width for header lines (label starts at column 61).
HEADER_LABEL_COLUMN = 60


def header_line(content: str, label: str) -> str:
    """Compose a RINEX header line: 60 columns of content + label."""
    if len(content) > HEADER_LABEL_COLUMN:
        raise RinexError(
            f"header content for {label!r} exceeds 60 columns: {content!r}"
        )
    return f"{content:<60}{label}"


def fortran_double(value: float, width: int = 19, decimals: int = 12) -> str:
    """Format a float in FORTRAN ``D19.12`` style: `` x.xxxxxxxxxxxxD+xx``."""
    text = f"{value:{width}.{decimals}E}"
    return text.replace("E", "D")


def parse_fortran_double(text: str) -> float:
    """Parse a ``D``-exponent float (also accepts ``E`` and plain floats)."""
    cleaned = text.strip().replace("D", "E").replace("d", "E")
    if not cleaned:
        return 0.0
    try:
        return float(cleaned)
    except ValueError as exc:
        raise RinexError(f"malformed RINEX float field: {text!r}") from exc


def observation_value(value: float, ssi: int = 0) -> str:
    """Format an observable as RINEX ``F14.3`` + blank LLI + SSI flag.

    ``ssi`` is the signal-strength-indicator digit (1-9); 0 leaves the
    flag column blank (strength not recorded).
    """
    if abs(value) >= 1e10:
        raise RinexError(f"observable {value} does not fit in an F14.3 field")
    if not 0 <= ssi <= 9:
        raise RinexError(f"SSI flag {ssi} outside the RINEX 0-9 range")
    flag = str(ssi) if ssi else " "
    return f"{value:14.3f} {flag}"
