"""RINEX 2.11 observation file writer (GPS; C1, optional L1 and S1)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Union

from repro.constants import L1_WAVELENGTH
from repro.errors import RinexError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.rinex.format import header_line, observation_value
from repro.rinex.types import SSI_STEP_DBHZ, ObservationHeader, gps_to_calendar

#: Satellites per epoch-line before continuation lines are needed.
_SATS_PER_EPOCH_LINE = 12

#: Observable sets the writer knows how to emit.
_SUPPORTED_TYPE_SETS = (
    ("C1",),
    ("C1", "L1"),
    ("C1", "S1"),
    ("C1", "L1", "S1"),
)


def write_observation_file(
    path: Union[str, Path],
    header: ObservationHeader,
    epochs: Iterable[ObservationEpoch],
) -> int:
    """Write epochs as a RINEX 2.11 observation file.

    Supports the ``C1`` code pseudorange (L1 C/A — Table 5.1's "all
    measurements are based on the L1 signal") and, when the header
    lists them, the ``L1`` carrier phase in cycles and the ``S1``
    signal strength in dB-Hz.  Observations carrying a C/N0 also get
    the per-observable SSI flag digit, so strength round-trips even
    through a C1-only header (coarsely, via the flag).

    Returns the number of epoch records written.
    """
    if header.observation_types not in _SUPPORTED_TYPE_SETS:
        raise RinexError(
            f"the writer supports observation types {_SUPPORTED_TYPE_SETS}; "
            f"got {header.observation_types!r}"
        )

    lines = list(_header_lines(header))
    count = 0
    for epoch in epochs:
        lines.extend(_epoch_lines(epoch, header.observation_types))
        count += 1
    if count == 0:
        raise RinexError("refusing to write an observation file with no epochs")

    Path(path).write_text("\n".join(lines) + "\n")
    return count


def _header_lines(header: ObservationHeader):
    yield header_line(
        f"{'2.11':>9}{'':11}{'OBSERVATION DATA':<20}{'G (GPS)':<20}",
        "RINEX VERSION / TYPE",
    )
    yield header_line(
        f"{'repro':<20}{'repro-simulator':<20}{'':20}", "PGM / RUN BY / DATE"
    )
    yield header_line(f"{header.marker_name:<60}"[:60], "MARKER NAME")
    x, y, z = header.approx_position
    yield header_line(f"{x:14.4f}{y:14.4f}{z:14.4f}", "APPROX POSITION XYZ")
    yield header_line(f"{0.0:14.4f}{0.0:14.4f}{0.0:14.4f}", "ANTENNA: DELTA H/E/N")
    yield header_line(f"{1:>6}{1:>6}{0:>6}", "WAVELENGTH FACT L1/2")
    types = "".join(f"{code:>6}" for code in header.observation_types)
    yield header_line(f"{len(header.observation_types):>6}{types}", "# / TYPES OF OBSERV")
    yield header_line(f"{header.interval:10.3f}", "INTERVAL")
    yield header_line("", "END OF HEADER")


def _epoch_lines(epoch: ObservationEpoch, types):
    year, month, day, hour, minute, second = gps_to_calendar(epoch.time)
    prns = [obs.prn for obs in epoch.observations]
    if any(not 1 <= prn <= 99 for prn in prns):
        raise RinexError(f"PRN out of RINEX range in epoch: {prns}")

    satellite_field = "".join(f"G{prn:02d}" for prn in prns[:_SATS_PER_EPOCH_LINE])
    yield (
        f" {year % 100:02d} {month:2d} {day:2d} {hour:2d} {minute:2d}"
        f"{second:11.7f}  0{len(prns):3d}{satellite_field}"
    )
    # Continuation lines for epochs with more than 12 satellites.
    for start in range(_SATS_PER_EPOCH_LINE, len(prns), _SATS_PER_EPOCH_LINE):
        chunk = prns[start : start + _SATS_PER_EPOCH_LINE]
        yield " " * 32 + "".join(f"G{prn:02d}" for prn in chunk)

    for obs in epoch.observations:
        ssi = _ssi_from_cn0(obs.cn0_dbhz)
        yield "".join(
            observation_value(_observable_value(obs, code), ssi)
            for code in types
        ).rstrip()


def _ssi_from_cn0(cn0_dbhz) -> int:
    """Project a C/N0 onto the RINEX 1-9 SSI flag digit (0 = unknown)."""
    if cn0_dbhz is None:
        return 0
    return max(1, min(9, int(cn0_dbhz // SSI_STEP_DBHZ)))


def _observable_value(obs: SatelliteObservation, code: str) -> float:
    if code == "C1":
        return obs.pseudorange
    if code == "L1":
        if obs.carrier_range is None:
            raise RinexError(
                f"epoch observation for PRN {obs.prn} has no carrier phase "
                "but the header announces L1"
            )
        return obs.carrier_range / L1_WAVELENGTH  # RINEX phase is in cycles
    if code == "S1":
        if obs.cn0_dbhz is None:
            raise RinexError(
                f"epoch observation for PRN {obs.prn} has no C/N0 "
                "but the header announces S1"
            )
        return obs.cn0_dbhz
    raise RinexError(f"unsupported observable code {code!r}")
