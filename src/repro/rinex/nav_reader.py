"""RINEX 2.11 GPS navigation file parser."""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.errors import RinexError
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.rinex.format import parse_fortran_double
from repro.rinex.types import calendar_to_gps
from repro.timebase import GpsTime


def read_navigation_file(path: Union[str, Path]) -> List[BroadcastEphemeris]:
    """Parse a RINEX 2.11 GPS navigation file into ephemerides."""
    lines = Path(path).read_text().splitlines()
    body_start = _skip_header(lines)

    ephemerides: List[BroadcastEphemeris] = []
    index = body_start
    while index < len(lines):
        if not lines[index].strip():
            index += 1
            continue
        if index + 7 >= len(lines):
            raise RinexError(
                f"navigation record starting at line {index + 1} is truncated"
            )
        ephemerides.append(_parse_record(lines[index : index + 8], index))
        index += 8
    return ephemerides


def _skip_header(lines: List[str]) -> int:
    for index, line in enumerate(lines):
        label = line[60:].strip()
        if index == 0:
            if "N" not in line[:40].upper() or not line[:9].strip().startswith("2"):
                raise RinexError("not a RINEX 2.x GPS navigation file")
        if label == "END OF HEADER":
            return index + 1
    raise RinexError("navigation file has no END OF HEADER")


def _parse_record(record: List[str], start_line: int) -> BroadcastEphemeris:
    line0 = record[0]
    try:
        prn = int(line0[0:2])
        year = int(line0[3:5])
        month = int(line0[6:8])
        day = int(line0[9:11])
        hour = int(line0[12:14])
        minute = int(line0[15:17])
        second = float(line0[17:22])
    except (ValueError, IndexError) as exc:
        raise RinexError(
            f"malformed navigation epoch line {start_line + 1}: {line0!r}"
        ) from exc
    full_year = 1900 + year if year >= 80 else 2000 + year
    toc = calendar_to_gps(full_year, month, day, hour, minute, second)

    af0 = parse_fortran_double(line0[22:41])
    af1 = parse_fortran_double(line0[41:60])
    af2 = parse_fortran_double(line0[60:79])

    fields = []
    for offset, line in enumerate(record[1:], start=1):
        for slot in range(4):
            fields.append(parse_fortran_double(line[3 + slot * 19 : 3 + (slot + 1) * 19]))
    if len(fields) != 28:
        raise RinexError(
            f"navigation record at line {start_line + 1} has {len(fields)} orbit fields"
        )

    (
        _iode, crs, delta_n, m0,
        cuc, eccentricity, cus, sqrt_a,
        toe_sow, cic, omega0, cis,
        i0, crc, omega, omega_dot,
        idot, _codes_l2, week, _l2p,
        _accuracy, _health, _tgd, _iodc,
        _transmit_time, fit_hours, _spare1, _spare2,
    ) = fields

    toe = GpsTime(week=int(week), seconds_of_week=toe_sow)
    return BroadcastEphemeris(
        prn=prn,
        toe=toe,
        sqrt_a=sqrt_a,
        eccentricity=eccentricity,
        i0=i0,
        omega0=omega0,
        omega=omega,
        m0=m0,
        delta_n=delta_n,
        omega_dot=omega_dot,
        idot=idot,
        cuc=cuc,
        cus=cus,
        crc=crc,
        crs=crs,
        cic=cic,
        cis=cis,
        af0=af0,
        af1=af1,
        af2=af2,
        toc=toc,
        fit_interval_seconds=(fit_hours if fit_hours > 0 else 4.0) * 3600.0,
    )
