"""Saastamoinen tropospheric delay model.

The troposphere delays GPS signals by ~2.3 m at zenith and tens of
meters at low elevation.  The Saastamoinen model computes the zenith
hydrostatic + wet delay from surface meteorology and maps it down to
the satellite elevation.  Like the ionospheric model, it serves both
the simulator (delay injection) and the receiver (correction); the
mismatch between assumed and "true" meteorology leaves a realistic
residual error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SaastamoinenModel:
    """Saastamoinen zenith delay with a cosecant-style mapping.

    Attributes
    ----------
    pressure_hpa:
        Surface total pressure in hPa.
    temperature_k:
        Surface temperature in Kelvin.
    relative_humidity:
        Surface relative humidity in ``[0, 1]``.
    """

    pressure_hpa: float = 1013.25
    temperature_k: float = 288.15
    relative_humidity: float = 0.5

    def __post_init__(self) -> None:
        if self.pressure_hpa <= 0:
            raise ConfigurationError("pressure_hpa must be positive")
        if self.temperature_k <= 0:
            raise ConfigurationError("temperature_k must be positive (Kelvin)")
        if not 0.0 <= self.relative_humidity <= 1.0:
            raise ConfigurationError("relative_humidity must be in [0, 1]")

    def water_vapor_pressure_hpa(self) -> float:
        """Partial water-vapor pressure (hPa) from humidity and temperature."""
        celsius = self.temperature_k - 273.15
        saturation = 6.108 * math.exp(17.15 * celsius / (234.7 + celsius))
        return self.relative_humidity * saturation

    def zenith_delay_meters(self, height_m: float = 0.0) -> float:
        """Total (hydrostatic + wet) zenith delay in meters.

        ``height_m`` is the receiver's ellipsoidal height; pressure is
        reduced with a standard-atmosphere exponential scale height.
        """
        pressure = self.pressure_hpa * math.exp(-height_m / 8434.0)
        e = self.water_vapor_pressure_hpa()
        return 0.002277 * (pressure + (1255.0 / self.temperature_k + 0.05) * e)

    def delay_meters(self, elevation: float, height_m: float = 0.0) -> float:
        """Slant tropospheric delay (meters) at a satellite elevation.

        Elevations at or below 3 degrees are clamped — the simple
        mapping function diverges at the horizon and no receiver tracks
        that low anyway (the library's default elevation mask is 10
        degrees).
        """
        min_elevation = math.radians(3.0)
        clamped = max(elevation, min_elevation)
        zenith = self.zenith_delay_meters(height_m)
        # Simple but accurate-above-the-mask mapping: 1/sin(el) with the
        # Saastamoinen low-elevation correction term.
        sin_el = math.sin(clamped)
        return zenith / sin_el
