"""Atmospheric propagation delays: ionosphere and troposphere.

These models produce the satellite-dependent error term the paper calls
``epsilon_i^S`` (eq. 3-5): signal delays that vary per satellite with
elevation, local time, and geometry.
"""

from repro.atmosphere.klobuchar import KlobucharModel
from repro.atmosphere.troposphere import SaastamoinenModel

__all__ = ["KlobucharModel", "SaastamoinenModel"]
