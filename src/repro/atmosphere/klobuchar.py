"""Klobuchar broadcast ionospheric delay model.

The single-frequency L1 measurements of the paper's data sets (Table
5.1) carry ionospheric delay that the receiver can only partially
correct.  GPS broadcasts eight Klobuchar coefficients (alpha0..3,
beta0..3) for exactly this purpose; the model below implements the
standard IS-GPS-200 user algorithm and is used both to *inject* the
delay in the signal simulator and (optionally, with the same or
different coefficients) to *correct* it on the receiver side — the
residual between the two is the realistic un-modeled error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError
from repro.timebase import GpsTime

#: A representative mid-solar-cycle broadcast coefficient set.
_DEFAULT_ALPHA = (1.1176e-8, 7.4506e-9, -5.9605e-8, -5.9605e-8)
_DEFAULT_BETA = (90112.0, 16384.0, -196608.0, -196608.0)

#: The semi-circle unit used throughout the broadcast model.
_SC = math.pi  # radians per semicircle


@dataclass(frozen=True)
class KlobucharModel:
    """IS-GPS-200 single-frequency ionospheric model.

    Attributes
    ----------
    alpha:
        Amplitude coefficients (s, s/sc, s/sc^2, s/sc^3).
    beta:
        Period coefficients (s, s/sc, s/sc^2, s/sc^3).
    """

    alpha: Tuple[float, float, float, float] = field(default=_DEFAULT_ALPHA)
    beta: Tuple[float, float, float, float] = field(default=_DEFAULT_BETA)

    def __post_init__(self) -> None:
        if len(self.alpha) != 4 or len(self.beta) != 4:
            raise ConfigurationError("alpha and beta must each have 4 coefficients")

    def delay_seconds(
        self,
        receiver_latitude: float,
        receiver_longitude: float,
        elevation: float,
        azimuth: float,
        time: GpsTime,
    ) -> float:
        """L1 ionospheric delay in **seconds**.

        Parameters are geodetic receiver latitude/longitude (radians),
        satellite elevation/azimuth (radians), and the GPS time (used
        for the local time of the ionospheric pierce point).
        """
        # Work in semicircles, as the broadcast model specifies.
        el_sc = max(elevation, 0.0) / _SC
        lat_sc = receiver_latitude / _SC
        lon_sc = receiver_longitude / _SC

        # Earth-centred angle to the ionospheric pierce point.
        psi = 0.0137 / (el_sc + 0.11) - 0.022

        # Pierce-point latitude, clamped as specified.
        phi_i = lat_sc + psi * math.cos(azimuth)
        phi_i = min(max(phi_i, -0.416), 0.416)

        # Pierce-point longitude and geomagnetic latitude.
        lambda_i = lon_sc + psi * math.sin(azimuth) / math.cos(phi_i * _SC)
        phi_m = phi_i + 0.064 * math.cos((lambda_i - 1.617) * _SC)

        # Local time at the pierce point.
        t = 43200.0 * lambda_i + time.seconds_of_week % 86400.0
        t = t % 86400.0

        # Slant factor.
        slant = 1.0 + 16.0 * (0.53 - el_sc) ** 3

        # Amplitude and period of the cosine model.
        amplitude = sum(a * phi_m**n for n, a in enumerate(self.alpha))
        amplitude = max(amplitude, 0.0)
        period = sum(b * phi_m**n for n, b in enumerate(self.beta))
        period = max(period, 72000.0)

        x = 2.0 * math.pi * (t - 50400.0) / period
        if abs(x) < 1.57:
            delay = slant * (5e-9 + amplitude * (1.0 - x * x / 2.0 + x**4 / 24.0))
        else:
            delay = slant * 5e-9
        return delay

    def delay_meters(
        self,
        receiver_latitude: float,
        receiver_longitude: float,
        elevation: float,
        azimuth: float,
        time: GpsTime,
    ) -> float:
        """L1 ionospheric delay in **meters**."""
        return SPEED_OF_LIGHT * self.delay_seconds(
            receiver_latitude, receiver_longitude, elevation, azimuth, time
        )
