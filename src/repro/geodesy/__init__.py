"""Geodetic substrate: WGS-84 ellipsoid and coordinate transforms."""

from repro.geodesy.ellipsoid import Ellipsoid, WGS84
from repro.geodesy.transforms import (
    geodetic_to_ecef,
    ecef_to_geodetic,
    ecef_to_enu_matrix,
    ecef_to_enu,
    enu_to_ecef,
)
from repro.geodesy.angles import elevation_azimuth, elevation_angle

__all__ = [
    "Ellipsoid",
    "WGS84",
    "geodetic_to_ecef",
    "ecef_to_geodetic",
    "ecef_to_enu_matrix",
    "ecef_to_enu",
    "enu_to_ecef",
    "elevation_azimuth",
    "elevation_angle",
]
