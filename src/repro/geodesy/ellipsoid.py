"""Reference ellipsoid definitions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import WGS84_FLATTENING, WGS84_SEMI_MAJOR_AXIS
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Ellipsoid:
    """An oblate reference ellipsoid, described by ``a`` and ``f``.

    Attributes
    ----------
    semi_major_axis:
        Equatorial radius ``a`` in meters.
    flattening:
        Flattening ``f = (a - b) / a`` (dimensionless, ``0 <= f < 1``).
    """

    semi_major_axis: float
    flattening: float

    def __post_init__(self) -> None:
        if self.semi_major_axis <= 0:
            raise ConfigurationError("semi_major_axis must be positive")
        if not 0.0 <= self.flattening < 1.0:
            raise ConfigurationError("flattening must be in [0, 1)")

    @property
    def semi_minor_axis(self) -> float:
        """Polar radius ``b = a (1 - f)`` in meters."""
        return self.semi_major_axis * (1.0 - self.flattening)

    @property
    def eccentricity_squared(self) -> float:
        """First eccentricity squared ``e^2 = f (2 - f)``."""
        return self.flattening * (2.0 - self.flattening)

    @property
    def second_eccentricity_squared(self) -> float:
        """Second eccentricity squared ``e'^2 = e^2 / (1 - e^2)``."""
        e2 = self.eccentricity_squared
        return e2 / (1.0 - e2)

    def prime_vertical_radius(self, sin_latitude: float) -> float:
        """Radius of curvature in the prime vertical, ``N(phi)``."""
        e2 = self.eccentricity_squared
        return self.semi_major_axis / (1.0 - e2 * sin_latitude * sin_latitude) ** 0.5


#: The WGS-84 ellipsoid used throughout GPS processing.
WGS84 = Ellipsoid(
    semi_major_axis=WGS84_SEMI_MAJOR_AXIS,
    flattening=WGS84_FLATTENING,
)
