"""Coordinate transforms between ECEF, geodetic, and local ENU frames.

The paper works exclusively in earth-centered earth-fixed (ECEF)
coordinates (Table 5.1 lists station positions in ECEF), but the
substrate needs geodetic coordinates for the atmospheric models and the
elevation-mask visibility test, and local ENU for reporting
horizontal/vertical error components.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.geodesy.ellipsoid import Ellipsoid, WGS84
from repro.utils.validation import require_shape


def geodetic_to_ecef(
    latitude: float,
    longitude: float,
    height: float,
    ellipsoid: Ellipsoid = WGS84,
) -> np.ndarray:
    """Convert geodetic coordinates to an ECEF vector.

    Parameters
    ----------
    latitude, longitude:
        Geodetic latitude and longitude in **radians**.
    height:
        Height above the ellipsoid in meters.

    Returns
    -------
    numpy.ndarray
        ECEF ``[x, y, z]`` in meters.
    """
    sin_lat = math.sin(latitude)
    cos_lat = math.cos(latitude)
    n = ellipsoid.prime_vertical_radius(sin_lat)
    e2 = ellipsoid.eccentricity_squared
    x = (n + height) * cos_lat * math.cos(longitude)
    y = (n + height) * cos_lat * math.sin(longitude)
    z = (n * (1.0 - e2) + height) * sin_lat
    return np.array([x, y, z], dtype=float)


def ecef_to_geodetic(
    ecef: np.ndarray,
    ellipsoid: Ellipsoid = WGS84,
) -> Tuple[float, float, float]:
    """Convert an ECEF vector to geodetic ``(latitude, longitude, height)``.

    Uses Bowring's iteration, which converges to sub-millimeter height
    accuracy in a handful of iterations everywhere on and near the earth
    surface (and remains stable at GPS orbit altitude).

    Returns
    -------
    tuple
        ``(latitude_rad, longitude_rad, height_m)``.
    """
    vector = require_shape("ecef", ecef, (3,))
    x, y, z = vector
    longitude = math.atan2(y, x)
    p = math.hypot(x, y)
    e2 = ellipsoid.eccentricity_squared

    if p < 1e-9:
        # On the polar axis the longitude is arbitrary and the latitude
        # is exactly +/- 90 degrees.
        latitude = math.copysign(math.pi / 2.0, z)
        height = abs(z) - ellipsoid.semi_minor_axis
        return latitude, longitude, height

    # Bowring's initial guess via the parametric latitude.
    latitude = math.atan2(z, p * (1.0 - e2))
    for _ in range(10):
        sin_lat = math.sin(latitude)
        n = ellipsoid.prime_vertical_radius(sin_lat)
        height = p / math.cos(latitude) - n
        new_latitude = math.atan2(z, p * (1.0 - e2 * n / (n + height)))
        if abs(new_latitude - latitude) < 1e-14:
            latitude = new_latitude
            break
        latitude = new_latitude

    sin_lat = math.sin(latitude)
    n = ellipsoid.prime_vertical_radius(sin_lat)
    height = p / math.cos(latitude) - n
    return latitude, longitude, height


def ecef_to_enu_matrix(latitude: float, longitude: float) -> np.ndarray:
    """Rotation matrix taking ECEF deltas into the local ENU frame
    anchored at the given geodetic latitude/longitude (radians)."""
    sin_lat, cos_lat = math.sin(latitude), math.cos(latitude)
    sin_lon, cos_lon = math.sin(longitude), math.cos(longitude)
    return np.array(
        [
            [-sin_lon, cos_lon, 0.0],
            [-sin_lat * cos_lon, -sin_lat * sin_lon, cos_lat],
            [cos_lat * cos_lon, cos_lat * sin_lon, sin_lat],
        ],
        dtype=float,
    )


def ecef_to_enu(
    target_ecef: np.ndarray,
    origin_ecef: np.ndarray,
    ellipsoid: Ellipsoid = WGS84,
) -> np.ndarray:
    """Express ``target`` in the ENU frame anchored at ``origin`` (both ECEF)."""
    target = require_shape("target_ecef", target_ecef, (3,))
    origin = require_shape("origin_ecef", origin_ecef, (3,))
    latitude, longitude, _height = ecef_to_geodetic(origin, ellipsoid)
    rotation = ecef_to_enu_matrix(latitude, longitude)
    return rotation @ (target - origin)


def enu_to_ecef(
    enu: np.ndarray,
    origin_ecef: np.ndarray,
    ellipsoid: Ellipsoid = WGS84,
) -> np.ndarray:
    """Inverse of :func:`ecef_to_enu`."""
    local = require_shape("enu", enu, (3,))
    origin = require_shape("origin_ecef", origin_ecef, (3,))
    latitude, longitude, _height = ecef_to_geodetic(origin, ellipsoid)
    rotation = ecef_to_enu_matrix(latitude, longitude)
    return origin + rotation.T @ local
