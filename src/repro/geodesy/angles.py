"""Line-of-sight geometry: elevation and azimuth of a satellite."""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.geodesy.ellipsoid import Ellipsoid, WGS84
from repro.geodesy.transforms import ecef_to_enu


def elevation_azimuth(
    satellite_ecef: np.ndarray,
    receiver_ecef: np.ndarray,
    ellipsoid: Ellipsoid = WGS84,
) -> Tuple[float, float]:
    """Elevation and azimuth (radians) of a satellite seen from a receiver.

    Azimuth is measured clockwise from geodetic north, in ``[0, 2*pi)``.
    Elevation is measured from the local horizontal plane, in
    ``[-pi/2, pi/2]``; negative values mean the satellite is below the
    horizon (occluded by the earth for a ground receiver).
    """
    enu = ecef_to_enu(satellite_ecef, receiver_ecef, ellipsoid)
    east, north, up = enu
    horizontal = math.hypot(east, north)
    elevation = math.atan2(up, horizontal)
    azimuth = math.atan2(east, north) % (2.0 * math.pi)
    return elevation, azimuth


def elevation_angle(
    satellite_ecef: np.ndarray,
    receiver_ecef: np.ndarray,
    ellipsoid: Ellipsoid = WGS84,
) -> float:
    """Elevation only; convenience wrapper over :func:`elevation_azimuth`."""
    elevation, _azimuth = elevation_azimuth(satellite_ecef, receiver_ecef, ellipsoid)
    return elevation
