"""Numeric helpers used across the geometry and orbit code."""

from __future__ import annotations

import math

import numpy as np


def wrap_angle(angle: float) -> float:
    """Wrap an angle in radians into the interval ``(-pi, pi]``.

    Keeping anomalies and longitudes wrapped avoids precision loss when
    orbital angles accumulate over a 24-hour simulated span.
    """
    wrapped = math.fmod(angle, 2.0 * math.pi)
    if wrapped > math.pi:
        wrapped -= 2.0 * math.pi
    elif wrapped <= -math.pi:
        wrapped += 2.0 * math.pi
    return wrapped


def safe_norm(vector: np.ndarray) -> float:
    """Euclidean norm computed in a way that never returns exactly zero
    for a nonzero input and never raises for well-formed input."""
    return float(np.linalg.norm(np.asarray(vector, dtype=float)))


def unit_vector(vector: np.ndarray) -> np.ndarray:
    """Return ``vector / ||vector||``.

    Raises ``ZeroDivisionError`` for the zero vector, which is always a
    logic error at the call sites (a satellite coincident with the
    receiver), so we surface it rather than silently returning NaNs.
    """
    array = np.asarray(vector, dtype=float)
    norm = float(np.linalg.norm(array))
    if norm == 0.0:
        raise ZeroDivisionError("cannot normalize the zero vector")
    return array / norm
