"""Lightweight summary statistics for evaluation reports.

The evaluation harness aggregates thousands of per-epoch measurements
(position errors, solve latencies).  This module gives it a single
well-tested summary container instead of ad-hoc numpy calls scattered
through report code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SummaryStats:
    """Summary of a one-dimensional sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.6g} std={self.std:.6g} "
            f"min={self.minimum:.6g} p50={self.p50:.6g} "
            f"p95={self.p95:.6g} max={self.maximum:.6g}"
        )


def percentile(values: Iterable[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``values``."""
    data = _as_sample(values)
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile q must be in [0, 100], got {q}")
    return float(np.percentile(data, q))


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over a non-empty finite sample."""
    data = _as_sample(values)
    return SummaryStats(
        count=int(data.size),
        mean=float(np.mean(data)),
        std=float(np.std(data)),
        minimum=float(np.min(data)),
        p50=float(np.percentile(data, 50.0)),
        p95=float(np.percentile(data, 95.0)),
        maximum=float(np.max(data)),
    )


def _as_sample(values: Iterable[float]) -> np.ndarray:
    data: List[float] = [float(v) for v in values]
    if not data:
        raise ConfigurationError("cannot summarize an empty sample")
    array = np.asarray(data, dtype=float)
    if not np.all(np.isfinite(array)):
        raise ConfigurationError("sample contains non-finite values")
    return array
