"""Small shared helpers: validation, numeric utilities, statistics."""

from repro.utils.validation import (
    require_finite_array,
    require_positive,
    require_in_range,
    require_shape,
)
from repro.utils.mathutil import (
    wrap_angle,
    unit_vector,
    safe_norm,
)
from repro.utils.stats import (
    SummaryStats,
    summarize,
    percentile,
)

__all__ = [
    "require_finite_array",
    "require_positive",
    "require_in_range",
    "require_shape",
    "wrap_angle",
    "unit_vector",
    "safe_norm",
    "SummaryStats",
    "summarize",
    "percentile",
]
