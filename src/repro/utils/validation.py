"""Argument validation helpers.

These raise :class:`repro.errors.ConfigurationError` with messages that
name the offending parameter, so misuse is caught at the API boundary
instead of surfacing as a numpy broadcasting error deep inside a solver.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.errors import ConfigurationError

Number = Union[int, float]


def require_positive(name: str, value: Number) -> float:
    """Return ``value`` as a float after checking it is finite and > 0."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ConfigurationError(f"{name} must be a positive finite number, got {value!r}")
    return value


def require_in_range(name: str, value: Number, low: Number, high: Number) -> float:
    """Return ``value`` as a float after checking ``low <= value <= high``."""
    value = float(value)
    if not np.isfinite(value) or value < low or value > high:
        raise ConfigurationError(
            f"{name} must be within [{low}, {high}], got {value!r}"
        )
    return value


def require_finite_array(name: str, value: object) -> np.ndarray:
    """Return ``value`` as a float ndarray after checking all entries are finite."""
    array = np.asarray(value, dtype=float)
    if array.size == 0:
        raise ConfigurationError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise ConfigurationError(f"{name} must contain only finite values")
    return array


def require_shape(name: str, value: object, shape: Sequence[int]) -> np.ndarray:
    """Return ``value`` as a finite float ndarray with exactly ``shape``.

    A dimension given as ``-1`` matches any size, mirroring the reshape
    convention.
    """
    array = require_finite_array(name, value)
    expected = tuple(shape)
    if array.ndim != len(expected):
        raise ConfigurationError(
            f"{name} must have {len(expected)} dimensions, got {array.ndim}"
        )
    for axis, (actual, wanted) in enumerate(zip(array.shape, expected)):
        if wanted != -1 and actual != wanted:
            raise ConfigurationError(
                f"{name} has shape {array.shape}, expected {expected} (axis {axis})"
            )
    return array
