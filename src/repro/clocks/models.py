"""Receiver clock bias models (the simulator's ground truth).

Section 5.2.2 of the paper distinguishes two ways observation stations
keep their clocks honest:

* **steering** — a control loop continuously nudges the oscillator so
  the bias stays within a small band of standard time; the residual
  behaviour is a small offset plus a small residual drift.
* **threshold** — the clock free-runs (bias grows with the oscillator
  drift) and is stepped back whenever the bias reaches a pre-set
  threshold, producing a sawtooth.

Both are captured by the paper's linear model ``dt = D + r t`` between
adjustment events.  The models below are *deterministic functions of
time* so every simulated data set is exactly reproducible; stochastic
measurement noise lives in the signal simulator instead.  An optional
sinusoidal *wander* term models the slow un-modeled oscillator
variations that make real linear prediction imperfect — without it the
paper's predictor would be exact and DLO/DLG would look unrealistically
good.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.timebase import GpsTime


class ReceiverClockModel(ABC):
    """Interface: the receiver clock's true bias as a function of time."""

    @abstractmethod
    def bias_seconds(self, time: GpsTime) -> float:
        """True clock bias ``dt`` (seconds, positive = receiver clock fast)
        at GPS time ``time``."""

    def drift_rate(self, time: GpsTime, half_step: float = 0.5) -> float:
        """Instantaneous clock drift (s/s) by symmetric differencing.

        Drives the Doppler observable: the receiver's frequency error
        biases every measured range rate by ``c * drift``.  The numeric
        derivative handles the wander term and is exact for the linear
        segments; at a threshold-clock reset instant it is meaningless
        for one sample, like the physical Doppler glitch it models.
        """
        before = self.bias_seconds(time - half_step)
        after = self.bias_seconds(time + half_step)
        return (after - before) / (2.0 * half_step)

    @property
    @abstractmethod
    def correction_type(self) -> str:
        """Human-readable clock correction type ("Steering"/"Threshold"),
        matching the Table 5.1 column."""


@dataclass(frozen=True)
class SteeringClock(ReceiverClockModel):
    """A steered receiver clock.

    Attributes
    ----------
    epoch:
        Time origin for the linear model (``t_e = 0`` of eq. 4-3).
    offset_seconds:
        The offset ``D`` at the epoch.
    drift:
        Residual drift ``r`` in s/s (what the steering loop fails to
        cancel; typically 1e-10 or less).
    wander_amplitude_seconds, wander_period_seconds:
        Optional slow sinusoidal deviation from the linear model.
    """

    epoch: GpsTime
    offset_seconds: float = 5e-8
    drift: float = 1e-10
    wander_amplitude_seconds: float = 0.0
    wander_period_seconds: float = 7200.0

    def __post_init__(self) -> None:
        if self.wander_period_seconds <= 0:
            raise ConfigurationError("wander_period_seconds must be positive")
        if self.wander_amplitude_seconds < 0:
            raise ConfigurationError("wander_amplitude_seconds must be >= 0")

    @property
    def correction_type(self) -> str:
        return "Steering"

    def bias_seconds(self, time: GpsTime) -> float:
        dt = time.to_gps_seconds() - self.epoch.to_gps_seconds()
        bias = self.offset_seconds + self.drift * dt
        if self.wander_amplitude_seconds:
            bias += self.wander_amplitude_seconds * math.sin(
                2.0 * math.pi * dt / self.wander_period_seconds
            )
        return bias


@dataclass(frozen=True)
class ThresholdClock(ReceiverClockModel):
    """A free-running clock stepped back at a bias threshold (sawtooth).

    The bias starts at ``initial_offset_seconds``, grows at ``drift``
    s/s, and is reset to zero the instant it would reach
    ``threshold_seconds``, then grows again — the classic threshold
    adjustment sawtooth.  Negative drift mirrors the sawtooth about
    zero.

    Attributes
    ----------
    epoch:
        Time origin of the model.
    initial_offset_seconds:
        Bias at the epoch; must satisfy ``|initial| < threshold``.
    drift:
        Oscillator drift ``r`` in s/s (typically 1e-7 for a TCXO).
    threshold_seconds:
        The adjustment threshold (e.g. 1e-3 s = 1 ms, a common receiver
        convention).
    wander_amplitude_seconds, wander_period_seconds:
        Optional slow sinusoidal deviation, as for
        :class:`SteeringClock`.
    """

    epoch: GpsTime
    initial_offset_seconds: float = 0.0
    drift: float = 1e-7
    threshold_seconds: float = 1e-3
    wander_amplitude_seconds: float = 0.0
    wander_period_seconds: float = 7200.0

    def __post_init__(self) -> None:
        if self.threshold_seconds <= 0:
            raise ConfigurationError("threshold_seconds must be positive")
        if abs(self.initial_offset_seconds) >= self.threshold_seconds:
            raise ConfigurationError(
                "initial_offset_seconds must be smaller than the threshold"
            )
        if self.drift == 0.0:
            raise ConfigurationError(
                "a threshold clock needs a nonzero drift (otherwise use SteeringClock)"
            )
        if self.wander_period_seconds <= 0:
            raise ConfigurationError("wander_period_seconds must be positive")
        if self.wander_amplitude_seconds < 0:
            raise ConfigurationError("wander_amplitude_seconds must be >= 0")

    @property
    def correction_type(self) -> str:
        return "Threshold"

    def bias_seconds(self, time: GpsTime) -> float:
        dt = time.to_gps_seconds() - self.epoch.to_gps_seconds()
        raw = self.initial_offset_seconds + self.drift * dt
        # Fold the free-running bias into the sawtooth.  For positive
        # drift the bias lives in [0, threshold); for negative drift in
        # (-threshold, 0].
        if self.drift > 0:
            bias = raw % self.threshold_seconds
        else:
            bias = -((-raw) % self.threshold_seconds)
        if self.wander_amplitude_seconds:
            bias += self.wander_amplitude_seconds * math.sin(
                2.0 * math.pi * dt / self.wander_period_seconds
            )
        return bias

    def seconds_until_reset(self, time: GpsTime) -> float:
        """Time until the next threshold adjustment (ignoring wander)."""
        dt = time.to_gps_seconds() - self.epoch.to_gps_seconds()
        raw = self.initial_offset_seconds + self.drift * dt
        if self.drift > 0:
            current = raw % self.threshold_seconds
            return (self.threshold_seconds - current) / self.drift
        current = -((-raw) % self.threshold_seconds)
        return (current + self.threshold_seconds) / (-self.drift)
