"""Kalman-filter clock bias prediction.

The paper's final remarks propose "better clock bias models" as a
future extension, citing Kalman approaches ([12] Marques Filho et al.,
[33] Thomas).  This module implements the standard two-state receiver
clock filter — state ``[bias, drift]`` with the classic oscillator
process-noise model — as a drop-in :class:`ClockBiasPredictor`, so the
clock-model ablation can quantify how much the extension buys over the
paper's linear fit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.clocks.prediction import ClockBiasPredictor
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, EstimationError
from repro.timebase import GpsTime


class KalmanClockBiasPredictor(ClockBiasPredictor):
    """Two-state (bias, drift) Kalman filter over solved clock biases.

    Parameters
    ----------
    bias_process_noise:
        White-frequency-noise spectral density ``q1`` (s^2/s); drives
        the random-walk component of the bias.
    drift_process_noise:
        Random-walk-frequency spectral density ``q2`` (s^2/s^3); drives
        slow drift changes (this is what lets the filter track the
        wander the linear model cannot).
    measurement_noise_seconds:
        1-sigma of the solved-bias observations fed to
        :meth:`observe`, in seconds.
    reset_gate_seconds:
        An innovation larger than this re-initializes the bias state
        instead of being filtered — handles threshold-clock resets.
    min_observations:
        Observations required before :attr:`is_ready` turns true.
    """

    def __init__(
        self,
        bias_process_noise: float = 1e-19,
        drift_process_noise: float = 1e-22,
        measurement_noise_seconds: float = 1e-8,
        reset_gate_seconds: float = 5e-5,
        min_observations: int = 2,
    ) -> None:
        for name, value in (
            ("bias_process_noise", bias_process_noise),
            ("drift_process_noise", drift_process_noise),
            ("measurement_noise_seconds", measurement_noise_seconds),
            ("reset_gate_seconds", reset_gate_seconds),
        ):
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if min_observations < 1:
            raise ConfigurationError("min_observations must be at least 1")
        self._q1 = float(bias_process_noise)
        self._q2 = float(drift_process_noise)
        self._r = float(measurement_noise_seconds) ** 2
        self._reset_gate = float(reset_gate_seconds)
        self._min_observations = int(min_observations)

        self._state: Optional[np.ndarray] = None  # [bias_s, drift]
        self._covariance: Optional[np.ndarray] = None
        self._last_time: Optional[float] = None
        self._observation_count = 0
        self._reset_count = 0

    # ------------------------------------------------------------------
    @property
    def is_ready(self) -> bool:
        return self._observation_count >= self._min_observations

    @property
    def reset_count(self) -> int:
        """Number of innovation-gated clock resets absorbed."""
        return self._reset_count

    @property
    def state(self) -> Optional[np.ndarray]:
        """Current filter state ``[bias_seconds, drift]`` (copy)."""
        return None if self._state is None else self._state.copy()

    # ------------------------------------------------------------------
    def observe(self, time: GpsTime, bias_meters: float) -> None:
        measured = bias_meters / SPEED_OF_LIGHT
        t = time.to_gps_seconds()

        if self._state is None:
            self._state = np.array([measured, 0.0])
            self._covariance = np.diag([self._r, 1e-12])
            self._last_time = t
            self._observation_count = 1
            return

        self._propagate_to(t)
        assert self._state is not None and self._covariance is not None

        innovation = measured - self._state[0]
        if abs(innovation) > self._reset_gate:
            # Threshold-clock step: re-anchor the bias, keep the drift.
            self._state[0] = measured
            self._covariance[0, 0] = self._r
            self._covariance[0, 1] = self._covariance[1, 0] = 0.0
            self._reset_count += 1
            self._observation_count += 1
            return

        h = np.array([1.0, 0.0])
        s = float(h @ self._covariance @ h) + self._r
        gain = (self._covariance @ h) / s
        self._state = self._state + gain * innovation
        identity = np.eye(2)
        self._covariance = (identity - np.outer(gain, h)) @ self._covariance
        self._observation_count += 1

    def predict_bias_meters(self, time: GpsTime) -> float:
        if not self.is_ready or self._state is None or self._last_time is None:
            raise EstimationError(
                "Kalman clock predictor not ready "
                f"({self._observation_count}/{self._min_observations} observations)"
            )
        dt = time.to_gps_seconds() - self._last_time
        predicted = self._state[0] + self._state[1] * dt
        return SPEED_OF_LIGHT * predicted

    # ------------------------------------------------------------------
    def _propagate_to(self, t: float) -> None:
        assert (
            self._state is not None
            and self._covariance is not None
            and self._last_time is not None
        )
        dt = t - self._last_time
        if dt < 0:
            raise ConfigurationError("observations must be fed in time order")
        if dt == 0:
            return
        transition = np.array([[1.0, dt], [0.0, 1.0]])
        process = np.array(
            [
                [self._q1 * dt + self._q2 * dt**3 / 3.0, self._q2 * dt**2 / 2.0],
                [self._q2 * dt**2 / 2.0, self._q2 * dt],
            ]
        )
        self._state = transition @ self._state
        self._covariance = transition @ self._covariance @ transition.T + process
        self._last_time = t
