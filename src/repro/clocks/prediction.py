"""Receiver-side clock bias prediction (paper Sections 4.2 and 5.2.2).

The DLO/DLG algorithms need an estimate ``eps_hat_R = c * (D + r t)``
of the receiver clock bias *before* solving for position.  The paper
obtains ``D`` and ``r`` by bootstrapping from the Newton-Raphson
method's solved bias (eq. 5-4, ``D ~= eps_R / c``): a small window of
NR solutions at start-up fits the line, after which the predictor runs
open-loop.  For threshold-corrected clocks, ``D`` is re-estimated
whenever a clock reset is detected (Section 5.2.2).

All predictors speak meters at the interface (the bias as it appears in
pseudoranges) and seconds internally.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from repro.clocks.models import ReceiverClockModel
from repro.constants import SPEED_OF_LIGHT
from repro.errors import ConfigurationError, EstimationError
from repro.timebase import GpsTime


class ClockBiasPredictor(ABC):
    """Interface for receiver clock bias predictors."""

    @abstractmethod
    def observe(self, time: GpsTime, bias_meters: float) -> None:
        """Feed one solved clock bias (meters), e.g. from an NR fix."""

    @abstractmethod
    def predict_bias_meters(self, time: GpsTime) -> float:
        """Predicted receiver clock bias ``eps_hat_R`` in meters."""

    def reanchor(self, time: GpsTime, bias_meters: float) -> None:
        """Unconditionally re-align the prediction to a trusted bias.

        Called when the *caller* has independent evidence the current
        prediction is stale (e.g. the receiver's residual gate fired),
        so the predictor must not second-guess with its own jump
        heuristics.  The default delegates to :meth:`observe`;
        stateful predictors override.
        """
        self.observe(time, bias_meters)

    @property
    @abstractmethod
    def is_ready(self) -> bool:
        """Whether enough observations have been absorbed to predict."""


class ZeroClockBiasPredictor(ClockBiasPredictor):
    """Predicts a zero bias — the "no prediction" ablation baseline.

    Using this with DLO/DLG shows how badly direct linearization fails
    when the clock bias is simply ignored, which is why the paper's
    prediction model matters.
    """

    def observe(self, time: GpsTime, bias_meters: float) -> None:
        pass

    def predict_bias_meters(self, time: GpsTime) -> float:
        return 0.0

    @property
    def is_ready(self) -> bool:
        return True


class ConstantClockBiasPredictor(ClockBiasPredictor):
    """Predicts a fixed, caller-supplied bias (meters) at every epoch.

    The workhorse of differential testing: when an epoch's pseudoranges
    were synthesized with a known bias, handing DLO/DLG that exact value
    isolates the *solver* from the *clock model*, so any residual
    disagreement against NR is attributable to the linearization alone.
    """

    def __init__(self, bias_meters: float = 0.0) -> None:
        if not np.isfinite(bias_meters):
            raise ConfigurationError("bias_meters must be finite")
        self._bias_meters = float(bias_meters)

    def observe(self, time: GpsTime, bias_meters: float) -> None:
        pass

    def predict_bias_meters(self, time: GpsTime) -> float:
        return self._bias_meters

    @property
    def is_ready(self) -> bool:
        return True


class OracleClockBiasPredictor(ClockBiasPredictor):
    """Predicts the *true* bias straight from the clock model.

    Only possible in simulation; serves as the upper bound in the
    clock-model ablation (what DLO/DLG achieve with perfect clock
    knowledge).
    """

    def __init__(self, clock_model: ReceiverClockModel) -> None:
        self._clock_model = clock_model

    def observe(self, time: GpsTime, bias_meters: float) -> None:
        pass

    def predict_bias_meters(self, time: GpsTime) -> float:
        return SPEED_OF_LIGHT * self._clock_model.bias_seconds(time)

    @property
    def is_ready(self) -> bool:
        return True


class LinearClockBiasPredictor(ClockBiasPredictor):
    """The paper's linear model ``eps_hat_R = c (D + r t)`` (eq. 4-4).

    Parameters
    ----------
    mode:
        ``"steering"`` or ``"threshold"`` — the Table 5.1 clock
        correction type of the station.  Steering fits ``(D, r)`` at
        initialization and keeps *refining* the line with every further
        observation (a running least-squares over the whole history —
        the paper's "use the clock bias calculated by the NR method"
        calibration source, applied continuously; the drift estimate
        tightens as the observation baseline grows).  Threshold mode
        freezes the line after warm-up and instead watches for bias
        resets, re-estimating ``D`` when one occurs and keeping ``r`` —
        refitting across a sawtooth discontinuity would corrupt both
        parameters.
    warmup_samples:
        How many solved-bias observations to collect before fitting the
        line.  Must be at least 2 (a line has two parameters).
    reset_jump_threshold_seconds:
        For threshold mode: an observation deviating from the
        prediction by more than this is treated as a clock reset.
        The default (50 microseconds) sits far above normal prediction
        error and far below the common 1 ms adjustment step.
    """

    def __init__(
        self,
        mode: str = "steering",
        warmup_samples: int = 30,
        reset_jump_threshold_seconds: float = 5e-5,
    ) -> None:
        if mode not in ("steering", "threshold"):
            raise ConfigurationError(
                f"mode must be 'steering' or 'threshold', got {mode!r}"
            )
        if warmup_samples < 2:
            raise ConfigurationError("warmup_samples must be at least 2")
        if reset_jump_threshold_seconds <= 0:
            raise ConfigurationError("reset_jump_threshold_seconds must be positive")
        self._mode = mode
        self._warmup_samples = int(warmup_samples)
        self._reset_jump = float(reset_jump_threshold_seconds)
        self._window: List[Tuple[float, float]] = []  # (gps_seconds, bias_s)
        self._origin: Optional[float] = None  # gps_seconds of t_e = 0
        self._offset: Optional[float] = None  # D (seconds)
        self._drift: Optional[float] = None  # r (s/s)
        self._reset_count = 0
        # Running regression sums for steering-mode refinement
        # (x = seconds since origin, y = bias seconds).
        self._n = 0
        self._sum_x = 0.0
        self._sum_y = 0.0
        self._sum_xx = 0.0
        self._sum_xy = 0.0

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """The configured clock correction mode."""
        return self._mode

    @property
    def is_ready(self) -> bool:
        return self._offset is not None

    @property
    def offset_seconds(self) -> Optional[float]:
        """The fitted offset ``D`` (seconds), or ``None`` before warmup."""
        return self._offset

    @property
    def drift(self) -> Optional[float]:
        """The fitted drift ``r`` (s/s), or ``None`` before warmup."""
        return self._drift

    @property
    def reset_count(self) -> int:
        """How many clock resets have been detected (threshold mode)."""
        return self._reset_count

    # ------------------------------------------------------------------
    def observe(self, time: GpsTime, bias_meters: float) -> None:
        bias_seconds = bias_meters / SPEED_OF_LIGHT
        t = time.to_gps_seconds()

        if not self.is_ready:
            self._window.append((t, bias_seconds))
            if len(self._window) >= self._warmup_samples:
                self._fit_window()
            return

        if self._mode == "threshold":
            predicted = self._predict_seconds(t)
            if abs(bias_seconds - predicted) > self._reset_jump:
                # Clock reset: keep the drift, move the line so it
                # passes through the fresh observation (eq. 5-4).
                assert self._origin is not None and self._drift is not None
                self._offset = bias_seconds - self._drift * (t - self._origin)
                self._reset_count += 1
            return

        # Steering mode: fold the observation into the running
        # regression and refit (the drift estimate sharpens as the
        # time baseline grows — crucial for long open-loop spans).
        self._accumulate(t, bias_seconds)
        self._refit_from_sums()

    def reanchor(self, time: GpsTime, bias_meters: float) -> None:
        """Move the line through a trusted bias, keeping the drift.

        Unlike :meth:`observe`, no jump-size heuristic applies: a
        threshold-clock reset step exactly at (or below) the detection
        threshold still gets corrected when the caller's own evidence
        demands it.  In steering mode (no resets by construction) the
        observation simply joins the running regression.
        """
        if not self.is_ready or self._mode != "threshold":
            self.observe(time, bias_meters)
            return
        bias_seconds = bias_meters / SPEED_OF_LIGHT
        t = time.to_gps_seconds()
        assert self._origin is not None and self._drift is not None
        self._offset = bias_seconds - self._drift * (t - self._origin)
        self._reset_count += 1

    def predict_bias_meters(self, time: GpsTime) -> float:
        if not self.is_ready:
            raise EstimationError(
                "clock bias predictor is still warming up "
                f"({len(self._window)}/{self._warmup_samples} samples); "
                "solve with NR and feed the bias via observe() first"
            )
        return SPEED_OF_LIGHT * self._predict_seconds(time.to_gps_seconds())

    # ------------------------------------------------------------------
    def _predict_seconds(self, gps_seconds: float) -> float:
        assert (
            self._origin is not None
            and self._offset is not None
            and self._drift is not None
        )
        return self._offset + self._drift * (gps_seconds - self._origin)

    def _fit_window(self) -> None:
        """Least-squares fit of the line through the warmup window."""
        times = np.array([t for t, _b in self._window])
        biases = np.array([b for _t, b in self._window])
        self._origin = float(times[0])
        for t, b in zip(times, biases):
            self._accumulate(float(t), float(b))
        self._refit_from_sums()
        if self._offset is None:
            # Defensive: _refit_from_sums always sets it for n >= 1.
            self._offset = float(np.mean(biases))
            self._drift = 0.0
        self._window.clear()

    def _accumulate(self, gps_seconds: float, bias_seconds: float) -> None:
        assert self._origin is not None or not self._n
        if self._origin is None:
            self._origin = gps_seconds
        x = gps_seconds - self._origin
        self._n += 1
        self._sum_x += x
        self._sum_y += bias_seconds
        self._sum_xx += x * x
        self._sum_xy += x * bias_seconds

    def _refit_from_sums(self) -> None:
        """Closed-form line fit from the running sums."""
        n = self._n
        if n == 0:
            return
        denominator = n * self._sum_xx - self._sum_x * self._sum_x
        if denominator <= 0.0 or n < 2:
            # All observations at one instant: constant-offset model.
            self._offset = self._sum_y / n
            self._drift = 0.0
            return
        drift = (n * self._sum_xy - self._sum_x * self._sum_y) / denominator
        self._drift = drift
        self._offset = (self._sum_y - drift * self._sum_x) / n
