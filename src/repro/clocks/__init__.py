"""Receiver clock substrate: bias models and bias prediction.

The paper's key enabling assumption (Section 4.2) is that a GPS
receiver's clock bias is *predictable*: ``dt_hat = D + r * t`` with an
offset ``D`` and a constant drift ``r``.  This package provides

* the clock *models* that generate the truth bias for the simulator —
  the **steering** and **threshold** behaviours named in Table 5.1 —
* the *predictors* that estimate ``(D, r)`` on the receiver side the way
  Section 5.2.2 prescribes (bootstrap from NR-derived bias, eq. 5-4),
  plus a Kalman-filter predictor implementing the paper's second
  future-work extension.
"""

from repro.clocks.models import (
    ReceiverClockModel,
    SteeringClock,
    ThresholdClock,
)
from repro.clocks.prediction import (
    ClockBiasPredictor,
    ConstantClockBiasPredictor,
    LinearClockBiasPredictor,
    OracleClockBiasPredictor,
    ZeroClockBiasPredictor,
)
from repro.clocks.kalman import KalmanClockBiasPredictor

__all__ = [
    "ReceiverClockModel",
    "SteeringClock",
    "ThresholdClock",
    "ClockBiasPredictor",
    "ConstantClockBiasPredictor",
    "LinearClockBiasPredictor",
    "OracleClockBiasPredictor",
    "ZeroClockBiasPredictor",
    "KalmanClockBiasPredictor",
]
