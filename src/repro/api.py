"""repro.api — the unified solver facade.

One frozen :class:`SolverConfig` value subsumes the seven scattered
solver constructors (:class:`~repro.solvers.NewtonRaphsonSolver`,
:class:`~repro.solvers.DLOSolver`, :class:`~repro.solvers.DLGSolver`,
:class:`~repro.solvers.BancroftSolver` and the batch trio): pick the
algorithm, tune it, and hand the *value* around — the service, the
CLI, the validation oracles, and the benchmarks all consume it, so
"which solver, configured how" travels as data instead of as seven
call-site-specific constructor signatures.

Entry points::

    from repro.api import SolverConfig, solve

    fix = solve(epoch)                          # default: DLG
    fix = solve(epoch, "nr")                    # algorithm shorthand
    fix = solve(epoch, SolverConfig(algorithm="dlg", clock_bias_meters=35.0))

    config = SolverConfig(algorithm="nr", tolerance_meters=1e-5)
    solver = config.build_solver()              # reusable scalar solver
    batch = config.build_batch_solver()         # reusable batch solver
    positions = solve_batch(epochs, config)     # (N, 3) stacked solve

Design rules:

* **Frozen value semantics.**  A ``SolverConfig`` never mutates;
  derive variants with :func:`dataclasses.replace` (the service builds
  its NR degradation ladder exactly that way).
* **Ignored is documented, contradictory is an error.**  Knobs that do
  not apply to the chosen algorithm are *ignored* when harmless (NR
  tuning on a DLG config also parameterizes any NR fallback built from
  the same config) but *rejected* when contradictory (two clock-bias
  sources at once, batched Bancroft).
* **Back-compat.**  The solver classes stay public in
  :mod:`repro.solvers` (re-exported by :mod:`repro.core`); only the
  deep ``repro.core.<solver module>`` import paths are deprecated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.clocks.prediction import ClockBiasPredictor, ConstantClockBiasPredictor
from repro.core.base import PositioningAlgorithm
from repro.core.selection import BaseSatelliteSelector
from repro.core.types import PositionFix
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch
from repro.solvers import (
    BancroftSolver,
    BatchDLGSolver,
    BatchDLOSolver,
    BatchNewtonRaphsonSolver,
    DLGSolver,
    DLOSolver,
    NewtonRaphsonSolver,
)

#: Algorithms a :class:`SolverConfig` can name.
ALGORITHMS: Tuple[str, ...] = ("nr", "dlo", "dlg", "bancroft")

#: Algorithms with a batched implementation (Bancroft has none).
BATCH_ALGORITHMS: Tuple[str, ...] = ("nr", "dlo", "dlg")


@dataclass(frozen=True)
class SolverConfig:
    """Everything needed to build any solver path, as one frozen value.

    Attributes
    ----------
    algorithm:
        ``"nr"``, ``"dlo"``, ``"dlg"`` (the paper's algorithms) or
        ``"bancroft"`` (the classic closed-form comparator).
    clock_bias_meters:
        Known receiver clock bias (meters) handed to DLO/DLG as a
        fixed :class:`~repro.clocks.ConstantClockBiasPredictor`.
        Ignored by NR and Bancroft, which solve their own bias.
        Mutually exclusive with ``clock_predictor``.
    clock_predictor:
        A live bias predictor for DLO/DLG (e.g. a warmed-up
        :class:`~repro.clocks.LinearClockBiasPredictor`).  Ignored by
        NR and Bancroft.
    base_selector:
        Base-satellite strategy for the DLO/DLG difference system;
        defaults to the first (highest-elevation) satellite.
    max_iterations, tolerance_meters, initial_state:
        Newton-Raphson iteration budget, update-norm stopping tolerance
        and optional warm start.  Consumed when ``algorithm="nr"`` —
        and by any NR fallback derived from this config with
        ``dataclasses.replace(config, algorithm="nr")``, which is why
        they are legal on every algorithm.
    elevation_weighted, convergence:
        NR-only refinements (see
        :class:`~repro.solvers.NewtonRaphsonSolver`).  Rejected by
        :meth:`build_batch_solver` when set to non-batchable values,
        exactly as :meth:`NewtonRaphsonSolver.as_batch` would.
    """

    algorithm: str = "dlg"
    clock_bias_meters: Optional[float] = None
    clock_predictor: Optional[ClockBiasPredictor] = field(
        default=None, compare=False
    )
    base_selector: Optional[BaseSatelliteSelector] = field(
        default=None, compare=False
    )
    max_iterations: int = 20
    tolerance_meters: float = 1e-4
    initial_state: Optional[Tuple[float, float, float, float]] = None
    elevation_weighted: bool = False
    convergence: str = "update"

    def __post_init__(self) -> None:
        algorithm = str(self.algorithm).lower()
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"algorithm must be one of {'/'.join(ALGORITHMS)}, "
                f"got {self.algorithm!r}"
            )
        object.__setattr__(self, "algorithm", algorithm)
        if self.clock_bias_meters is not None and self.clock_predictor is not None:
            raise ConfigurationError(
                "set clock_bias_meters or clock_predictor, not both: the "
                "fixed bias would silently shadow the live predictor"
            )
        if self.clock_bias_meters is not None and not np.isfinite(
            self.clock_bias_meters
        ):
            raise ConfigurationError("clock_bias_meters must be finite")
        if self.initial_state is not None:
            state = tuple(float(v) for v in self.initial_state)
            if len(state) != 4 or not all(np.isfinite(v) for v in state):
                raise ConfigurationError("initial_state must be a finite 4-tuple")
            object.__setattr__(self, "initial_state", state)
        # Delegate the remaining NR validation to the constructor it
        # parameterizes, so the rules live in exactly one place.
        if self.algorithm == "nr":
            self.build_solver()

    # ------------------------------------------------------------------
    def bias_predictor(self) -> Optional[ClockBiasPredictor]:
        """The DLO/DLG bias source this config describes (or ``None``)."""
        if self.clock_bias_meters is not None:
            return ConstantClockBiasPredictor(float(self.clock_bias_meters))
        return self.clock_predictor

    def build_solver(self) -> PositioningAlgorithm:
        """A scalar solver configured from this value.

        Solvers are cheap to construct but reusable; hot paths should
        build once and call ``solver.solve(epoch)`` per epoch, which is
        exactly what :func:`solve` does when handed a config it has
        seen before via its internal one-slot cache.
        """
        if self.algorithm == "nr":
            return NewtonRaphsonSolver(
                max_iterations=self.max_iterations,
                tolerance_meters=self.tolerance_meters,
                initial_state=(
                    np.asarray(self.initial_state, dtype=float)
                    if self.initial_state is not None
                    else None
                ),
                elevation_weighted=self.elevation_weighted,
                convergence=self.convergence,
            )
        if self.algorithm == "dlo":
            return DLOSolver(self.bias_predictor(), self.base_selector)
        if self.algorithm == "dlg":
            return DLGSolver(self.bias_predictor(), self.base_selector)
        return BancroftSolver()

    def build_batch_solver(self):
        """The batched counterpart of :meth:`build_solver`.

        Returns a :class:`~repro.solvers.BatchNewtonRaphsonSolver`,
        :class:`~repro.solvers.BatchDLOSolver` or
        :class:`~repro.solvers.BatchDLGSolver`; Bancroft has no batch
        implementation and raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if self.algorithm == "bancroft":
            raise ConfigurationError(
                "Bancroft has no batched implementation; use algorithm "
                "'nr', 'dlo', or 'dlg' for batch solving"
            )
        if self.algorithm == "nr":
            if self.elevation_weighted:
                raise ConfigurationError(
                    "batched NR does not support elevation weighting"
                )
            if self.convergence != "update":
                raise ConfigurationError(
                    "batched NR only supports the 'update' convergence criterion"
                )
            return BatchNewtonRaphsonSolver(
                max_iterations=self.max_iterations,
                tolerance_meters=self.tolerance_meters,
                initial_state=(
                    np.asarray(self.initial_state, dtype=float)
                    if self.initial_state is not None
                    else None
                ),
            )
        return BatchDLOSolver() if self.algorithm == "dlo" else BatchDLGSolver()

    def nr_fallback(self) -> "SolverConfig":
        """This config's NR degradation target.

        The same tuning with ``algorithm="nr"`` — what the service (and
        :class:`~repro.core.receiver.GpsReceiver`-style ladders) solve
        with when the closed-form path rejects an epoch.
        """
        if self.algorithm == "nr":
            return self
        return replace(
            self,
            algorithm="nr",
            clock_bias_meters=None,
            clock_predictor=None,
        )

    def batch_biases(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Per-epoch clock biases (meters) for a DLO/DLG batch solve.

        Resolution order: explicit ``biases`` argument, the config's
        fixed ``clock_bias_meters``, the config's ``clock_predictor``
        evaluated at each epoch time, else zeros (pseudoranges already
        clock-free).
        """
        if biases is not None:
            resolved = np.asarray(biases, dtype=float)
            if resolved.shape != (len(epochs),):
                raise ConfigurationError(
                    f"biases must be one per epoch: expected ({len(epochs)},), "
                    f"got {resolved.shape}"
                )
            return resolved
        if self.clock_bias_meters is not None:
            return np.full(len(epochs), float(self.clock_bias_meters))
        if self.clock_predictor is not None:
            return np.array(
                [
                    self.clock_predictor.predict_bias_meters(epoch.time)
                    for epoch in epochs
                ]
            )
        return np.zeros(len(epochs))


def _as_config(config: Union[SolverConfig, str, None]) -> SolverConfig:
    """Normalize the facade's ``config`` argument."""
    if config is None:
        return SolverConfig()
    if isinstance(config, str):
        return SolverConfig(algorithm=config)
    if isinstance(config, SolverConfig):
        return config
    raise ConfigurationError(
        f"config must be a SolverConfig, an algorithm name, or None, "
        f"got {type(config).__name__}"
    )


#: One-slot solver cache: repeated ``solve(epoch, same_config)`` calls
#: (the fuzzer's pattern) reuse the built solver instead of paying
#: construction per epoch.  Keyed by config identity, not equality, so
#: stateful predictors are never shared across distinct configs.
_LAST_BUILT: Tuple[Optional[SolverConfig], Optional[PositioningAlgorithm]] = (
    None,
    None,
)


def solve(
    epoch: ObservationEpoch,
    config: Union[SolverConfig, str, None] = None,
) -> PositionFix:
    """Solve one epoch under a :class:`SolverConfig` (default: DLG).

    The single scalar entry point of the facade: ``config`` may be a
    full :class:`SolverConfig`, a bare algorithm name (``"nr"``,
    ``"dlo"``, ``"dlg"``, ``"bancroft"``), or ``None`` for the default
    DLG with a zero clock-bias predictor.
    """
    global _LAST_BUILT
    resolved = _as_config(config)
    cached_config, cached_solver = _LAST_BUILT
    if cached_config is resolved and cached_solver is not None:
        return cached_solver.solve(epoch)
    solver = resolved.build_solver()
    if isinstance(config, SolverConfig):
        _LAST_BUILT = (resolved, solver)
    return solver.solve(epoch)


def solve_batch(
    epochs: Sequence[ObservationEpoch],
    config: Union[SolverConfig, str, None] = None,
    biases: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Solve N same-satellite-count epochs as one stacked batch.

    Returns ``(N, 3)`` positions.  For DLO/DLG the per-epoch clock
    biases follow :meth:`SolverConfig.batch_biases`; NR solves its own
    biases and raises :class:`~repro.errors.ConvergenceError` if any
    epoch fails to converge.  Mixed-count streams belong to
    :class:`~repro.engine.PositioningEngine` (or the async service),
    which buckets them and calls this layer per bucket.
    """
    resolved = _as_config(config)
    solver = resolved.build_batch_solver()
    if resolved.algorithm == "nr":
        return solver.solve_batch(epochs)
    return solver.solve_batch(epochs, resolved.batch_biases(epochs, biases))


def build_solver(
    config: Union[SolverConfig, str, None] = None,
) -> PositioningAlgorithm:
    """A reusable scalar solver for ``config`` (see :func:`solve`)."""
    return _as_config(config).build_solver()


def build_batch_solver(config: Union[SolverConfig, str, None] = None):
    """A reusable batch solver for ``config`` (see :func:`solve_batch`)."""
    return _as_config(config).build_batch_solver()


__all__ = [
    "ALGORITHMS",
    "BATCH_ALGORITHMS",
    "SolverConfig",
    "solve",
    "solve_batch",
    "build_solver",
    "build_batch_solver",
]
