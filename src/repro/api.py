"""repro.api — the unified solver facade.

One frozen :class:`SolverConfig` value subsumes the seven scattered
solver constructors (:class:`~repro.solvers.NewtonRaphsonSolver`,
:class:`~repro.solvers.DLOSolver`, :class:`~repro.solvers.DLGSolver`,
:class:`~repro.solvers.BancroftSolver` and the batch trio): pick the
algorithm, tune it, and hand the *value* around — the service, the
CLI, the validation oracles, and the benchmarks all consume it, so
"which solver, configured how" travels as data instead of as seven
call-site-specific constructor signatures.

Entry points::

    from repro.api import SolverConfig, solve

    fix = solve(epoch)                          # default: DLG
    fix = solve(epoch, "nr")                    # algorithm shorthand
    fix = solve(epoch, SolverConfig(algorithm="dlg", clock_bias_meters=35.0))

    config = SolverConfig(algorithm="nr", tolerance_meters=1e-5)
    solver = config.build_solver()              # reusable scalar solver
    batch = config.build_batch_solver()         # reusable batch solver
    positions = solve_batch(epochs, config)     # (N, 3) stacked solve

Design rules:

* **Frozen value semantics.**  A ``SolverConfig`` never mutates;
  derive variants with :func:`dataclasses.replace` (the service builds
  its NR degradation ladder exactly that way).
* **Ignored is documented, contradictory is an error.**  Knobs that do
  not apply to the chosen algorithm are *ignored* when harmless (NR
  tuning on a DLG config also parameterizes any NR fallback built from
  the same config) but *rejected* when contradictory (two clock-bias
  sources at once, batched Bancroft).
* **Back-compat.**  The solver classes stay public in
  :mod:`repro.solvers` (re-exported by :mod:`repro.core`); only the
  deep ``repro.core.<solver module>`` import paths are deprecated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.clocks.prediction import ClockBiasPredictor, ConstantClockBiasPredictor
from repro.constellation.systems import DEFAULT_SYSTEM, normalize_system
from repro.core.base import PositioningAlgorithm
from repro.core.selection import BaseSatelliteSelector
from repro.core.types import PositionFix
from repro.errors import ConfigurationError
from repro.geodesy import geodetic_to_ecef
from repro.observations import (
    EpochTruth,
    ObservationEpoch,
    SatelliteObservation,
)
from repro.solvers import (
    CONSTELLATION_MODES,
    BancroftSolver,
    BatchDLGSolver,
    BatchDLOSolver,
    BatchNewtonRaphsonSolver,
    DLGSolver,
    DLOSolver,
    NewtonRaphsonSolver,
)
from repro.timebase import GpsTime

#: Algorithms a :class:`SolverConfig` can name.
ALGORITHMS: Tuple[str, ...] = ("nr", "dlo", "dlg", "bancroft")

#: Algorithms with a batched implementation (Bancroft has none).
BATCH_ALGORITHMS: Tuple[str, ...] = ("nr", "dlo", "dlg")


@dataclass(frozen=True)
class SolverConfig:
    """Everything needed to build any solver path, as one frozen value.

    Attributes
    ----------
    algorithm:
        ``"nr"``, ``"dlo"``, ``"dlg"`` (the paper's algorithms) or
        ``"bancroft"`` (the classic closed-form comparator).
    clock_bias_meters:
        Known receiver clock bias (meters) handed to DLO/DLG as a
        fixed :class:`~repro.clocks.ConstantClockBiasPredictor`.
        Ignored by NR and Bancroft, which solve their own bias.
        Mutually exclusive with ``clock_predictor``.
    clock_predictor:
        A live bias predictor for DLO/DLG (e.g. a warmed-up
        :class:`~repro.clocks.LinearClockBiasPredictor`).  Ignored by
        NR and Bancroft.
    base_selector:
        Base-satellite strategy for the DLO/DLG difference system;
        defaults to the first (highest-elevation) satellite.
    max_iterations, tolerance_meters, initial_state:
        Newton-Raphson iteration budget, update-norm stopping tolerance
        and optional warm start.  Consumed when ``algorithm="nr"`` —
        and by any NR fallback derived from this config with
        ``dataclasses.replace(config, algorithm="nr")``, which is why
        they are legal on every algorithm.
    elevation_weighted, convergence:
        NR-only refinements (see
        :class:`~repro.solvers.NewtonRaphsonSolver`).  Rejected by
        :meth:`build_batch_solver` when set to non-batchable values,
        exactly as :meth:`NewtonRaphsonSolver.as_batch` would.
    constellations:
        ``"single"`` (the paper's GPS-only model: one clock bias, any
        system tags ignored) or ``"per_constellation"`` (one clock-bias
        unknown per distinct system present).  Per-constellation mode
        *estimates* every bias, so it rejects both external bias
        sources, the 4-state ``initial_state`` warm start, and
        Bancroft (whose closed form is single-clock by construction).
    """

    algorithm: str = "dlg"
    clock_bias_meters: Optional[float] = None
    clock_predictor: Optional[ClockBiasPredictor] = field(
        default=None, compare=False
    )
    base_selector: Optional[BaseSatelliteSelector] = field(
        default=None, compare=False
    )
    max_iterations: int = 20
    tolerance_meters: float = 1e-4
    initial_state: Optional[Tuple[float, float, float, float]] = None
    elevation_weighted: bool = False
    convergence: str = "update"
    constellations: str = "single"

    def __post_init__(self) -> None:
        algorithm = str(self.algorithm).lower()
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"algorithm must be one of {'/'.join(ALGORITHMS)}, "
                f"got {self.algorithm!r}"
            )
        object.__setattr__(self, "algorithm", algorithm)
        if self.constellations not in CONSTELLATION_MODES:
            raise ConfigurationError(
                f"constellations must be one of {CONSTELLATION_MODES}, "
                f"got {self.constellations!r}"
            )
        if self.constellations == "per_constellation":
            if self.algorithm == "bancroft":
                raise ConfigurationError(
                    "Bancroft's closed form assumes one shared clock bias; "
                    "per-constellation mode needs 'nr', 'dlo', or 'dlg'"
                )
            if self.clock_bias_meters is not None or self.clock_predictor is not None:
                raise ConfigurationError(
                    "per-constellation mode estimates the clock biases; "
                    "drop clock_bias_meters/clock_predictor or use "
                    "constellations='single'"
                )
            if self.initial_state is not None:
                raise ConfigurationError(
                    "per-constellation NR sizes its state per epoch "
                    "(3 + K unknowns); a fixed 4-state initial_state cannot "
                    "be combined with it"
                )
        if self.clock_bias_meters is not None and self.clock_predictor is not None:
            raise ConfigurationError(
                "set clock_bias_meters or clock_predictor, not both: the "
                "fixed bias would silently shadow the live predictor"
            )
        if self.clock_bias_meters is not None and not np.isfinite(
            self.clock_bias_meters
        ):
            raise ConfigurationError("clock_bias_meters must be finite")
        if self.initial_state is not None:
            state = tuple(float(v) for v in self.initial_state)
            if len(state) != 4 or not all(np.isfinite(v) for v in state):
                raise ConfigurationError("initial_state must be a finite 4-tuple")
            object.__setattr__(self, "initial_state", state)
        # Delegate the remaining NR validation to the constructor it
        # parameterizes, so the rules live in exactly one place.
        if self.algorithm == "nr":
            self.build_solver()

    # ------------------------------------------------------------------
    def bias_predictor(self) -> Optional[ClockBiasPredictor]:
        """The DLO/DLG bias source this config describes (or ``None``)."""
        if self.clock_bias_meters is not None:
            return ConstantClockBiasPredictor(float(self.clock_bias_meters))
        return self.clock_predictor

    def build_solver(self) -> PositioningAlgorithm:
        """A scalar solver configured from this value.

        Solvers are cheap to construct but reusable; hot paths should
        build once and call ``solver.solve(epoch)`` per epoch, which is
        exactly what :func:`solve` does when handed a config it has
        seen before via its internal one-slot cache.
        """
        if self.algorithm == "nr":
            return NewtonRaphsonSolver(
                max_iterations=self.max_iterations,
                tolerance_meters=self.tolerance_meters,
                initial_state=(
                    np.asarray(self.initial_state, dtype=float)
                    if self.initial_state is not None
                    else None
                ),
                elevation_weighted=self.elevation_weighted,
                convergence=self.convergence,
                constellations=self.constellations,
            )
        if self.algorithm == "dlo":
            return DLOSolver(
                self.bias_predictor(),
                self.base_selector,
                constellations=self.constellations,
            )
        if self.algorithm == "dlg":
            return DLGSolver(
                self.bias_predictor(),
                self.base_selector,
                constellations=self.constellations,
            )
        return BancroftSolver()

    def build_batch_solver(self):
        """The batched counterpart of :meth:`build_solver`.

        Returns a :class:`~repro.solvers.BatchNewtonRaphsonSolver`,
        :class:`~repro.solvers.BatchDLOSolver` or
        :class:`~repro.solvers.BatchDLGSolver`; Bancroft has no batch
        implementation and raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if self.algorithm == "bancroft":
            raise ConfigurationError(
                "Bancroft has no batched implementation; use algorithm "
                "'nr', 'dlo', or 'dlg' for batch solving"
            )
        if self.algorithm == "nr":
            if self.elevation_weighted:
                raise ConfigurationError(
                    "batched NR does not support elevation weighting"
                )
            if self.convergence != "update":
                raise ConfigurationError(
                    "batched NR only supports the 'update' convergence criterion"
                )
            return BatchNewtonRaphsonSolver(
                max_iterations=self.max_iterations,
                tolerance_meters=self.tolerance_meters,
                initial_state=(
                    np.asarray(self.initial_state, dtype=float)
                    if self.initial_state is not None
                    else None
                ),
                constellations=self.constellations,
            )
        if self.algorithm == "dlo":
            return BatchDLOSolver(constellations=self.constellations)
        return BatchDLGSolver(constellations=self.constellations)

    def nr_fallback(self) -> "SolverConfig":
        """This config's NR degradation target.

        The same tuning with ``algorithm="nr"`` — what the service (and
        :class:`~repro.core.receiver.GpsReceiver`-style ladders) solve
        with when the closed-form path rejects an epoch.
        """
        if self.algorithm == "nr":
            return self
        return replace(
            self,
            algorithm="nr",
            clock_bias_meters=None,
            clock_predictor=None,
        )

    def batch_biases(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Per-epoch clock biases (meters) for a DLO/DLG batch solve.

        Resolution order: explicit ``biases`` argument, the config's
        fixed ``clock_bias_meters``, the config's ``clock_predictor``
        evaluated at each epoch time, else zeros (pseudoranges already
        clock-free).
        """
        if biases is not None:
            resolved = np.asarray(biases, dtype=float)
            if resolved.shape != (len(epochs),):
                raise ConfigurationError(
                    f"biases must be one per epoch: expected ({len(epochs)},), "
                    f"got {resolved.shape}"
                )
            return resolved
        if self.clock_bias_meters is not None:
            return np.full(len(epochs), float(self.clock_bias_meters))
        if self.clock_predictor is not None:
            return np.array(
                [
                    self.clock_predictor.predict_bias_meters(epoch.time)
                    for epoch in epochs
                ]
            )
        return np.zeros(len(epochs))


def _as_config(config: Union[SolverConfig, str, None]) -> SolverConfig:
    """Normalize the facade's ``config`` argument."""
    if config is None:
        return SolverConfig()
    if isinstance(config, str):
        return SolverConfig(algorithm=config)
    if isinstance(config, SolverConfig):
        return config
    raise ConfigurationError(
        f"config must be a SolverConfig, an algorithm name, or None, "
        f"got {type(config).__name__}"
    )


#: One-slot solver cache: repeated ``solve(epoch, same_config)`` calls
#: (the fuzzer's pattern) reuse the built solver instead of paying
#: construction per epoch.  Keyed by config identity, not equality, so
#: stateful predictors are never shared across distinct configs.
_LAST_BUILT: Tuple[Optional[SolverConfig], Optional[PositioningAlgorithm]] = (
    None,
    None,
)


def solve(
    epoch: ObservationEpoch,
    config: Union[SolverConfig, str, None] = None,
) -> PositionFix:
    """Solve one epoch under a :class:`SolverConfig` (default: DLG).

    The single scalar entry point of the facade: ``config`` may be a
    full :class:`SolverConfig`, a bare algorithm name (``"nr"``,
    ``"dlo"``, ``"dlg"``, ``"bancroft"``), or ``None`` for the default
    DLG with a zero clock-bias predictor.
    """
    global _LAST_BUILT
    resolved = _as_config(config)
    cached_config, cached_solver = _LAST_BUILT
    if cached_config is resolved and cached_solver is not None:
        return cached_solver.solve(epoch)
    solver = resolved.build_solver()
    if isinstance(config, SolverConfig):
        _LAST_BUILT = (resolved, solver)
    return solver.solve(epoch)


def solve_batch(
    epochs: Sequence[ObservationEpoch],
    config: Union[SolverConfig, str, None] = None,
    biases: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Solve N same-satellite-count epochs as one stacked batch.

    Returns ``(N, 3)`` positions.  For DLO/DLG the per-epoch clock
    biases follow :meth:`SolverConfig.batch_biases`; NR solves its own
    biases and raises :class:`~repro.errors.ConvergenceError` if any
    epoch fails to converge.  Mixed-count streams belong to
    :class:`~repro.engine.PositioningEngine` (or the async service),
    which buckets them and calls this layer per bucket.
    """
    resolved = _as_config(config)
    solver = resolved.build_batch_solver()
    if resolved.algorithm == "nr":
        return solver.solve_batch(epochs)
    if resolved.constellations == "per_constellation":
        # The multi-constellation solvers estimate every bias; handing
        # them predicted biases is the contradiction they reject.
        return solver.solve_batch(epochs, biases)
    return solver.solve_batch(epochs, resolved.batch_biases(epochs, biases))


def build_solver(
    config: Union[SolverConfig, str, None] = None,
) -> PositioningAlgorithm:
    """A reusable scalar solver for ``config`` (see :func:`solve`)."""
    return _as_config(config).build_solver()


def build_batch_solver(config: Union[SolverConfig, str, None] = None):
    """A reusable batch solver for ``config`` (see :func:`solve_batch`)."""
    return _as_config(config).build_batch_solver()


#: Synthetic-scene range band (meters): zenith to low-elevation slant
#: ranges of a MEO shell, matching the validation scenario generator.
_SCENE_RANGE_BAND = (2.0e7, 2.6e7)

#: Reference GPS week for :func:`build_scene` epochs.
_SCENE_REFERENCE_WEEK = 2200


def build_scene(
    satellites: Union[int, Mapping[str, int]],
    *,
    clock_bias_meters: Union[float, Mapping[str, float]] = 0.0,
    seed: int = 0,
    noise_sigma: float = 0.0,
    time: Optional[GpsTime] = None,
) -> ObservationEpoch:
    """A reproducible synthetic epoch, single- or multi-constellation.

    The facade's scene constructor: hand it satellite counts and truth
    clock biases and get back an :class:`~repro.observations.
    ObservationEpoch` with :class:`~repro.observations.EpochTruth`
    attached — ready for :func:`solve`, the batch solvers, or the
    engine.  Everything is a pure function of ``(satellites,
    clock_bias_meters, seed, noise_sigma)``: same arguments, same scene,
    bit for bit.

    Parameters
    ----------
    satellites:
        Either a plain count (a GPS-only scene, the paper's setting) or
        a mapping of RINEX system codes to counts, e.g. ``{"G": 6,
        "R": 5}``.  Mapping order is preserved: the first key is the
        first constellation, whose bias doubles as the legacy
        ``truth.clock_bias_meters``.
    clock_bias_meters:
        One receiver clock bias for every system (a float), or one per
        system code.  Per-system keys must name systems present in
        ``satellites``; systems left out default to a zero bias.
    seed:
        Seed of the private random stream (receiver location, sky
        directions, ranges, noise).
    noise_sigma:
        Gaussian pseudorange noise (meters); zero keeps the scene
        exactly consistent with its truth.
    time:
        Receive instant; defaults to a fixed reference week with the
        seed as seconds-of-week.
    """
    if isinstance(satellites, Mapping):
        counts = [
            (normalize_system(system), int(count))
            for system, count in satellites.items()
        ]
        tagged = True
    else:
        counts = [(DEFAULT_SYSTEM, int(satellites))]
        tagged = False
    if not counts:
        raise ConfigurationError("satellites must name at least one system")
    if len({system for system, _count in counts}) != len(counts):
        raise ConfigurationError("satellites lists a system code twice")
    if any(count < 1 for _system, count in counts):
        raise ConfigurationError("every per-system satellite count must be >= 1")

    if isinstance(clock_bias_meters, Mapping):
        biases = {
            normalize_system(system): float(bias)
            for system, bias in clock_bias_meters.items()
        }
        present = {system for system, _count in counts}
        absent = sorted(set(biases) - present)
        if absent:
            raise ConfigurationError(
                "clock_bias_meters names systems not in the scene: "
                + ", ".join(absent)
            )
    else:
        biases = {system: float(clock_bias_meters) for system, _count in counts}
    if any(not np.isfinite(bias) for bias in biases.values()):
        raise ConfigurationError("clock biases must be finite")
    if not np.isfinite(noise_sigma) or noise_sigma < 0:
        raise ConfigurationError("noise_sigma must be finite and >= 0")

    rng = np.random.default_rng(seed)
    latitude = float(np.arcsin(rng.uniform(-1.0, 1.0)))  # area-uniform
    longitude = float(rng.uniform(-np.pi, np.pi))
    height = float(rng.uniform(0.0, 9000.0))
    receiver = geodetic_to_ecef(latitude, longitude, height)
    up = receiver / np.linalg.norm(receiver)

    observations = []
    for system, count in counts:
        bias = biases.get(system, 0.0)
        for prn in range(1, count + 1):
            direction = _upper_hemisphere_direction(rng, up)
            satellite = receiver + direction * rng.uniform(*_SCENE_RANGE_BAND)
            pseudorange = float(np.linalg.norm(satellite - receiver)) + bias
            if noise_sigma:
                pseudorange += float(rng.normal(0.0, noise_sigma))
            observations.append(
                SatelliteObservation(
                    prn=prn,
                    position=satellite,
                    pseudorange=pseudorange,
                    elevation=float(np.arcsin(np.clip(direction @ up, -1.0, 1.0))),
                    system=system,
                )
            )

    truth = EpochTruth(
        receiver_position=receiver,
        clock_bias_meters=biases.get(counts[0][0], 0.0),
        clock_biases=(
            tuple((system, biases.get(system, 0.0)) for system, _count in counts)
            if tagged
            else None
        ),
    )
    return ObservationEpoch(
        time=(
            time
            if time is not None
            else GpsTime(
                week=_SCENE_REFERENCE_WEEK, seconds_of_week=float(seed % 604800)
            )
        ),
        observations=tuple(observations),
        truth=truth,
    )


def _upper_hemisphere_direction(
    rng: np.random.Generator, up: np.ndarray
) -> np.ndarray:
    """One unit line-of-sight direction at least ~5 degrees up."""
    minimum = np.sin(np.radians(5.0))
    while True:
        candidate = rng.normal(size=3)
        norm = np.linalg.norm(candidate)
        if norm < 1e-12:
            continue
        candidate /= norm
        if candidate @ up < 0:
            candidate = -candidate  # fold into the upper hemisphere
        if candidate @ up >= minimum:
            return candidate


__all__ = [
    "ALGORITHMS",
    "BATCH_ALGORITHMS",
    "CONSTELLATION_MODES",
    "SolverConfig",
    "solve",
    "solve_batch",
    "build_solver",
    "build_batch_solver",
    "build_scene",
]
