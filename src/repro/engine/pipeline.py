"""The throughput pipeline: mixed stream in, vectorized fixes out.

:class:`PositioningEngine` is the bulk counterpart of
:class:`~repro.core.receiver.GpsReceiver`: where the receiver answers
one epoch at a time with full adaptive machinery (warm-up, residual
gates, fallbacks), the engine answers a whole stream at once with the
stacked-tensor solvers — the shape a post-processing service or a
high-rate tracking backend actually runs.  The stream may mix
satellite counts freely; the engine packs it **once** into columnar
:class:`~repro.blocks.EpochBlock` buckets (:func:`~repro.blocks.
pack_stream`), screens validity with vectorized reductions, dispatches
each block zero-copy to the batched solver, and scatters the results
back into stream order.

Callers that already hold columnar data — the service's micro-batch
flush, a decoder that fills blocks directly — can pass an
:class:`~repro.blocks.EpochBlock` or :class:`~repro.blocks.
PackedStream` instead of epoch objects and skip the packing stage
entirely; the solve path is byte-for-byte the same from there.

Every ``solve_stream`` call is instrumented (stream/bucket spans,
bucket-size and coverage metrics) through :mod:`repro.telemetry` —
free when telemetry is not installed — and returns an
:class:`EngineDiagnostics` record of what happened to every epoch,
plus a per-stage wall-time split (``result.stage_seconds``) so perf
work can see where a stream's time actually went.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blocks import EpochBlock, PackedBucket, PackedStream, pack_stream
from repro.clocks.prediction import ClockBiasPredictor
from repro.solvers.batch import (
    BatchDLGSolver,
    BatchDLOSolver,
    BatchNewtonRaphsonSolver,
)
from repro.engine.scheduler import scatter_bucket_results
from repro.errors import ConfigurationError, EstimationError, GeometryError
from repro.integrity.fde import BatchFde, FdeConfig, FdeRecord
from repro.observations import ObservationEpoch, epoch_integrity_error
from repro.telemetry import get_registry, get_tracer

_log = logging.getLogger(__name__)

#: Stream-composition histogram buckets (epochs per bucket).
_BUCKET_SIZE_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000)

#: What solve_stream accepts: epoch objects (packed internally, once),
#: or already-columnar input that skips the packing stage.
StreamLike = Union[Sequence[ObservationEpoch], EpochBlock, PackedStream]


@dataclass(frozen=True)
class EngineDiagnostics:
    """What happened to every epoch of one :meth:`solve_stream` call.

    Attributes
    ----------
    epochs_dropped:
        Epochs excluded from solving (undersized, with
        ``on_undersized="drop"``); their result rows are NaN.
    dropped_indices:
        Stream indices of the dropped epochs.
    epochs_invalid:
        Structurally invalid epochs (duplicate PRNs, non-finite
        measurements) excluded under ``on_undersized="drop"``; their
        result rows are NaN.
    invalid_indices:
        Stream indices of the invalid epochs.
    bucket_status:
        Per-bucket solve outcome, keyed by the bucket's key (the
        historical ``int`` satellite count for pure-GPS buckets, a
        ``"8:G5R3"``-style string for mixed-constellation ones):
        ``"ok"`` or ``"failed"`` (a failed bucket also raises, so
        ``"failed"`` is only observable through telemetry callbacks
        and post-mortem snapshots).
    fde:
        Per-epoch integrity verdicts
        (:class:`~repro.integrity.fde.FdeRecord`, stream-ordered) when
        the engine runs with FDE enabled, else ``None``.  Epochs the
        stream dropped as invalid/undersized appear as ``unchecked``.
    bucket_keys / bucket_rows:
        Batch lineage, stream-ordered int32 arrays: for epoch ``i``,
        the satellite count of the bucket it solved in and the row it
        occupied there (``-1`` for epochs that never reached a bucket
        solve).  This is what lets a trace or an incident record say
        *where in the batch* a given request's epoch actually ran.
    """

    epochs_dropped: int = 0
    dropped_indices: Tuple[int, ...] = ()
    epochs_invalid: int = 0
    invalid_indices: Tuple[int, ...] = ()
    bucket_status: Dict[Union[int, str], str] = field(default_factory=dict)
    fde: Optional[FdeRecord] = None
    bucket_keys: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )
    bucket_rows: Optional[np.ndarray] = field(
        default=None, compare=False, repr=False
    )

    def to_dict(self) -> Dict:
        """JSON-ready form, used by the telemetry snapshot exporters."""
        return {
            "epochs_dropped": self.epochs_dropped,
            "dropped_indices": list(self.dropped_indices),
            "epochs_invalid": self.epochs_invalid,
            "invalid_indices": list(self.invalid_indices),
            "bucket_status": {str(k): v for k, v in self.bucket_status.items()},
            "fde": self.fde.to_dict() if self.fde is not None else None,
            "bucket_keys": (
                [int(k) for k in self.bucket_keys]
                if self.bucket_keys is not None
                else None
            ),
            "bucket_rows": (
                [int(r) for r in self.bucket_rows]
                if self.bucket_rows is not None
                else None
            ),
        }


@dataclass(frozen=True)
class EngineResult:
    """Results of one :meth:`PositioningEngine.solve_stream` call.

    Attributes
    ----------
    positions:
        ``(N, 3)`` receiver positions, row ``i`` answering stream
        epoch ``i`` (NaN rows for dropped epochs).
    clock_biases:
        ``(N,)`` receiver clock biases in meters: the *predicted*
        biases for DLO/DLG (which consume them), the *solved* biases
        for NR (which estimates them).  In per-constellation mode this
        is each epoch's first constellation's solved bias (matching
        :attr:`~repro.core.types.PositionFix.clock_bias_meters`); the
        full picture is ``constellation_biases``.
    algorithm:
        Which batched solver produced the fixes.
    bucket_sizes:
        Stream composition: ``{bucket_key: epochs}`` — keys are the
        historical ``int`` satellite counts for pure-GPS buckets and
        ``"8:G5R3"``-style strings for mixed-constellation ones.
    constellation_biases:
        Per-constellation solved clock biases, ``{system_code: (N,)
        array}``, NaN where an epoch did not observe that system (or
        was dropped).  ``None`` outside per-constellation mode.
    diagnostics:
        Failure/drop accounting for the call
        (:class:`EngineDiagnostics`).
    stage_seconds:
        Wall-time split of the call: ``pack`` (object→columnar
        conversion; ~0 when the caller passed columnar input),
        ``validate`` (vectorized integrity screening), ``solve``
        (batched kernels), ``fde`` (integrity gate, 0 when disabled),
        and ``scatter`` (reassembly into stream order).
    """

    positions: np.ndarray
    clock_biases: np.ndarray
    algorithm: str
    bucket_sizes: Dict[Union[int, str], int]
    diagnostics: EngineDiagnostics = field(default_factory=EngineDiagnostics)
    stage_seconds: Optional[Dict[str, float]] = None
    constellation_biases: Optional[Dict[str, np.ndarray]] = None

    def __len__(self) -> int:
        return self.positions.shape[0]


class _EngineMetrics:
    """Bound metric children for one (registry, algorithm) pair.

    ``solve_stream`` publishes stream- and bucket-level metrics on
    every flush of the serving path; resolving the name -> family ->
    child chain each time costs more than the updates themselves, so
    the children are bound once per installed registry.
    """

    __slots__ = (
        "bucket_size",
        "bucket_ok",
        "bucket_failed",
        "streams",
        "epochs",
        "dropped",
        "invalid",
        "coverage",
    )

    def __init__(self, registry, algorithm: str) -> None:
        self.bucket_size = registry.histogram(
            "repro_engine_bucket_size",
            "Epochs per same-satellite-count bucket.",
            buckets=_BUCKET_SIZE_BUCKETS,
        ).labels()
        solves = registry.counter(
            "repro_engine_bucket_solves_total",
            "Bucket solves by outcome.",
            labels=("algorithm", "status"),
        )
        self.bucket_ok = solves.labels(algorithm=algorithm, status="ok")
        self.bucket_failed = solves.labels(algorithm=algorithm, status="failed")
        self.streams = registry.counter(
            "repro_engine_streams_total",
            "solve_stream calls.",
            labels=("algorithm",),
        ).labels(algorithm=algorithm)
        self.epochs = registry.counter(
            "repro_engine_epochs_total",
            "Epochs submitted to solve_stream.",
            labels=("algorithm",),
        ).labels(algorithm=algorithm)
        self.dropped = registry.counter(
            "repro_engine_epochs_dropped_total",
            "Undersized epochs dropped from streams.",
        ).labels()
        self.invalid = registry.counter(
            "repro_engine_epochs_invalid_total",
            "Structurally invalid epochs dropped from streams.",
        ).labels()
        self.coverage = registry.gauge(
            "repro_engine_scatter_coverage",
            "Fraction of the last stream answered with a solve.",
        ).labels()


class PositioningEngine:
    """Bucket-and-batch dispatcher around the stacked solvers.

    Parameters
    ----------
    algorithm:
        ``"dlo"``, ``"dlg"`` (closed-form, need clock biases) or
        ``"nr"`` (iterative baseline, solves its own bias).
    clock_predictor:
        Bias source for DLO/DLG when :meth:`solve_stream` is not given
        explicit biases — typically a warmed-up
        :class:`~repro.clocks.prediction.LinearClockBiasPredictor`.
        Unused by NR.
    nr_solver:
        Optional pre-configured batched NR (tolerances, warm start).
    fde_config:
        When set, every DLG bucket is screened by
        :class:`~repro.integrity.fde.BatchFde` — flagged epochs are
        repaired in-batch by leave-one-out exclusion and the per-epoch
        verdicts land on ``result.diagnostics.fde``.  Requires
        ``algorithm="dlg"``: only the GLS whitened residual norm is
        chi-square scaled.
    precision:
        ``"float64"`` (default) or ``"float32"`` — the opt-in
        mixed-precision DLG kernel (float32 whitening/factorization,
        float64 residual refinement), guarded by a differential audit
        against the float64 kernel that permanently falls back on the
        first out-of-tolerance solve.  DLG only, incompatible with
        FDE (integrity statistics require the reference kernel).
    """

    def __init__(
        self,
        algorithm: str = "dlg",
        clock_predictor: Optional[ClockBiasPredictor] = None,
        nr_solver: Optional[BatchNewtonRaphsonSolver] = None,
        fde_config: Optional[FdeConfig] = None,
        precision: str = "float64",
        constellations: str = "single",
    ) -> None:
        algorithm = algorithm.lower()
        if algorithm not in ("dlo", "dlg", "nr"):
            raise ConfigurationError(
                f"algorithm must be one of dlo/dlg/nr, got {algorithm!r}"
            )
        if constellations not in ("single", "per_constellation"):
            raise ConfigurationError(
                "constellations must be 'single' or 'per_constellation', "
                f"got {constellations!r}"
            )
        if fde_config is not None and algorithm != "dlg":
            raise ConfigurationError(
                "FDE needs chi-square-scaled residuals, which only the "
                f"DLG whitened norm provides; got algorithm={algorithm!r}"
            )
        if precision not in ("float64", "float32"):
            raise ConfigurationError(
                f"precision must be 'float64' or 'float32', got {precision!r}"
            )
        if precision == "float32":
            if algorithm != "dlg":
                raise ConfigurationError(
                    "float32 precision is only supported for the dlg kernel; "
                    f"got algorithm={algorithm!r}"
                )
            if fde_config is not None:
                raise ConfigurationError(
                    "float32 precision cannot be combined with FDE: the "
                    "integrity statistics require the float64 kernel"
                )
            if constellations == "per_constellation":
                raise ConfigurationError(
                    "float32 precision cannot be combined with "
                    "per-constellation mode: the grouped kernel has no "
                    "float32 variant"
                )
        if constellations == "per_constellation":
            if clock_predictor is not None:
                raise ConfigurationError(
                    "per-constellation mode estimates the clock biases; "
                    "a clock predictor cannot be combined with it"
                )
            if (
                nr_solver is not None
                and nr_solver.constellations != "per_constellation"
            ):
                raise ConfigurationError(
                    "nr_solver must be configured with "
                    "constellations='per_constellation' to match the engine"
                )
        self._algorithm = algorithm
        self._constellations = constellations
        self._predictor = clock_predictor
        self._nr = (
            nr_solver
            if nr_solver is not None
            else BatchNewtonRaphsonSolver(constellations=constellations)
        )
        self._dlo = BatchDLOSolver(constellations=constellations)
        self._dlg = BatchDLGSolver(dtype=precision, constellations=constellations)
        self._fde = BatchFde(fde_config) if fde_config is not None else None
        # Per-registry cached metric children: solve_stream publishes a
        # handful of counters per flush and two per bucket, and the
        # name->family->child lookups are measurable at serving flush
        # rates (invalidated when the installed registry changes).
        self._metrics_registry = None
        self._metrics: Optional[_EngineMetrics] = None

    def _engine_metrics(self, registry) -> "_EngineMetrics":
        if registry is not self._metrics_registry:
            self._metrics = _EngineMetrics(registry, self._algorithm)
            self._metrics_registry = registry
        return self._metrics

    @classmethod
    def from_config(
        cls, config, fde_config: Optional[FdeConfig] = None
    ) -> "PositioningEngine":
        """An engine for a :class:`repro.api.SolverConfig`.

        The config's bias source (fixed bias or live predictor) becomes
        the stream-level predictor; its NR tuning parameterizes the
        batched NR used either as the primary algorithm or by callers
        building degradation ladders (the async service).  Bancroft has
        no batch path and is rejected by the config itself.
        ``fde_config`` optionally arms the integrity gate (DLG only).
        """
        return cls(
            algorithm=config.algorithm,
            clock_predictor=config.bias_predictor(),
            nr_solver=config.nr_fallback().build_batch_solver(),
            fde_config=fde_config,
            constellations=getattr(config, "constellations", "single"),
        )

    @property
    def algorithm(self) -> str:
        """The configured algorithm name."""
        return self._algorithm

    @property
    def constellations(self) -> str:
        """The configured constellation policy."""
        return self._constellations

    @property
    def fde_enabled(self) -> bool:
        """Whether buckets run through the batch FDE gate."""
        return self._fde is not None

    @property
    def precision(self) -> str:
        """The *active* kernel precision (reflects an audit fallback)."""
        return "float32" if self._dlg.float32_active else "float64"

    # -- per-bucket solving --------------------------------------------
    def _bucket_biases(
        self, bucket: PackedBucket, stream_biases: Optional[np.ndarray]
    ) -> np.ndarray:
        if stream_biases is not None:
            return stream_biases[np.asarray(bucket.indices, dtype=int)]
        if self._predictor is not None:
            block = bucket.block
            return np.array(
                [
                    self._predictor.predict_bias_meters(block.time(i))
                    for i in range(len(block))
                ]
            )
        return np.zeros(len(bucket))

    def _solve_bucket(
        self, bucket: PackedBucket, stream_biases: Optional[np.ndarray]
    ):
        """One bucket through the batched solver, zero-copy.

        Returns ``(positions, biases, fde_record-or-None, solve_seconds,
        fde_seconds, multi-or-None)`` where ``multi`` is the
        per-constellation ``((N, K) biases, systems)`` pair in
        per-constellation mode.
        """
        if self._constellations == "per_constellation":
            return self._solve_bucket_multi(bucket)
        if self._algorithm == "nr":
            started = perf_counter()
            record = self._nr.solve_block_full(bucket.block)
            if not np.all(record.converged):
                stuck = [
                    int(bucket.indices[i])
                    for i in np.flatnonzero(~record.converged)
                ]
                raise GeometryError(
                    f"NR failed to converge for stream epochs {stuck}"
                )
            return (
                record.positions,
                record.clock_biases,
                None,
                perf_counter() - started,
                0.0,
                None,
            )
        bucket_biases = self._bucket_biases(bucket, stream_biases)
        if self._fde is not None:
            started = perf_counter()
            solutions, norms, corrected = self._dlg.solve_block_full(
                bucket.block, bucket_biases
            )
            solve_seconds = perf_counter() - started
            started = perf_counter()
            # screen() reuses the solve's own whitened norms and
            # corrected pseudoranges — no repacking, no re-solve — and
            # repairs flagged rows of `solutions` in place.
            fde_record = self._fde.screen(
                bucket.block, corrected, solutions, norms
            )
            return (
                solutions,
                bucket_biases,
                fde_record,
                solve_seconds,
                perf_counter() - started,
                None,
            )
        solver = self._dlo if self._algorithm == "dlo" else self._dlg
        started = perf_counter()
        solutions = solver.solve_block(bucket.block, bucket_biases)
        return solutions, bucket_biases, None, perf_counter() - started, 0.0, None

    def _solve_bucket_multi(self, bucket: PackedBucket):
        """One bucket through the per-constellation batched solvers.

        No clock biases enter: they are unknowns here.  Every bucket of
        a :func:`~repro.blocks.pack_stream` stream carries a uniform
        system pattern by construction, which is exactly what the
        grouped kernels require.
        """
        block = bucket.block
        if self._algorithm == "nr":
            started = perf_counter()
            record = self._nr.solve_block_full(block)
            if not np.all(record.converged):
                stuck = [
                    int(bucket.indices[i])
                    for i in np.flatnonzero(~record.converged)
                ]
                raise GeometryError(
                    f"NR failed to converge for stream epochs {stuck}"
                )
            return (
                record.positions,
                record.clock_biases,
                None,
                perf_counter() - started,
                0.0,
                (record.constellation_biases, record.systems),
            )
        if self._fde is not None:
            started = perf_counter()
            result = self._dlg.solve_block_multi(block)
            solve_seconds = perf_counter() - started
            started = perf_counter()
            # screen_multi repairs flagged rows of the result's
            # positions *and* biases in place.
            fde_record = self._fde.screen_multi(
                block, result.positions, result.constellation_biases, result.norms
            )
            return (
                result.positions,
                result.constellation_biases[:, 0].copy(),
                fde_record,
                solve_seconds,
                perf_counter() - started,
                (result.constellation_biases, result.systems),
            )
        solver = self._dlo if self._algorithm == "dlo" else self._dlg
        started = perf_counter()
        result = solver.solve_block_multi(block)
        return (
            result.positions,
            result.constellation_biases[:, 0].copy(),
            None,
            perf_counter() - started,
            0.0,
            (result.constellation_biases, result.systems),
        )

    # -- stream solving ------------------------------------------------
    def solve_stream(
        self,
        epochs: StreamLike,
        biases: Optional[Sequence[float]] = None,
        on_undersized: str = "raise",
    ) -> EngineResult:
        """Solve an arbitrary mixed-count epoch stream in one call.

        Parameters
        ----------
        epochs:
            The stream, in any satellite-count mix: a sequence of
            :class:`~repro.observations.ObservationEpoch` (packed into
            columnar form internally, once), or an already-columnar
            :class:`~repro.blocks.EpochBlock` /
            :class:`~repro.blocks.PackedStream` that enters the solve
            path zero-copy.  Every epoch needs at least 4 satellites.
        biases:
            Optional explicit per-epoch clock biases (meters) for
            DLO/DLG; defaults to the configured predictor, or zero for
            already clock-free pseudoranges.  Ignored by NR.
        on_undersized:
            ``"raise"`` (default) rejects a stream containing epochs
            with fewer than 4 satellites — or structurally invalid
            ones (duplicate PRNs, non-finite measurements, per
            :func:`~repro.observations.epoch_integrity_error`);
            ``"drop"`` solves everything else, answers the offending
            epochs with NaN rows, and accounts for them in
            ``result.diagnostics``.

        Results come back aligned with the input: row ``i`` of
        ``positions`` answers stream epoch ``i`` regardless of how the
        stream was bucketed internally.
        """
        if on_undersized not in ("raise", "drop"):
            raise ConfigurationError(
                f"on_undersized must be 'raise' or 'drop', got {on_undersized!r}"
            )
        stage_started = perf_counter()
        source: Optional[List[ObservationEpoch]] = None
        if isinstance(epochs, PackedStream):
            packed = epochs
        elif isinstance(epochs, EpochBlock):
            packed = PackedStream.from_block(epochs)
        else:
            source = list(epochs)
            packed = pack_stream(source)
        total = len(packed)
        if total == 0:
            raise GeometryError("solve_stream needs at least one epoch")
        pack_seconds = perf_counter() - stage_started

        # Structural integrity: one vectorized screen per bucket
        # (min_satellites=1 — sized epochs are handled through the
        # undersized path below, with the same raise/drop policy).
        stage_started = perf_counter()
        kept_buckets: List[PackedBucket] = []
        invalid_list: List[int] = list(packed.unpackable)
        for bucket in packed.buckets:
            mask = bucket.block.validity_mask(min_satellites=1)
            if mask.all():
                kept_buckets.append(bucket)
                continue
            bad_rows = np.flatnonzero(~mask)
            invalid_list.extend(
                int(i) for i in np.asarray(bucket.indices)[bad_rows]
            )
            if mask.any():
                kept_buckets.append(bucket.take(mask))
        invalid_indices = tuple(sorted(invalid_list))
        if invalid_indices and on_undersized == "raise":
            first = invalid_indices[0]
            raise GeometryError(
                f"stream contains {len(invalid_indices)} structurally invalid "
                f"epoch(s) (first at index {first}: "
                f"{self._invalid_detail(first, source, packed)}); "
                f"filter or repair them before solving"
            )
        invalid_set = frozenset(invalid_indices)
        if invalid_indices:
            _log.warning(
                "dropping %d structurally invalid epochs from a %d-epoch stream",
                len(invalid_indices),
                total,
            )

        stream_biases: Optional[np.ndarray] = None
        if biases is not None:
            if self._constellations == "per_constellation":
                raise ConfigurationError(
                    "per-constellation mode estimates the clock biases; "
                    "explicit per-epoch biases cannot be passed"
                )
            stream_biases = np.asarray(biases, dtype=float)
            if stream_biases.shape != (total,):
                raise ConfigurationError(
                    f"biases must be one per epoch: expected ({total},), "
                    f"got {stream_biases.shape}"
                )
        validate_seconds = perf_counter() - stage_started

        registry = get_registry()
        tracer = get_tracer()
        metrics = self._engine_metrics(registry) if registry.enabled else None
        solve_seconds = 0.0
        fde_seconds = 0.0
        with tracer.span(
            "engine.solve_stream", algorithm=self._algorithm, epochs=total
        ):
            undersized = [b for b in kept_buckets if b.satellite_count < 4]
            if undersized and on_undersized == "raise":
                raise GeometryError(
                    f"stream contains epochs with fewer than 4 satellites "
                    f"(counts {[b.satellite_count for b in undersized]}); "
                    f"filter or augment them before solving"
                )
            solvable = [b for b in kept_buckets if b.satellite_count >= 4]
            dropped_indices = tuple(
                int(index) for b in undersized for index in np.asarray(b.indices)
            )
            if dropped_indices:
                _log.warning(
                    "dropping %d undersized epochs from a %d-epoch stream",
                    len(dropped_indices),
                    total,
                )
            if not solvable:
                raise GeometryError(
                    "every epoch in the stream has fewer than 4 satellites"
                )

            bucket_status: Dict[Union[int, str], str] = {}
            position_blocks = []
            bias_blocks = []
            fde_pieces = []
            multi_infos = []
            for bucket in solvable:
                with tracer.span(
                    "engine.solve_bucket",
                    satellite_count=bucket.satellite_count,
                    size=len(bucket),
                    algorithm=self._algorithm,
                ):
                    try:
                        (
                            block_positions,
                            bucket_biases,
                            fde_record,
                            bucket_solve_s,
                            bucket_fde_s,
                            multi_info,
                        ) = self._solve_bucket(bucket, stream_biases)
                    except (GeometryError, EstimationError):
                        bucket_status[bucket.key] = "failed"
                        if metrics is not None:
                            metrics.bucket_size.observe(len(bucket))
                            metrics.bucket_failed.inc()
                        raise
                solve_seconds += bucket_solve_s
                fde_seconds += bucket_fde_s
                bucket_status[bucket.key] = "ok"
                if metrics is not None:
                    metrics.bucket_size.observe(len(bucket))
                    metrics.bucket_ok.inc()
                position_blocks.append(block_positions)
                bias_blocks.append(bucket_biases)
                multi_infos.append(multi_info)
                if fde_record is not None:
                    fde_pieces.append((bucket.indices, fde_record))

            stage_started = perf_counter()
            allow_partial = bool(dropped_indices or invalid_indices)
            positions = scatter_bucket_results(
                solvable, position_blocks, total, allow_partial=allow_partial
            )
            clock_biases = scatter_bucket_results(
                solvable, bias_blocks, total, allow_partial=allow_partial
            )
            # Batch lineage: which bucket (keyed by satellite count)
            # answered each stream row, and on which row of that
            # bucket — two vectorized scatters, a few µs per stream.
            bucket_keys = np.full(total, -1, dtype=np.int32)
            bucket_rows = np.full(total, -1, dtype=np.int32)
            for bucket in solvable:
                rows = np.asarray(bucket.indices, dtype=int)
                bucket_keys[rows] = bucket.satellite_count
                bucket_rows[rows] = np.arange(len(rows), dtype=np.int32)
            constellation_biases: Optional[Dict[str, np.ndarray]] = None
            if self._constellations == "per_constellation":
                constellation_biases = {}
                for bucket, info in zip(solvable, multi_infos):
                    bucket_bias_matrix, systems = info
                    rows = np.asarray(bucket.indices, dtype=int)
                    for j, code in enumerate(systems):
                        lane = constellation_biases.setdefault(
                            code, np.full(total, np.nan)
                        )
                        lane[rows] = bucket_bias_matrix[:, j]
            scatter_seconds = perf_counter() - stage_started

        diagnostics = EngineDiagnostics(
            epochs_dropped=len(dropped_indices),
            dropped_indices=dropped_indices,
            epochs_invalid=len(invalid_indices),
            invalid_indices=invalid_indices,
            bucket_status=bucket_status,
            fde=(
                FdeRecord.scatter(fde_pieces, total)
                if self._fde is not None
                else None
            ),
            bucket_keys=bucket_keys,
            bucket_rows=bucket_rows,
        )
        self._dlg.workspace.flush_telemetry()
        if metrics is not None:
            metrics.streams.inc()
            metrics.epochs.inc(total)
            if dropped_indices:
                metrics.dropped.inc(len(dropped_indices))
            if invalid_indices:
                metrics.invalid.inc(len(invalid_indices))
            metrics.coverage.set(
                1.0
                - (len(dropped_indices) + len(invalid_indices)) / total
            )

        # Two buckets may share a key (same count and per-system totals
        # but different slot patterns), so sizes aggregate per key.
        bucket_sizes: Dict[Union[int, str], int] = {}
        for bucket in solvable:
            bucket_sizes[bucket.key] = bucket_sizes.get(bucket.key, 0) + len(bucket)
        return EngineResult(
            positions=positions,
            clock_biases=clock_biases,
            algorithm=self._algorithm,
            bucket_sizes=bucket_sizes,
            diagnostics=diagnostics,
            stage_seconds={
                "pack": pack_seconds,
                "validate": validate_seconds,
                "solve": solve_seconds,
                "fde": fde_seconds,
                "scatter": scatter_seconds,
            },
            constellation_biases=constellation_biases,
        )

    @staticmethod
    def _invalid_detail(
        index: int,
        source: Optional[List[ObservationEpoch]],
        packed: PackedStream,
    ) -> str:
        """Human-readable reason stream epoch ``index`` is invalid.

        Only materialized on the raise path — the vectorized screen
        never builds per-epoch messages for streams it accepts.
        """
        if source is not None:
            message = epoch_integrity_error(source[index], min_satellites=1)
            if message is not None:
                return message
        if index in packed.unpackable:
            return "epoch could not be packed into dense arrays"
        for bucket in packed.buckets:
            rows = np.flatnonzero(np.asarray(bucket.indices) == index)
            if rows.size:
                message = bucket.block.row_integrity_error(
                    int(rows[0]), min_satellites=1
                )
                if message is not None:
                    return message
        return "epoch violates the solver input contract"

