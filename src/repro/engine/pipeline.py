"""The throughput pipeline: mixed stream in, vectorized fixes out.

:class:`PositioningEngine` is the bulk counterpart of
:class:`~repro.core.receiver.GpsReceiver`: where the receiver answers
one epoch at a time with full adaptive machinery (warm-up, residual
gates, fallbacks), the engine answers a whole stream at once with the
stacked-tensor solvers — the shape a post-processing service or a
high-rate tracking backend actually runs.  The stream may mix
satellite counts freely; the engine buckets it
(:func:`~repro.engine.scheduler.bucket_epochs`), dispatches each
bucket to the batched solver, and scatters the results back into
stream order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.clocks.prediction import ClockBiasPredictor
from repro.core.batch import (
    BatchDLGSolver,
    BatchDLOSolver,
    BatchNewtonRaphsonSolver,
)
from repro.engine.scheduler import bucket_epochs, scatter_bucket_results
from repro.errors import ConfigurationError, GeometryError
from repro.observations import ObservationEpoch


@dataclass(frozen=True)
class EngineResult:
    """Results of one :meth:`PositioningEngine.solve_stream` call.

    Attributes
    ----------
    positions:
        ``(N, 3)`` receiver positions, row ``i`` answering stream
        epoch ``i``.
    clock_biases:
        ``(N,)`` receiver clock biases in meters: the *predicted*
        biases for DLO/DLG (which consume them), the *solved* biases
        for NR (which estimates them).
    algorithm:
        Which batched solver produced the fixes.
    bucket_sizes:
        Stream composition: ``{satellite_count: epochs}``.
    """

    positions: np.ndarray
    clock_biases: np.ndarray
    algorithm: str
    bucket_sizes: Dict[int, int]

    def __len__(self) -> int:
        return self.positions.shape[0]


class PositioningEngine:
    """Bucket-and-batch dispatcher around the stacked solvers.

    Parameters
    ----------
    algorithm:
        ``"dlo"``, ``"dlg"`` (closed-form, need clock biases) or
        ``"nr"`` (iterative baseline, solves its own bias).
    clock_predictor:
        Bias source for DLO/DLG when :meth:`solve_stream` is not given
        explicit biases — typically a warmed-up
        :class:`~repro.clocks.prediction.LinearClockBiasPredictor`.
        Unused by NR.
    nr_solver:
        Optional pre-configured batched NR (tolerances, warm start).
    """

    def __init__(
        self,
        algorithm: str = "dlg",
        clock_predictor: Optional[ClockBiasPredictor] = None,
        nr_solver: Optional[BatchNewtonRaphsonSolver] = None,
    ) -> None:
        algorithm = algorithm.lower()
        if algorithm not in ("dlo", "dlg", "nr"):
            raise ConfigurationError(
                f"algorithm must be one of dlo/dlg/nr, got {algorithm!r}"
            )
        self._algorithm = algorithm
        self._predictor = clock_predictor
        self._nr = nr_solver if nr_solver is not None else BatchNewtonRaphsonSolver()
        self._dlo = BatchDLOSolver()
        self._dlg = BatchDLGSolver()

    @property
    def algorithm(self) -> str:
        """The configured algorithm name."""
        return self._algorithm

    def _resolve_biases(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Optional[Sequence[float]],
    ) -> np.ndarray:
        if biases is not None:
            resolved = np.asarray(biases, dtype=float)
            if resolved.shape != (len(epochs),):
                raise ConfigurationError(
                    f"biases must be one per epoch: expected ({len(epochs)},), "
                    f"got {resolved.shape}"
                )
            return resolved
        if self._predictor is not None:
            return np.array(
                [self._predictor.predict_bias_meters(epoch.time) for epoch in epochs]
            )
        return np.zeros(len(epochs))

    def solve_stream(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Optional[Sequence[float]] = None,
    ) -> EngineResult:
        """Solve an arbitrary mixed-count epoch stream in one call.

        Parameters
        ----------
        epochs:
            The stream, in any satellite-count mix.  Every epoch needs
            at least 4 satellites.
        biases:
            Optional explicit per-epoch clock biases (meters) for
            DLO/DLG; defaults to the configured predictor, or zero for
            already clock-free pseudoranges.  Ignored by NR.

        Results come back aligned with the input: row ``i`` of
        ``positions`` answers ``epochs[i]`` regardless of how the
        stream was bucketed internally.
        """
        epochs = list(epochs)
        if not epochs:
            raise GeometryError("solve_stream needs at least one epoch")
        stream_biases = self._resolve_biases(epochs, biases)

        buckets = bucket_epochs(epochs)
        too_small = [b.satellite_count for b in buckets if b.satellite_count < 4]
        if too_small:
            raise GeometryError(
                f"stream contains epochs with fewer than 4 satellites "
                f"(counts {too_small}); filter or augment them before solving"
            )

        position_blocks = []
        bias_blocks = []
        for bucket in buckets:
            if self._algorithm == "nr":
                record = self._nr.solve_batch_full(bucket.epochs)
                if not np.all(record.converged):
                    stuck = [
                        bucket.indices[i]
                        for i in np.flatnonzero(~record.converged)
                    ]
                    raise GeometryError(
                        f"NR failed to converge for stream epochs {stuck}"
                    )
                position_blocks.append(record.positions)
                bias_blocks.append(record.clock_biases)
            else:
                bucket_biases = stream_biases[np.asarray(bucket.indices, dtype=int)]
                solver = self._dlo if self._algorithm == "dlo" else self._dlg
                position_blocks.append(solver.solve_batch(bucket.epochs, bucket_biases))
                bias_blocks.append(bucket_biases)

        return EngineResult(
            positions=scatter_bucket_results(buckets, position_blocks, len(epochs)),
            clock_biases=scatter_bucket_results(buckets, bias_blocks, len(epochs)),
            algorithm=self._algorithm,
            bucket_sizes={b.satellite_count: len(b) for b in buckets},
        )
