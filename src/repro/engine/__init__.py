"""High-throughput positioning engine (the bulk/service-scale path).

Three layers, composable but independently useful:

* :mod:`repro.engine.scheduler` — mixed-size batch scheduling: bucket
  an arbitrary epoch stream by satellite count so the stacked-tensor
  solvers of :mod:`repro.solvers.batch` apply, and scatter results back
  into stream order.
* :mod:`repro.engine.pipeline` — :class:`PositioningEngine`, the
  bucket-and-batch dispatcher: a whole mixed stream solved in a
  handful of vectorized calls (batched NR / DLO / DLG with the
  Sherman-Morrison covariance fast path).
* :mod:`repro.engine.parallel` — :class:`ParallelReplay`, chunked
  multi-core replay of long datasets through full
  :class:`~repro.core.receiver.GpsReceiver` pipelines.

Where :class:`~repro.core.receiver.GpsReceiver` is the *latency* path
(one epoch at a time, adaptive), this package is the *throughput* path
(epochs by the thousand, vectorized and parallel) — the workload shape
of the ROADMAP's production-scale service.
"""

from repro.engine.scheduler import (
    EpochBucket,
    bucket_epochs,
    scatter_bucket_results,
)
from repro.engine.pipeline import EngineDiagnostics, EngineResult, PositioningEngine
from repro.engine.parallel import ParallelReplay

__all__ = [
    "EpochBucket",
    "bucket_epochs",
    "scatter_bucket_results",
    "EngineDiagnostics",
    "EngineResult",
    "PositioningEngine",
    "ParallelReplay",
]
