"""Chunked multi-core replay of epoch streams through full receivers.

The batch engine vectorizes the *solve*; this module parallelizes the
*pipeline*.  Replaying a day-long dataset through
:class:`~repro.core.receiver.GpsReceiver` is embarrassingly parallel
at chunk granularity: the receiver's only cross-epoch state is the
clock-bias predictor, which warms up from the data itself in a few
tens of epochs — so splitting the stream into contiguous chunks and
giving each worker a fresh receiver reproduces the serial replay
except for the per-chunk warm-up seam (those epochs are answered by
NR, exactly as the serial receiver answers its own warm-up).

Backends: ``"process"`` sidesteps the GIL for true multi-core scaling
(epochs and fixes pickle cleanly — frozen dataclasses of numpy
arrays); ``"thread"`` avoids process spawn overhead and suffices when
the workload is dominated by numpy calls that release the GIL.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.core.receiver import GpsReceiver
from repro.core.types import PositionFix
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch


def _replay_chunk(
    receiver_kwargs: Dict,
    epochs: Sequence[ObservationEpoch],
) -> List[PositionFix]:
    """Worker entry point: fresh receiver, one contiguous chunk.

    Module-level so the process backend can pickle it.
    """
    receiver = GpsReceiver(**receiver_kwargs)
    return receiver.process_many(epochs)


class ParallelReplay:
    """Replay an epoch stream through receivers on a worker pool.

    Parameters
    ----------
    receiver_kwargs:
        Keyword arguments for each worker's
        :class:`~repro.core.receiver.GpsReceiver` (e.g.
        ``{"algorithm": "dlg", "clock_mode": "steering"}``).  Must be
        picklable for the process backend.
    workers:
        Pool size; defaults to the machine's CPU count.
    backend:
        ``"process"`` (default; true multi-core) or ``"thread"``.
    chunk_size:
        Epochs per chunk.  Defaults to an even split into ``workers``
        chunks.  Each chunk pays its own clock warm-up, so chunks
        should stay much longer than ``warmup_epochs`` — hundreds to
        thousands of epochs, the natural shape for day-long replays.
    """

    def __init__(
        self,
        receiver_kwargs: Optional[Dict] = None,
        workers: Optional[int] = None,
        backend: str = "process",
        chunk_size: Optional[int] = None,
    ) -> None:
        if backend not in ("process", "thread"):
            raise ConfigurationError(
                f"backend must be 'process' or 'thread', got {backend!r}"
            )
        resolved_workers = workers if workers is not None else os.cpu_count() or 1
        if resolved_workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        self._receiver_kwargs = dict(receiver_kwargs or {})
        # Validate eagerly so a bad configuration fails here, not
        # inside a worker where the traceback is harder to read.
        GpsReceiver(**self._receiver_kwargs)
        self._workers = int(resolved_workers)
        self._backend = backend
        self._chunk_size = chunk_size

    @property
    def workers(self) -> int:
        """The configured pool size."""
        return self._workers

    @property
    def backend(self) -> str:
        """The configured executor backend."""
        return self._backend

    def _chunks(self, epochs: List[ObservationEpoch]) -> List[List[ObservationEpoch]]:
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            size = max(1, -(-len(epochs) // self._workers))  # ceil division
        return [epochs[i : i + size] for i in range(0, len(epochs), size)]

    def replay(self, epochs: Sequence[ObservationEpoch]) -> List[PositionFix]:
        """Replay the stream, returning fixes in stream order.

        A single chunk (or a single worker) short-circuits the pool
        entirely, so the degenerate configuration costs nothing beyond
        the serial replay it is equivalent to.
        """
        epochs = list(epochs)
        if not epochs:
            raise ConfigurationError("cannot replay an empty epoch stream")
        chunks = self._chunks(epochs)
        if len(chunks) == 1 or self._workers == 1:
            return _replay_chunk(self._receiver_kwargs, epochs)

        executor_cls = (
            ProcessPoolExecutor if self._backend == "process" else ThreadPoolExecutor
        )
        with executor_cls(max_workers=self._workers) as pool:
            futures = [
                pool.submit(_replay_chunk, self._receiver_kwargs, chunk)
                for chunk in chunks
            ]
            fixes: List[PositionFix] = []
            for future in futures:
                fixes.extend(future.result())
        return fixes
