"""Chunked multi-core replay of epoch streams through full receivers.

The batch engine vectorizes the *solve*; this module parallelizes the
*pipeline*.  Replaying a day-long dataset through
:class:`~repro.core.receiver.GpsReceiver` is embarrassingly parallel
at chunk granularity: the receiver's only cross-epoch state is the
clock-bias predictor, which warms up from the data itself in a few
tens of epochs — so splitting the stream into contiguous chunks and
giving each worker a fresh receiver reproduces the serial replay
except for the per-chunk warm-up seam (those epochs are answered by
NR, exactly as the serial receiver answers its own warm-up).

Backends: ``"process"`` sidesteps the GIL for true multi-core scaling
(epochs and fixes pickle cleanly — frozen dataclasses of numpy
arrays); ``"thread"`` avoids process spawn overhead and suffices when
the workload is dominated by numpy calls that release the GIL.

Telemetry: each chunk's wall time and receiver counters are measured
*inside the worker* and shipped back with the fixes, so the parent's
installed registry/tracer see per-chunk spans, seam-epoch counts
(warm-up fixes paid by chunks after the first), and aggregate worker
utilization even on the process backend, where workers cannot share
the parent's registry.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.receiver import GpsReceiver
from repro.core.types import PositionFix
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch
from repro.telemetry import get_registry, get_tracer

_log = logging.getLogger(__name__)

#: Per-chunk wall-time histogram bounds (seconds).
_CHUNK_SECONDS_BUCKETS = (0.001, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0)


def _replay_chunk_timed(
    receiver_kwargs: Dict,
    epochs: Sequence[ObservationEpoch],
) -> Tuple[List[PositionFix], int, Dict[str, int]]:
    """Worker entry point: fresh receiver, one contiguous chunk.

    Returns ``(fixes, duration_ns, receiver_stats)``; module-level so
    the process backend can pickle it.  The duration is measured on
    the worker's own monotonic clock, so it is meaningful as an
    interval even across process boundaries.
    """
    receiver = GpsReceiver(**receiver_kwargs)
    start = time.perf_counter_ns()
    fixes = receiver.process_many(epochs)
    return fixes, time.perf_counter_ns() - start, receiver.stats


def _replay_chunk(
    receiver_kwargs: Dict,
    epochs: Sequence[ObservationEpoch],
) -> List[PositionFix]:
    """Untimed worker entry point (kept for compatibility)."""
    return _replay_chunk_timed(receiver_kwargs, epochs)[0]


class ParallelReplay:
    """Replay an epoch stream through receivers on a worker pool.

    Parameters
    ----------
    receiver_kwargs:
        Keyword arguments for each worker's
        :class:`~repro.core.receiver.GpsReceiver` (e.g.
        ``{"algorithm": "dlg", "clock_mode": "steering"}``).  Must be
        picklable for the process backend.
    workers:
        Pool size; defaults to the machine's CPU count.
    backend:
        ``"process"`` (default; true multi-core) or ``"thread"``.
    chunk_size:
        Epochs per chunk.  Defaults to an even split into ``workers``
        chunks.  Each chunk pays its own clock warm-up, so chunks
        should stay much longer than ``warmup_epochs`` — hundreds to
        thousands of epochs, the natural shape for day-long replays.
    """

    def __init__(
        self,
        receiver_kwargs: Optional[Dict] = None,
        workers: Optional[int] = None,
        backend: str = "process",
        chunk_size: Optional[int] = None,
    ) -> None:
        if backend not in ("process", "thread"):
            raise ConfigurationError(
                f"backend must be 'process' or 'thread', got {backend!r}"
            )
        resolved_workers = workers if workers is not None else os.cpu_count() or 1
        if resolved_workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError("chunk_size must be at least 1")
        self._receiver_kwargs = dict(receiver_kwargs or {})
        # Validate eagerly so a bad configuration fails here, not
        # inside a worker where the traceback is harder to read.
        GpsReceiver(**self._receiver_kwargs)
        self._workers = int(resolved_workers)
        self._backend = backend
        self._chunk_size = chunk_size

    @property
    def workers(self) -> int:
        """The configured pool size."""
        return self._workers

    @property
    def backend(self) -> str:
        """The configured executor backend."""
        return self._backend

    def _chunks(self, epochs: List[ObservationEpoch]) -> List[List[ObservationEpoch]]:
        if self._chunk_size is not None:
            size = self._chunk_size
        else:
            size = max(1, -(-len(epochs) // self._workers))  # ceil division
        return [epochs[i : i + size] for i in range(0, len(epochs), size)]

    def replay(self, epochs: Sequence[ObservationEpoch]) -> List[PositionFix]:
        """Replay the stream, returning fixes in stream order.

        A single chunk (or a single worker) short-circuits the pool
        entirely, so the degenerate configuration costs nothing beyond
        the serial replay it is equivalent to.
        """
        epochs = list(epochs)
        if not epochs:
            raise ConfigurationError("cannot replay an empty epoch stream")
        chunks = self._chunks(epochs)

        wall_start = time.perf_counter_ns()
        if len(chunks) == 1 or self._workers == 1:
            outcomes = [
                _replay_chunk_timed(self._receiver_kwargs, chunk) for chunk in chunks
            ]
        else:
            executor_cls = (
                ProcessPoolExecutor if self._backend == "process" else ThreadPoolExecutor
            )
            with executor_cls(max_workers=self._workers) as pool:
                futures = [
                    pool.submit(_replay_chunk_timed, self._receiver_kwargs, chunk)
                    for chunk in chunks
                ]
                outcomes = [future.result() for future in futures]
        wall_ns = time.perf_counter_ns() - wall_start

        registry = get_registry()
        if registry.enabled:
            self._record_replay(registry, get_tracer(), outcomes, wall_ns)

        fixes: List[PositionFix] = []
        for chunk_fixes, _duration_ns, _stats in outcomes:
            fixes.extend(chunk_fixes)
        return fixes

    def _record_replay(self, registry, tracer, outcomes, wall_ns: int) -> None:
        """Replay-level telemetry from per-chunk worker measurements.

        Chunks after the first pay a warm-up *seam*: their leading
        epochs are answered by NR while a fresh clock predictor trains,
        where the serial replay would already be in steady state.  The
        first chunk's warm-up matches the serial receiver's own, so it
        is not a seam cost.
        """
        busy_ns = 0
        seam_epochs = 0
        for index, (chunk_fixes, duration_ns, stats) in enumerate(outcomes):
            busy_ns += duration_ns
            if index > 0:
                seam_epochs += stats.get("warmup_fixes", 0)
            tracer.record(
                "replay.chunk",
                duration_ns,
                index=index,
                epochs=len(chunk_fixes),
                warmup_fixes=stats.get("warmup_fixes", 0),
                fallbacks=stats.get("fallbacks", 0),
            )
            registry.histogram(
                "repro_replay_chunk_seconds",
                "Per-chunk wall time inside the worker.",
                buckets=_CHUNK_SECONDS_BUCKETS,
            ).observe(duration_ns / 1e9)
        registry.counter(
            "repro_replay_chunks_total", "Chunks replayed.",
        ).inc(len(outcomes))
        registry.counter(
            "repro_replay_epochs_total", "Epochs replayed.",
        ).inc(sum(len(chunk_fixes) for chunk_fixes, _, _ in outcomes))
        registry.counter(
            "repro_replay_seam_epochs_total",
            "Warm-up epochs paid at chunk seams (chunks after the first).",
        ).inc(seam_epochs)
        # Utilization: worker busy time over the capacity the pool had
        # during the replay.  1.0 means every worker computed the whole
        # wall time; low values mean stragglers or spawn overhead.
        capacity = min(self._workers, len(outcomes)) * max(wall_ns, 1)
        registry.gauge(
            "repro_replay_worker_utilization",
            "Busy-time fraction of the pool during the last replay.",
        ).set(min(1.0, busy_ns / capacity))
        if seam_epochs:
            _log.debug(
                "replay paid %d seam warm-up epochs across %d chunks",
                seam_epochs,
                len(outcomes),
            )
