"""Mixed-size batch scheduling: bucket epochs so stacked solvers apply.

The stacked-tensor solvers in :mod:`repro.solvers.batch` require every
epoch in a batch to share a satellite count — but a real observation
stream (a day of station data, a fleet of rovers) mixes counts freely
as satellites rise and set.  The scheduler closes that gap: it buckets
a stream by satellite count *while remembering where each epoch came
from*, so bucket results can be scattered back into the original
stream order.  Bucketing is O(N) and allocation-light; it is the only
bookkeeping between an arbitrary stream and a fully vectorized solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch


@dataclass(frozen=True)
class EpochBucket:
    """Same-satellite-count epochs with their original stream indices.

    Attributes
    ----------
    satellite_count:
        The shared satellite count ``m`` of every epoch in the bucket.
    indices:
        Positions of these epochs in the original stream, in stream
        order — the scatter key for reassembling results.
    epochs:
        The epochs themselves, aligned with ``indices``.
    """

    satellite_count: int
    indices: Tuple[int, ...]
    epochs: Tuple[ObservationEpoch, ...]

    def __len__(self) -> int:
        return len(self.epochs)


def bucket_epochs(epochs: Sequence[ObservationEpoch]) -> List[EpochBucket]:
    """Bucket a mixed stream by satellite count, preserving provenance.

    Returns buckets sorted by satellite count (deterministic dispatch
    order); within each bucket epochs keep their relative stream order.
    """
    by_count: "dict[int, List[int]]" = {}
    for index, epoch in enumerate(epochs):
        by_count.setdefault(epoch.satellite_count, []).append(index)
    return [
        EpochBucket(
            satellite_count=count,
            indices=tuple(indices),
            epochs=tuple(epochs[i] for i in indices),
        )
        for count, indices in sorted(by_count.items())
    ]


def scatter_bucket_results(
    buckets: Sequence[EpochBucket],
    results: Sequence[np.ndarray],
    total: int,
    allow_partial: bool = False,
) -> np.ndarray:
    """Reassemble per-bucket result rows into original stream order.

    Parameters
    ----------
    buckets:
        The buckets produced by :func:`bucket_epochs`.
    results:
        One array per bucket, first dimension aligned with the
        bucket's epochs (e.g. ``(len(bucket), 3)`` positions).
    total:
        Length of the original stream; every index ``0..total-1`` must
        be covered exactly once (unless ``allow_partial``).
    allow_partial:
        When true, stream positions no bucket covers are filled with
        NaN instead of raising — the shape the engine needs when it
        drops undersized epochs rather than rejecting the stream.
        Overlapping coverage is still an error.

    Returns
    -------
    An array of shape ``(total, ...)`` where row ``i`` is the result
    for stream epoch ``i``.
    """
    if len(buckets) != len(results):
        raise ConfigurationError(
            f"{len(buckets)} buckets but {len(results)} result arrays"
        )
    filled = np.zeros(total, dtype=bool)
    output = None
    for bucket, rows in zip(buckets, results):
        rows = np.asarray(rows)
        if rows.shape[0] != len(bucket):
            raise ConfigurationError(
                f"bucket of {len(bucket)} epochs got {rows.shape[0]} result rows"
            )
        if output is None:
            dtype = np.result_type(rows.dtype, float) if allow_partial else rows.dtype
            output = np.empty((total,) + rows.shape[1:], dtype=dtype)
            if allow_partial:
                output.fill(np.nan)
        indices = np.asarray(bucket.indices, dtype=int)
        if (
            np.any(indices < 0)
            or np.any(indices >= total)
            or np.any(filled[indices])
            or np.unique(indices).size != indices.size
        ):
            raise ConfigurationError(
                "bucket indices must cover the stream without overlap"
            )
        filled[indices] = True
        output[indices] = rows
    if allow_partial:
        if output is None:
            return np.full(total, np.nan)
        return output
    if output is None or not np.all(filled):
        raise ConfigurationError(
            "bucket indices do not cover every stream position"
        )
    return output
