"""Velocity estimation from Doppler range rates.

The natural companion of the paper's fast position solvers for the
moving-receiver use case: each visible satellite's Doppler gives one
linear equation in the receiver velocity and clock drift,

    rate_i = (v_sat_i - v) . u_i + c * drift

(``u_i`` the unit line of sight from receiver to satellite).  Unlike
the position problem this system is *already linear*, so one OLS solve
suffices — there is no iterative/closed-form tradeoff to make, and the
solver slots into the same per-epoch budget as DLO/DLG.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import ConfigurationError, EstimationError, GeometryError
from repro.estimation import ols_solve
from repro.observations import ObservationEpoch
from repro.utils.validation import require_shape


@dataclass(frozen=True)
class VelocityFix:
    """One solved velocity.

    Attributes
    ----------
    velocity:
        Receiver ECEF velocity (m/s).
    clock_drift_mps:
        Receiver clock drift expressed as a range rate, ``c * d(dt)/dt``
        (m/s) — the velocity-domain analogue of ``eps_R``.
    satellites_used:
        Number of Doppler measurements in the solution.
    residual_norm:
        Norm of the range-rate residuals (m/s).
    """

    velocity: np.ndarray
    clock_drift_mps: float
    satellites_used: int
    residual_norm: float

    def __post_init__(self) -> None:
        velocity = np.asarray(self.velocity, dtype=float)
        if velocity.shape != (3,) or not np.all(np.isfinite(velocity)):
            raise ConfigurationError("velocity must be a finite 3-vector")
        object.__setattr__(self, "velocity", velocity)

    @property
    def speed(self) -> float:
        """Speed over ground+vertical, ``||velocity||`` (m/s)."""
        return float(np.linalg.norm(self.velocity))


class VelocitySolver:
    """Least-squares receiver velocity from one epoch's range rates.

    Needs the receiver *position* (solve it first with any of the
    positioning algorithms) and an epoch whose observations carry
    ``range_rate`` and satellite ``velocity``.
    """

    name = "VEL"
    min_satellites = 4  # 3 velocity components + clock drift

    def solve(
        self,
        epoch: ObservationEpoch,
        receiver_position: np.ndarray,
    ) -> VelocityFix:
        """Estimate velocity + clock drift at one epoch."""
        receiver = require_shape("receiver_position", receiver_position, (3,))
        rows = []
        rates = []
        for observation in epoch.observations:
            if observation.range_rate is None or observation.velocity is None:
                continue
            delta = observation.position - receiver
            distance = float(np.linalg.norm(delta))
            if distance < 1.0:
                raise GeometryError(
                    f"satellite PRN {observation.prn} coincides with the receiver"
                )
            unit = delta / distance
            # rate = v_sat . u - v . u + c*drift
            rows.append(np.concatenate([-unit, [1.0]]))
            rates.append(observation.range_rate - float(observation.velocity @ unit))

        if len(rates) < self.min_satellites:
            raise GeometryError(
                f"velocity solution needs {self.min_satellites} Doppler "
                f"measurements, epoch has {len(rates)}"
            )

        design = np.vstack(rows)
        observations = np.asarray(rates)
        try:
            solution = ols_solve(design, observations)
        except EstimationError as exc:
            raise GeometryError(f"degenerate Doppler geometry: {exc}") from exc
        residuals = observations - design @ solution
        return VelocityFix(
            velocity=solution[:3],
            clock_drift_mps=float(solution[3]),
            satellites_used=len(rates),
            residual_norm=float(np.linalg.norm(residuals)),
        )
