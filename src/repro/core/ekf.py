"""Extended Kalman filter navigation (the sequential alternative).

The paper compares two *snapshot* philosophies — iterative NR vs.
closed-form DLO/DLG — but production receivers usually run a
*sequential* navigation filter that carries state between epochs.
This module provides that third point of comparison: an 8-state EKF

    state = [x, y, z, vx, vy, vz, b, bdot]

(position, velocity, clock bias in meters, clock drift in m/s) with a
constant-velocity process model, measurement updates from pseudoranges
(and optionally Doppler range rates), and innovation gating.

Where it fits against the paper's methods:

* Per-epoch cost is one predict + one linearized update — comparable
  to a single NR iteration, i.e. cheaper than full NR but more than
  DLO/DLG.
* Accuracy on smooth trajectories beats any snapshot method because
  the state average noise over time; the price is lag after abrupt
  maneuvers (tunable via the process noise).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.solvers.newton_raphson import NewtonRaphsonSolver
from repro.core.types import PositionFix
from repro.errors import ConfigurationError, ConvergenceError, GeometryError
from repro.observations import ObservationEpoch


class NavigationEkf:
    """8-state GNSS navigation filter.

    Parameters
    ----------
    position_process_noise:
        Acceleration spectral density (m^2/s^3) driving the velocity
        random walk; raise for agile vehicles, lower for static
        receivers.
    clock_bias_noise, clock_drift_noise:
        Oscillator spectral densities (m^2/s and m^2/s^3 in range
        units), the classic two-state clock model.
    pseudorange_sigma, range_rate_sigma:
        Measurement standard deviations (m, m/s).
    innovation_gate_sigmas:
        Per-measurement chi gate: innovations beyond this many sigmas
        are rejected (fault tolerance at filter level).
    """

    def __init__(
        self,
        position_process_noise: float = 1.0,
        clock_bias_noise: float = 1e-2,
        clock_drift_noise: float = 1e-4,
        pseudorange_sigma: float = 3.0,
        range_rate_sigma: float = 0.1,
        innovation_gate_sigmas: float = 6.0,
    ) -> None:
        for name, value in (
            ("position_process_noise", position_process_noise),
            ("clock_bias_noise", clock_bias_noise),
            ("clock_drift_noise", clock_drift_noise),
            ("pseudorange_sigma", pseudorange_sigma),
            ("range_rate_sigma", range_rate_sigma),
            ("innovation_gate_sigmas", innovation_gate_sigmas),
        ):
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive")
        self._qa = float(position_process_noise)
        self._qb = float(clock_bias_noise)
        self._qd = float(clock_drift_noise)
        self._sigma_rho = float(pseudorange_sigma)
        self._sigma_rate = float(range_rate_sigma)
        self._gate = float(innovation_gate_sigmas)

        self._state: Optional[np.ndarray] = None  # (8,)
        self._covariance: Optional[np.ndarray] = None  # (8, 8)
        self._last_time: Optional[float] = None
        self._epochs_processed = 0
        self._rejected_measurements = 0
        self._nr = NewtonRaphsonSolver()

    # ------------------------------------------------------------------
    @property
    def is_initialized(self) -> bool:
        """Whether the filter carries a state."""
        return self._state is not None

    @property
    def state(self) -> Optional[np.ndarray]:
        """Current state ``[x, y, z, vx, vy, vz, b, bdot]`` (copy)."""
        return None if self._state is None else self._state.copy()

    @property
    def velocity(self) -> Optional[np.ndarray]:
        """Current velocity estimate (m/s), or ``None`` pre-init."""
        return None if self._state is None else self._state[3:6].copy()

    @property
    def rejected_measurements(self) -> int:
        """Measurements discarded by the innovation gate so far."""
        return self._rejected_measurements

    def reset(self) -> None:
        """Forget all state (e.g. after a long outage)."""
        self._state = None
        self._covariance = None
        self._last_time = None

    # ------------------------------------------------------------------
    def process(self, epoch: ObservationEpoch) -> PositionFix:
        """Absorb one epoch; returns the filtered position fix.

        The first epoch initializes the filter from an NR snapshot fix
        (cold-starting an EKF from the earth center would take many
        epochs to converge); later epochs run predict + update.
        """
        if self._state is None:
            return self._initialize(epoch)

        t = epoch.time.to_gps_seconds()
        assert self._last_time is not None
        dt = t - self._last_time
        if dt < 0:
            raise ConfigurationError("epochs must be processed in time order")
        if dt > 0:
            self._predict(dt)
        self._last_time = t

        innovations = self._update(epoch)
        self._epochs_processed += 1
        assert self._state is not None
        return PositionFix(
            position=self._state[:3],
            clock_bias_meters=float(self._state[6]),
            algorithm="EKF",
            iterations=1,
            converged=True,
            residual_norm=float(np.linalg.norm(innovations)) if innovations.size else 0.0,
        )

    # ------------------------------------------------------------------
    def _initialize(self, epoch: ObservationEpoch) -> PositionFix:
        try:
            fix = self._nr.solve(epoch)
        except (GeometryError, ConvergenceError) as exc:
            raise GeometryError(f"EKF initialization failed: {exc}") from exc
        self._state = np.zeros(8)
        self._state[:3] = fix.position
        self._state[6] = fix.clock_bias_meters or 0.0

        # Velocity prior: solve it from Doppler when the epoch carries
        # range rates (a moving receiver initialized at rest with a
        # tight prior would gate out all its own Doppler innovations
        # and diverge); otherwise admit anything up to aircraft speeds.
        velocity_variance = 400.0**2
        drift_variance = 100.0**2
        try:
            from repro.core.velocity import VelocitySolver

            velocity_fix = VelocitySolver().solve(epoch, fix.position)
            self._state[3:6] = velocity_fix.velocity
            self._state[7] = velocity_fix.clock_drift_mps
            velocity_variance = 1.0
            drift_variance = 1.0
        except GeometryError:
            pass  # no usable Doppler: keep the wide prior

        self._covariance = np.diag(
            [100.0, 100.0, 100.0]
            + [velocity_variance] * 3
            + [100.0, drift_variance]
        )
        self._last_time = epoch.time.to_gps_seconds()
        self._epochs_processed += 1
        return PositionFix(
            position=fix.position,
            clock_bias_meters=fix.clock_bias_meters,
            algorithm="EKF",
            iterations=fix.iterations,
            converged=True,
            residual_norm=fix.residual_norm,
        )

    def _predict(self, dt: float) -> None:
        assert self._state is not None and self._covariance is not None
        transition = np.eye(8)
        for axis in range(3):
            transition[axis, 3 + axis] = dt
        transition[6, 7] = dt

        process = np.zeros((8, 8))
        qa = self._qa
        dt2, dt3 = dt * dt, dt * dt * dt
        for axis in range(3):
            process[axis, axis] = qa * dt3 / 3.0
            process[axis, 3 + axis] = process[3 + axis, axis] = qa * dt2 / 2.0
            process[3 + axis, 3 + axis] = qa * dt
        process[6, 6] = self._qb * dt + self._qd * dt3 / 3.0
        process[6, 7] = process[7, 6] = self._qd * dt2 / 2.0
        process[7, 7] = self._qd * dt

        self._state = transition @ self._state
        self._covariance = transition @ self._covariance @ transition.T + process

    def _update(self, epoch: ObservationEpoch) -> np.ndarray:
        """Sequential scalar updates (numerically simple and gate-friendly)."""
        assert self._state is not None and self._covariance is not None
        innovations = []
        for observation in epoch.observations:
            # Pseudorange update.
            innovations.append(
                self._scalar_update(
                    observation.position,
                    observation.pseudorange,
                    kind="pseudorange",
                )
            )
            # Optional Doppler update.
            if observation.range_rate is not None and observation.velocity is not None:
                innovations.append(
                    self._scalar_update(
                        observation.position,
                        observation.range_rate,
                        kind="range_rate",
                        satellite_velocity=observation.velocity,
                    )
                )
        return np.array([value for value in innovations if value is not None])

    def _scalar_update(
        self,
        satellite_position: np.ndarray,
        measurement: float,
        kind: str,
        satellite_velocity: Optional[np.ndarray] = None,
    ) -> Optional[float]:
        assert self._state is not None and self._covariance is not None
        delta = satellite_position - self._state[:3]
        distance = float(np.linalg.norm(delta))
        if distance < 1.0:
            raise GeometryError("satellite coincides with the EKF state")
        unit = delta / distance

        jacobian = np.zeros(8)
        if kind == "pseudorange":
            predicted = distance + self._state[6]
            jacobian[:3] = -unit
            jacobian[6] = 1.0
            sigma = self._sigma_rho
        else:
            assert satellite_velocity is not None
            relative_velocity = satellite_velocity - self._state[3:6]
            predicted = float(relative_velocity @ unit) + self._state[7]
            jacobian[3:6] = -unit
            jacobian[7] = 1.0
            sigma = self._sigma_rate

        innovation = measurement - predicted
        variance = float(jacobian @ self._covariance @ jacobian) + sigma * sigma
        if abs(innovation) > self._gate * np.sqrt(variance):
            self._rejected_measurements += 1
            return None

        gain = (self._covariance @ jacobian) / variance
        self._state = self._state + gain * innovation
        identity = np.eye(8)
        self._covariance = (
            identity - np.outer(gain, jacobian)
        ) @ self._covariance
        return innovation
