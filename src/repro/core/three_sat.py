"""Three-satellite positioning with a precise (predicted) clock.

The paper's related work (Section 2) cites Sturza [30]: with precise
clock time "only three satellites are needed to calculate a position",
and Misra [27]: the precise clock "could bring additional benefits on
vertical position accuracy".  This solver realizes that mode on top of
the same clock-bias prediction machinery DLO/DLG use: once
``eps_hat_R`` is removed, the three range equations

    ||s_i - x|| = rho_E_i,   i = 1..3

intersect in (generically) two points, found in closed form:

1. Subtracting equation 1 from 2 and 3 kills the quadratic terms and
   constrains ``x`` to a *line* (two linear equations in three
   unknowns).
2. Substituting the line ``x = x0 + t n`` into equation 1 leaves a
   scalar quadratic in ``t``.
3. Of the two roots, the physical one has a geocentric radius
   plausible for a terrestrial receiver (the same disambiguation
   Bancroft needs; Section 3.1's "the physical meaning of the
   equations usually results in only one solution").  When the
   satellite plane passes near the earth's center, *both* intersection
   points can be at plausible radii — then only prior knowledge can
   decide, so the solver takes an optional ``prior_position`` (last
   fix, dead reckoning) and raises otherwise rather than guessing.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.clocks.prediction import ClockBiasPredictor, ZeroClockBiasPredictor
from repro.core.base import PositioningAlgorithm
from repro.solvers.direct_linear import build_difference_system
from repro.core.types import PositionFix
from repro.errors import GeometryError
from repro.observations import ObservationEpoch

#: Geocentric radius band (m) for the physical root, matching the
#: Bancroft solver's convention.
_PLAUSIBLE_RADIUS = (6.0e6, 7.5e6)


class ThreeSatelliteSolver(PositioningAlgorithm):
    """Closed-form fix from exactly three satellites + predicted clock.

    Epochs with more than three satellites are solved from their first
    three observations (callers wanting to exploit extra satellites
    should use DLO/DLG, which this solver complements at the m=3 corner
    where they cannot operate).
    """

    name = "3SAT"
    min_satellites = 3

    def __init__(
        self,
        clock_predictor: Optional[ClockBiasPredictor] = None,
        prior_position: Optional[np.ndarray] = None,
    ) -> None:
        #: The ``eps_hat_R`` source; defaults to the zero predictor for
        #: clock-free (e.g. DGPS-corrected) pseudoranges.
        self.clock_predictor = (
            clock_predictor if clock_predictor is not None else ZeroClockBiasPredictor()
        )
        #: Optional approximate receiver position (meters, ECEF) used to
        #: break the two-root ambiguity when both roots are plausible.
        self.prior_position = (
            None
            if prior_position is None
            else np.asarray(prior_position, dtype=float).copy()
        )

    def solve(self, epoch: ObservationEpoch) -> PositionFix:
        self._require_satellites(epoch)
        bias = float(self.clock_predictor.predict_bias_meters(epoch.time))
        positions = epoch.satellite_positions()[:3]
        corrected = epoch.pseudoranges()[:3] - bias
        if np.any(corrected <= 0):
            raise GeometryError(
                "clock-corrected pseudoranges are non-positive; the clock "
                "bias prediction is grossly wrong for this epoch"
            )

        # Step 1: the two differenced linear equations (eq. 4-7 with m=3).
        design, rhs = build_difference_system(positions, corrected)  # (2,3), (2,)

        # Step 2: parameterize the solution line x = x0 + t n.
        # x0: minimum-norm solution of the under-determined system;
        # n: unit null-space direction of the 2x3 design.
        try:
            x0, *_rest = np.linalg.lstsq(design, rhs, rcond=None)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - lstsq rarely raises
            raise GeometryError("degenerate three-satellite geometry") from exc
        _u, singular_values, vt = np.linalg.svd(design)
        if singular_values.min() < 1e-6 * singular_values.max():
            raise GeometryError(
                "the three satellites are collinear as seen in the "
                "difference system; no unique solution line exists"
            )
        direction = vt[-1]  # unit null vector

        # Step 3: ||x0 + t n - s1||^2 = rho_1^2  ->  quadratic in t.
        offset = x0 - positions[0]
        a = 1.0  # |n| = 1
        b = 2.0 * float(offset @ direction)
        c = float(offset @ offset) - float(corrected[0]) ** 2
        discriminant = b * b - 4.0 * a * c
        if discriminant < 0:
            raise GeometryError(
                "the three range spheres do not intersect; measurements "
                "are inconsistent (bad clock prediction or corrupt ranges)"
            )
        sqrt_disc = math.sqrt(discriminant)
        # Cancellation-free quadratic roots (a = 1).
        q = -0.5 * (b + math.copysign(sqrt_disc, b) if b != 0.0 else -sqrt_disc)
        if q != 0.0:
            roots = [c / q, q / a]
        else:
            roots = [0.0]  # b = 0 and discriminant = 0: double root at 0

        candidates = []
        for t in roots:
            point = x0 + t * direction
            radius = float(np.linalg.norm(point))
            plausible = _PLAUSIBLE_RADIUS[0] <= radius <= _PLAUSIBLE_RADIUS[1]
            residual = abs(float(np.linalg.norm(point - positions[0])) - corrected[0])
            candidates.append((plausible, residual, point))

        plausible_points = [c for c in candidates if c[0]]
        if len(plausible_points) > 1 and len(roots) > 1:
            # Geometric ambiguity: both intersection points could be a
            # real receiver.  Fall back to the prior, or refuse.
            if self.prior_position is None:
                raise GeometryError(
                    "both three-sphere intersection points have plausible "
                    "geocentric radii; supply prior_position to "
                    "disambiguate (or use four satellites)"
                )
            plausible_points.sort(
                key=lambda c: float(np.linalg.norm(c[2] - self.prior_position))
            )
            _plausible, residual, point = plausible_points[0]
        elif plausible_points:
            _plausible, residual, point = plausible_points[0]
        else:
            # Neither root looks terrestrial: return the smaller-residual
            # root rather than failing (caller sees the radius).
            candidates.sort(key=lambda c: c[1])
            _plausible, residual, point = candidates[0]

        return PositionFix(
            position=point,
            clock_bias_meters=bias,
            algorithm=self.name,
            iterations=1,
            converged=True,
            residual_norm=residual,
        )
