"""End-to-end receiver pipeline (the library's main public entry point).

Ties together everything Section 4 and 5.2.2 describe operationally:

* a **warm-up** phase where epochs are solved with NR and the solved
  clock biases train the clock-bias predictor (eq. 5-4 bootstrap, "a
  small set of data items at the initialization time is used" for the
  drift);
* a **steady state** where the configured closed-form algorithm
  (DLO or DLG) runs with the predicted bias;
* periodic **recalibration** NR solves that keep feeding the predictor
  so threshold-clock resets are detected and absorbed;
* a **residual gate**: a clock reset between recalibrations makes the
  predicted bias wrong by up to ``c * threshold`` (kilometers), which
  blows up the closed-form residuals by orders of magnitude; the
  receiver detects the jump against a running residual history,
  recalibrates with NR immediately, and re-solves the epoch;
* a **fallback**: if the closed-form solve rejects the epoch outright,
  the receiver transparently answers with an NR fix and retrains.

Typical use::

    receiver = GpsReceiver(algorithm="dlg", clock_mode="threshold")
    for epoch in dataset.epochs():
        fix = receiver.process(epoch)
"""

from __future__ import annotations

import logging
import math
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional

from repro.clocks.prediction import ClockBiasPredictor, LinearClockBiasPredictor
from repro.core.base import PositioningAlgorithm
from repro.solvers.bancroft import BancroftSolver
from repro.solvers.direct_linear import DLGSolver, DLOSolver
from repro.solvers.newton_raphson import NewtonRaphsonSolver
from repro.core.selection import BaseSatelliteSelector
from repro.core.types import PositionFix
from repro.errors import ConfigurationError, ConvergenceError, GeometryError
from repro.observations import ObservationEpoch, epoch_integrity_error
from repro.telemetry import get_registry

if TYPE_CHECKING:
    from repro.integrity.health import SatelliteHealthTracker
    from repro.integrity.raim import RaimMonitor

_log = logging.getLogger(__name__)

#: Buckets for the iterations-to-convergence histogram: NR typically
#: converges in 4-6 iterations from the cold start, 1-2 warm.
_ITERATION_BUCKETS = (1, 2, 3, 4, 5, 6, 7, 8, 10, 15, 20)


class GpsReceiver:
    """A complete positioning pipeline around one algorithm choice.

    Parameters
    ----------
    algorithm:
        ``"nr"``, ``"dlo"``, ``"dlg"``, or ``"bancroft"``.
    clock_mode:
        ``"steering"`` or ``"threshold"`` — must match the station's
        clock correction type (Table 5.1) when using DLO/DLG.
    warmup_epochs:
        NR-solved epochs used to fit the clock model before switching
        to the closed-form algorithm.
    recalibration_interval:
        In steady state, run a parallel NR solve every this many epochs
        and feed its bias to the predictor (reset detection).  ``0``
        disables recalibration (pure open-loop prediction).
    predictor:
        Optional externally built clock-bias predictor (e.g. a
        :class:`~repro.clocks.kalman.KalmanClockBiasPredictor`);
        overrides ``clock_mode``/``warmup_epochs``.
    base_selector:
        Optional base-satellite strategy for the difference system.
    nr_solver:
        Optional pre-configured NR instance (warm starts, tolerances).
    raim_sigma_meters:
        When set, every steady-state epoch with enough redundancy runs
        through a :class:`~repro.integrity.raim.RaimMonitor` built
        around the configured solver with this residual sigma — faults
        are detected and excluded transparently.  Only valid with
        ``nr`` and ``dlg`` (whose residual norms are chi-square
        scaled); DLO's raw differenced residuals are not.
    health_tracker:
        Optional shared
        :class:`~repro.integrity.health.SatelliteHealthTracker`.
        Quarantined satellites are pre-excluded from each epoch before
        solving, and RAIM exclusions/clean passes feed the tracker so
        persistently faulty satellites stop paying the per-epoch
        exclusion search.  Useful standalone, or shared with an async
        service so both paths agree on satellite health.
    """

    def __init__(
        self,
        algorithm: str = "dlg",
        clock_mode: str = "steering",
        warmup_epochs: int = 30,
        recalibration_interval: int = 60,
        predictor: Optional[ClockBiasPredictor] = None,
        base_selector: Optional[BaseSatelliteSelector] = None,
        nr_solver: Optional[NewtonRaphsonSolver] = None,
        raim_sigma_meters: Optional[float] = None,
        health_tracker: Optional["SatelliteHealthTracker"] = None,
    ) -> None:
        algorithm = algorithm.lower()
        if algorithm not in ("nr", "dlo", "dlg", "bancroft"):
            raise ConfigurationError(
                f"algorithm must be one of nr/dlo/dlg/bancroft, got {algorithm!r}"
            )
        if recalibration_interval < 0:
            raise ConfigurationError("recalibration_interval must be >= 0")

        self._algorithm_name = algorithm
        self._nr = nr_solver if nr_solver is not None else NewtonRaphsonSolver()
        if predictor is not None:
            self._predictor = predictor
        else:
            self._predictor = LinearClockBiasPredictor(
                mode=clock_mode, warmup_samples=warmup_epochs
            )
        self._recalibration_interval = int(recalibration_interval)

        self._solver: PositioningAlgorithm
        if algorithm == "nr":
            self._solver = self._nr
        elif algorithm == "bancroft":
            self._solver = BancroftSolver()
        elif algorithm == "dlo":
            self._solver = DLOSolver(self._predictor, base_selector)
        else:
            self._solver = DLGSolver(self._predictor, base_selector)

        self._raim: Optional["RaimMonitor"] = None
        if raim_sigma_meters is not None:
            if algorithm not in ("nr", "dlg"):
                raise ConfigurationError(
                    "RAIM integration requires chi-square-scaled residuals: "
                    "use algorithm='nr' or 'dlg'"
                )
            from repro.integrity.raim import RaimMonitor

            self._raim = RaimMonitor(
                solver=self._solver, sigma_meters=raim_sigma_meters
            )
        self._health = health_tracker

        self._epochs_processed = 0
        #: Recent closed-form residual norms; a new residual far above
        #: this history signals a stale clock prediction (clock reset).
        self._residual_history: Deque[float] = deque(maxlen=40)
        #: How many times above the running median residual counts as
        #: anomalous.  The bias error at a 1 ms reset inflates residuals
        #: by ~4 orders of magnitude, so 50x has huge margin both ways.
        self._residual_gate_factor = 50.0
        self._stats: Dict[str, int] = {
            "warmup_fixes": 0,
            "closed_form_fixes": 0,
            "nr_fixes": 0,
            "recalibrations": 0,
            "fallbacks": 0,
            "residual_gate_trips": 0,
            "residual_gate_recoveries": 0,
            "raim_exclusions": 0,
            "raim_unrepaired": 0,
            "rejected_epochs": 0,
            "health_preexclusions": 0,
        }

    # ------------------------------------------------------------------
    @property
    def algorithm(self) -> str:
        """The configured algorithm name."""
        return self._algorithm_name

    @property
    def predictor(self) -> ClockBiasPredictor:
        """The clock-bias predictor in use."""
        return self._predictor

    @property
    def stats(self) -> Dict[str, int]:
        """Pipeline counters (copies; safe to mutate)."""
        return dict(self._stats)

    @property
    def epochs_processed(self) -> int:
        """Total epochs seen by :meth:`process`."""
        return self._epochs_processed

    # ------------------------------------------------------------------
    def _event(self, name: str) -> None:
        """Bump a pipeline counter, mirrored into the metrics registry."""
        self._stats[name] += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_receiver_events_total",
                "GpsReceiver pipeline events by type.",
                labels=("event",),
            ).labels(event=name).inc()

    def _nr_fix(self, epoch: ObservationEpoch) -> PositionFix:
        """One NR solve, with iteration telemetry."""
        fix = self._nr.solve(epoch)
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "repro_receiver_nr_iterations",
                "Iterations NR needed to converge inside the receiver.",
                buckets=_ITERATION_BUCKETS,
            ).observe(fix.iterations)
        return fix

    def process(self, epoch: ObservationEpoch) -> PositionFix:
        """Solve one epoch, transparently handling warm-up and resets.

        Raises
        ------
        GeometryError
            If the epoch fails the shared input contract
            (:func:`~repro.observations.epoch_integrity_error`):
            undersized, duplicate PRNs, or non-finite measurements.
            Checked before any solver or fallback runs, so a corrupt
            epoch can never half-train the clock predictor.
        """
        integrity_error = epoch_integrity_error(epoch)
        if integrity_error is not None:
            self._event("rejected_epochs")
            raise GeometryError(integrity_error)
        self._epochs_processed += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_receiver_epochs_total",
                "Epochs seen by GpsReceiver.process.",
                labels=("algorithm",),
            ).labels(algorithm=self._algorithm_name).inc()

        if self._health is not None:
            pre_excluded = self._health.admit(epoch.prns)
            if pre_excluded:
                banned = set(pre_excluded)
                kept = [obs for obs in epoch.observations if obs.prn not in banned]
                if len(kept) >= 4:
                    epoch = epoch.with_observations(kept)
                    self._event("health_preexclusions")

        if self._algorithm_name in ("nr", "bancroft"):
            if self._algorithm_name == "nr":
                fix = (
                    self._nr_fix(epoch)
                    if self._raim is None or epoch.satellite_count < 5
                    else self._checked_solve(epoch)
                )
                self._event("nr_fixes")
                return fix
            return self._checked_solve(epoch)

        if not self._predictor.is_ready:
            fix = self._nr_fix(epoch)
            if fix.clock_bias_meters is not None:
                self._predictor.observe(epoch.time, fix.clock_bias_meters)
            self._event("warmup_fixes")
            self._event("nr_fixes")
            return fix

        if (
            self._recalibration_interval
            and self._epochs_processed % self._recalibration_interval == 0
        ):
            self._recalibrate(epoch)

        try:
            fix = self._checked_solve(epoch)
        except GeometryError:
            # The prediction can be grossly wrong exactly at a clock
            # reset; answer with NR and retrain the predictor.
            _log.warning(
                "closed-form solve rejected epoch %d; falling back to NR",
                self._epochs_processed,
            )
            fix = self._nr_fix(epoch)
            if fix.clock_bias_meters is not None:
                self._predictor.observe(epoch.time, fix.clock_bias_meters)
            self._event("fallbacks")
            self._event("nr_fixes")
            return fix

        if self._residual_is_anomalous(fix.residual_norm):
            # Clock reset between recalibrations: the exploded residual
            # is independent evidence the prediction is stale, so
            # re-anchor the predictor unconditionally and re-solve.
            _log.warning(
                "residual gate tripped at epoch %d (residual %.3e m); "
                "recalibrating clock prediction",
                self._epochs_processed,
                fix.residual_norm,
            )
            self._event("residual_gate_trips")
            self._recalibrate(epoch, force=True)
            try:
                fix = self._checked_solve(epoch)
                self._event("residual_gate_recoveries")
            except GeometryError:
                fix = self._nr_fix(epoch)
                self._event("fallbacks")
                self._event("nr_fixes")
                return fix

        if math.isfinite(fix.residual_norm):
            self._residual_history.append(fix.residual_norm)
        self._event("closed_form_fixes")
        return fix

    def process_many(self, epochs: "Iterable[ObservationEpoch]") -> "List[PositionFix]":
        """Process an epoch stream in order, returning one fix per epoch.

        Equivalent to calling :meth:`process` in a loop; exists so bulk
        replay (and the parallel executor in :mod:`repro.engine`) has a
        single picklable entry point per receiver.
        """
        return [self.process(epoch) for epoch in epochs]

    def _checked_solve(self, epoch: ObservationEpoch):
        """Solve one epoch, through RAIM when enabled and possible."""
        if self._raim is None or epoch.satellite_count < 5:
            return self._solver.solve(epoch)
        result = self._raim.check(epoch)
        if result.excluded_prn is not None:
            _log.info("RAIM excluded PRN %s at epoch %d",
                      result.excluded_prn, self._epochs_processed)
            self._event("raim_exclusions")
        if not result.passed:
            self._event("raim_unrepaired")
        if self._health is not None:
            if result.excluded_prn is not None:
                self._health.record_exclusion(result.excluded_prn)
                self._health.record_clean(
                    prn for prn in epoch.prns if prn != result.excluded_prn
                )
            elif result.passed:
                self._health.record_clean(epoch.prns)
        return result.fix

    def _residual_is_anomalous(self, residual_norm: float) -> bool:
        if not math.isfinite(residual_norm) or len(self._residual_history) < 10:
            return False
        history = sorted(self._residual_history)
        median = history[len(history) // 2]
        return residual_norm > self._residual_gate_factor * max(median, 1e-9)

    # ------------------------------------------------------------------
    def _recalibrate(self, epoch: ObservationEpoch, force: bool = False) -> None:
        try:
            nr_fix = self._nr_fix(epoch)
        except (ConvergenceError, GeometryError):
            _log.debug(
                "recalibration NR solve failed at epoch %d; skipping",
                self._epochs_processed,
            )
            return  # skip this recalibration; the main solve still runs
        if nr_fix.clock_bias_meters is not None:
            if force:
                self._predictor.reanchor(epoch.time, nr_fix.clock_bias_meters)
            else:
                self._predictor.observe(epoch.time, nr_fix.clock_bias_meters)
            self._event("recalibrations")
