"""Result types produced by the positioning algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PositionFix:
    """One solved position.

    Attributes
    ----------
    position:
        Estimated receiver ECEF position ``(x_e, y_e, z_e)`` in meters.
    clock_bias_meters:
        The receiver clock bias associated with the fix, in meters.
        For NR this is the *solved* ``eps_R``; for DLO/DLG it is the
        *predicted* ``eps_hat_R`` that was removed before solving; for
        solvers that do not involve a bias it is ``None``.
    algorithm:
        Short algorithm tag ("NR", "DLO", "DLG", "Bancroft").
    iterations:
        Iterations spent (1 for closed-form methods).
    converged:
        Whether the solver's own convergence criterion was met (always
        true for closed-form methods that return at all).
    residual_norm:
        Euclidean norm of the final measurement residuals, for
        diagnostics and fault detection.
    clock_biases:
        Per-constellation solved clock biases (meters) as ``(system
        code, bias)`` pairs, in first-appearance order of the systems
        in the epoch.  ``None`` for single-constellation solves, where
        ``clock_bias_meters`` is the whole story; when present,
        ``clock_bias_meters`` equals the first pair's bias.
    """

    position: np.ndarray
    clock_bias_meters: Optional[float] = None
    algorithm: str = ""
    iterations: int = 1
    converged: bool = True
    residual_norm: float = field(default=float("nan"), compare=False)
    clock_biases: Optional[Tuple[Tuple[str, float], ...]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        position = np.asarray(self.position, dtype=float)
        if position.shape != (3,) or not np.all(np.isfinite(position)):
            raise ConfigurationError("fix position must be a finite 3-vector")
        object.__setattr__(self, "position", position)
        if self.clock_biases is not None:
            object.__setattr__(
                self,
                "clock_biases",
                tuple(
                    (str(system), float(bias))
                    for system, bias in self.clock_biases
                ),
            )

    @property
    def clock_bias_map(self) -> Optional[Dict[str, float]]:
        """``clock_biases`` as a dict keyed by system code, or ``None``."""
        if self.clock_biases is None:
            return None
        return dict(self.clock_biases)

    def distance_to(self, truth_position: np.ndarray) -> float:
        """Absolute 3-D error ``d_O`` against a truth position (eq. 5-1)."""
        truth = np.asarray(truth_position, dtype=float)
        if truth.shape != (3,):
            raise ConfigurationError("truth position must be a 3-vector")
        return float(np.linalg.norm(self.position - truth))
