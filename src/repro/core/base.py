"""The interface every positioning algorithm implements.

The evaluation harness (and any downstream user) treats NR, DLO, DLG,
and Bancroft uniformly through this interface, which is what makes the
paper's like-for-like comparisons (same epochs into every solver)
trivially honest.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import GeometryError
from repro.observations import ObservationEpoch
from repro.core.types import PositionFix


class PositioningAlgorithm(ABC):
    """A GPS point-positioning algorithm."""

    #: Short display name ("NR", "DLO", ...).
    name: str = "?"

    #: Fewest satellites the algorithm can work with.
    min_satellites: int = 4

    @abstractmethod
    def solve(self, epoch: ObservationEpoch) -> PositionFix:
        """Estimate the receiver position from one observation epoch.

        Raises
        ------
        GeometryError
            If the epoch has too few satellites or degenerate geometry.
        ConvergenceError
            If an iterative method fails to converge.
        """

    def _require_satellites(self, epoch: ObservationEpoch) -> None:
        """Shared guard: enough satellites for this algorithm."""
        if epoch.satellite_count < self.min_satellites:
            raise GeometryError(
                f"{self.name} needs at least {self.min_satellites} satellites, "
                f"epoch has {epoch.satellite_count}"
            )

    def residual_dof(self, epoch: ObservationEpoch) -> int:
        """Degrees of freedom of this solver's residuals on ``epoch``.

        The chi-square dof a residual-based integrity test (RAIM/FDE)
        should use: equations minus unknowns.  The default covers every
        single-constellation solver — ``m`` measurements against
        ``(x, y, z, b)`` — giving ``m - 4``; per-constellation solvers
        override it because their unknown count grows with the number
        of constellations (and differencing also consumes equations).
        May be zero or negative, meaning no test is possible.
        """
        return epoch.satellite_count - 4
