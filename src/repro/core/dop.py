"""Dilution of precision (DOP) diagnostics.

DOP factors translate satellite geometry into error amplification:
position error ~= DOP * pseudorange error.  The evaluation harness
reports them so accuracy comparisons across epochs and satellite
subsets can be interpreted (a bad DLO epoch with a huge GDOP is a
geometry problem, not an algorithm problem).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError
from repro.geodesy import ecef_to_enu_matrix, ecef_to_geodetic
from repro.utils.validation import require_shape


@dataclass(frozen=True)
class DilutionOfPrecision:
    """The classic DOP family (dimensionless)."""

    gdop: float
    pdop: float
    hdop: float
    vdop: float
    tdop: float


def compute_dop(
    satellite_positions: np.ndarray,
    receiver_position: np.ndarray,
) -> DilutionOfPrecision:
    """DOP factors for a receiver given the satellites in use.

    Parameters
    ----------
    satellite_positions:
        ``(m, 3)`` ECEF satellite positions, ``m >= 4``.
    receiver_position:
        Receiver ECEF position (the solved or surveyed point).
    """
    satellites = require_shape("satellite_positions", satellite_positions, (-1, 3))
    receiver = require_shape("receiver_position", receiver_position, (3,))
    m = satellites.shape[0]
    if m < 4:
        raise GeometryError(f"DOP needs at least 4 satellites, got {m}")

    deltas = satellites - receiver
    ranges = np.linalg.norm(deltas, axis=1)
    if np.any(ranges < 1.0):
        raise GeometryError("a satellite coincides with the receiver")

    geometry = np.empty((m, 4))
    geometry[:, :3] = -deltas / ranges[:, None]
    geometry[:, 3] = 1.0

    try:
        cofactor = np.linalg.inv(geometry.T @ geometry)
    except np.linalg.LinAlgError as exc:
        raise GeometryError("degenerate geometry: DOP matrix is singular") from exc

    # Rotate the position block into the local ENU frame for HDOP/VDOP.
    latitude, longitude, _height = ecef_to_geodetic(receiver)
    rotation = ecef_to_enu_matrix(latitude, longitude)
    position_block = cofactor[:3, :3]
    enu_block = rotation @ position_block @ rotation.T

    east_var, north_var, up_var = np.diag(enu_block)
    time_var = cofactor[3, 3]

    return DilutionOfPrecision(
        gdop=math.sqrt(max(np.trace(cofactor), 0.0)),
        pdop=math.sqrt(max(np.trace(position_block), 0.0)),
        hdop=math.sqrt(max(east_var + north_var, 0.0)),
        vdop=math.sqrt(max(up_var, 0.0)),
        tdop=math.sqrt(max(time_var, 0.0)),
    )
