"""The paper's positioning algorithms and the receiver API.

* :class:`NewtonRaphsonSolver` — the classic iterative method (Section
  3.4), the baseline everything is measured against.
* :class:`DLOSolver` / :class:`DLGSolver` — the paper's contribution
  (Section 4.5): direct linearization solved with OLS and GLS.
* :class:`BancroftSolver` — the classic closed-form comparator [2].
* :class:`GpsReceiver` — the end-to-end pipeline: NR warm-up, clock
  bias prediction, then closed-form solving, with threshold-reset
  recalibration.
"""

from repro.core.types import PositionFix
from repro.core.base import PositioningAlgorithm
from repro.core.newton_raphson import NewtonRaphsonSolver
from repro.core.direct_linear import (
    DLOSolver,
    DLGSolver,
    build_difference_system,
    difference_covariance,
    difference_covariance_components,
)
from repro.core.bancroft import BancroftSolver
from repro.core.three_sat import ThreeSatelliteSolver
from repro.core.batch import (
    BatchDLOSolver,
    BatchDLGSolver,
    BatchNewtonRaphsonSolver,
    BatchNrResult,
    group_epochs_by_count,
)
from repro.core.raim import RaimMonitor, RaimResult, chi_square_quantile
from repro.core.velocity import VelocityFix, VelocitySolver
from repro.core.ekf import NavigationEkf
from repro.core.smoother import RtsSmoother
from repro.core.selection import (
    BaseSatelliteSelector,
    FirstSelector,
    RandomSelector,
    HighestElevationSelector,
    ClosestRangeSelector,
)
from repro.core.dop import DilutionOfPrecision, compute_dop
from repro.core.receiver import GpsReceiver

__all__ = [
    "PositionFix",
    "PositioningAlgorithm",
    "NewtonRaphsonSolver",
    "DLOSolver",
    "DLGSolver",
    "build_difference_system",
    "difference_covariance",
    "difference_covariance_components",
    "BancroftSolver",
    "ThreeSatelliteSolver",
    "BatchDLOSolver",
    "BatchDLGSolver",
    "BatchNewtonRaphsonSolver",
    "BatchNrResult",
    "group_epochs_by_count",
    "RaimMonitor",
    "RaimResult",
    "chi_square_quantile",
    "VelocityFix",
    "VelocitySolver",
    "NavigationEkf",
    "RtsSmoother",
    "BaseSatelliteSelector",
    "FirstSelector",
    "RandomSelector",
    "HighestElevationSelector",
    "ClosestRangeSelector",
    "DilutionOfPrecision",
    "compute_dop",
    "GpsReceiver",
]
