"""The receiver pipeline and positioning primitives.

* :class:`GpsReceiver` — the end-to-end pipeline: NR warm-up, clock
  bias prediction, then closed-form solving, with threshold-reset
  recalibration.
* Velocity, EKF/smoother, satellite selection, and DOP — the
  machinery around the solvers.

The solver implementations themselves (NR, DLO, DLG, Bancroft and the
batch trio) live in :mod:`repro.solvers` since the PR 4 API redesign,
and RAIM lives in :mod:`repro.integrity` since the PR 5 integrity
subsystem; this package re-exports them so ``from repro.core import
DLGSolver`` keeps working warning-free.  The old *deep* import paths
(``repro.core.direct_linear``, ``repro.core.raim`` et al.) are
deprecated shims.  New code should reach solvers through the
:mod:`repro.api` facade and integrity through :mod:`repro.integrity`.
"""

from repro.core.types import PositionFix
from repro.core.base import PositioningAlgorithm
from repro.solvers.newton_raphson import NewtonRaphsonSolver
from repro.solvers.direct_linear import (
    DLOSolver,
    DLGSolver,
    build_difference_system,
    difference_covariance,
    difference_covariance_components,
)
from repro.solvers.bancroft import BancroftSolver
from repro.core.three_sat import ThreeSatelliteSolver
from repro.solvers.batch import (
    BatchDLOSolver,
    BatchDLGSolver,
    BatchNewtonRaphsonSolver,
    BatchNrResult,
    group_epochs_by_count,
)
from repro.integrity.raim import RaimMonitor, RaimResult, chi_square_quantile
from repro.core.velocity import VelocityFix, VelocitySolver
from repro.core.ekf import NavigationEkf
from repro.core.smoother import RtsSmoother
from repro.core.selection import (
    BaseSatelliteSelector,
    FirstSelector,
    RandomSelector,
    HighestElevationSelector,
    ClosestRangeSelector,
)
from repro.core.dop import DilutionOfPrecision, compute_dop
from repro.core.receiver import GpsReceiver

__all__ = [
    "PositionFix",
    "PositioningAlgorithm",
    "NewtonRaphsonSolver",
    "DLOSolver",
    "DLGSolver",
    "build_difference_system",
    "difference_covariance",
    "difference_covariance_components",
    "BancroftSolver",
    "ThreeSatelliteSolver",
    "BatchDLOSolver",
    "BatchDLGSolver",
    "BatchNewtonRaphsonSolver",
    "BatchNrResult",
    "group_epochs_by_count",
    "RaimMonitor",
    "RaimResult",
    "chi_square_quantile",
    "VelocityFix",
    "VelocitySolver",
    "NavigationEkf",
    "RtsSmoother",
    "BaseSatelliteSelector",
    "FirstSelector",
    "RandomSelector",
    "HighestElevationSelector",
    "ClosestRangeSelector",
    "DilutionOfPrecision",
    "compute_dop",
    "GpsReceiver",
]
