"""Rauch-Tung-Striebel (RTS) smoothing over the navigation EKF.

Post-processing (survey adjustment, trajectory reconstruction) can use
*future* measurements that a real-time filter never sees: the RTS
smoother runs the EKF forward while recording its states, then sweeps
backward, correcting each state with everything that came after.  On
smooth trajectories this roughly halves the filter's error again.

Usage::

    smoother = RtsSmoother(NavigationEkf())
    for epoch in epochs:
        smoother.process(epoch)            # forward pass (real-time fixes)
    positions = smoother.smooth()          # backward pass, (N, 3)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.ekf import NavigationEkf
from repro.core.types import PositionFix
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch


@dataclass
class _ForwardRecord:
    """One forward-pass snapshot (post-update) plus prediction context."""

    time_seconds: float
    filtered_state: np.ndarray
    filtered_covariance: np.ndarray
    #: State/covariance *predicted* from the previous record (None for
    #: the first epoch, which has no prediction step).
    predicted_state: Optional[np.ndarray]
    predicted_covariance: Optional[np.ndarray]
    transition: Optional[np.ndarray]


class RtsSmoother:
    """Forward EKF + backward RTS sweep.

    Parameters
    ----------
    ekf:
        The filter to run forward; a default-configured
        :class:`NavigationEkf` when omitted.
    """

    def __init__(self, ekf: Optional[NavigationEkf] = None) -> None:
        self._ekf = ekf if ekf is not None else NavigationEkf()
        self._records: List[_ForwardRecord] = []

    # ------------------------------------------------------------------
    @property
    def epoch_count(self) -> int:
        """Forward-pass epochs recorded so far."""
        return len(self._records)

    def process(self, epoch: ObservationEpoch) -> PositionFix:
        """Run one forward step, recording what the sweep needs."""
        previous_time = self._ekf._last_time
        previous_state = self._ekf.state
        previous_covariance = (
            None if self._ekf._covariance is None else self._ekf._covariance.copy()
        )

        fix = self._ekf.process(epoch)

        t = epoch.time.to_gps_seconds()
        predicted_state = None
        predicted_covariance = None
        transition = None
        if previous_state is not None and previous_time is not None:
            dt = t - previous_time
            transition = np.eye(8)
            for axis in range(3):
                transition[axis, 3 + axis] = dt
            transition[6, 7] = dt
            predicted_state = transition @ previous_state
            # Reconstruct the predict-step covariance from the same
            # process model the filter used.
            process = self._process_noise(dt)
            predicted_covariance = (
                transition @ previous_covariance @ transition.T + process
            )

        self._records.append(
            _ForwardRecord(
                time_seconds=t,
                filtered_state=self._ekf.state,
                filtered_covariance=self._ekf._covariance.copy(),
                predicted_state=predicted_state,
                predicted_covariance=predicted_covariance,
                transition=transition,
            )
        )
        return fix

    def _process_noise(self, dt: float) -> np.ndarray:
        qa, qb, qd = self._ekf._qa, self._ekf._qb, self._ekf._qd
        process = np.zeros((8, 8))
        dt2, dt3 = dt * dt, dt * dt * dt
        for axis in range(3):
            process[axis, axis] = qa * dt3 / 3.0
            process[axis, 3 + axis] = process[3 + axis, axis] = qa * dt2 / 2.0
            process[3 + axis, 3 + axis] = qa * dt
        process[6, 6] = qb * dt + qd * dt3 / 3.0
        process[6, 7] = process[7, 6] = qd * dt2 / 2.0
        process[7, 7] = qd * dt
        return process

    # ------------------------------------------------------------------
    def smooth(self) -> np.ndarray:
        """Backward sweep; returns smoothed positions, shape ``(N, 3)``.

        The recorded forward pass is left intact, so :meth:`smooth` can
        be called repeatedly (e.g. after more epochs arrive).
        """
        if not self._records:
            raise ConfigurationError("no forward pass recorded; call process first")

        n = len(self._records)
        smoothed_states = [record.filtered_state.copy() for record in self._records]
        smoothed_covariance = self._records[-1].filtered_covariance.copy()

        for index in range(n - 2, -1, -1):
            record = self._records[index]
            nxt = self._records[index + 1]
            if nxt.predicted_covariance is None or nxt.transition is None:
                continue  # duplicate-timestamp epoch: nothing to smooth through
            try:
                gain = (
                    record.filtered_covariance
                    @ nxt.transition.T
                    @ np.linalg.inv(nxt.predicted_covariance)
                )
            except np.linalg.LinAlgError:
                continue  # singular prediction covariance: keep filtered
            smoothed_states[index] = record.filtered_state + gain @ (
                smoothed_states[index + 1] - nxt.predicted_state
            )
            smoothed_covariance = record.filtered_covariance + gain @ (
                smoothed_covariance - nxt.predicted_covariance
            ) @ gain.T

        return np.stack([state[:3] for state in smoothed_states])

    def filtered_positions(self) -> np.ndarray:
        """Forward-pass (real-time) positions, shape ``(N, 3)``."""
        if not self._records:
            raise ConfigurationError("no forward pass recorded")
        return np.stack([record.filtered_state[:3] for record in self._records])
