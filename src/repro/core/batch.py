"""Batched direct-linearization solvers (paper Section 6, extension 3).

The paper's third future-work item: "optimize the matrix operations in
the context of our problem so the computation time may be further
reduced".  The closed-form structure of DLO/DLG makes them unusually
batchable: N epochs with the same satellite count m share identical
shapes, so the N difference systems can be built and solved as one
stacked ``(N, m-1, 3)`` tensor operation, amortizing the per-call
dispatch overhead that dominates small solves.

This is exactly the optimization a high-rate tracking server (the
paper's motivating "object moving at high speed" positioned many times
per second, or a post-processing service replaying a day of data)
would deploy; iterative NR cannot be batched this way because each
epoch converges along its own trajectory.

Usage::

    solver = BatchDLGSolver()
    positions = solver.solve_batch(epochs, predicted_biases)  # (N, 3)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EstimationError, GeometryError
from repro.observations import ObservationEpoch


def _stack_epochs(epochs: Sequence[ObservationEpoch], biases: np.ndarray):
    """Validate and stack N same-size epochs into dense tensors."""
    if not epochs:
        raise GeometryError("solve_batch needs at least one epoch")
    m = epochs[0].satellite_count
    if m < 4:
        raise GeometryError(
            f"batched direct linearization needs at least 4 satellites, got {m}"
        )
    for epoch in epochs:
        if epoch.satellite_count != m:
            raise GeometryError(
                "all epochs in a batch must have the same satellite count "
                f"(got {epoch.satellite_count} and {m}); group epochs by "
                "count before batching"
            )
    biases = np.asarray(biases, dtype=float)
    if biases.shape != (len(epochs),):
        raise GeometryError(
            f"biases must be one per epoch: expected shape ({len(epochs)},), "
            f"got {biases.shape}"
        )

    positions = np.stack([epoch.satellite_positions() for epoch in epochs])  # (N,m,3)
    pseudoranges = np.stack([epoch.pseudoranges() for epoch in epochs])  # (N,m)
    corrected = pseudoranges - biases[:, None]
    if np.any(corrected <= 0):
        raise GeometryError(
            "clock-corrected pseudoranges are non-positive for some epoch; "
            "check the bias predictions"
        )
    return positions, corrected


def build_difference_systems(
    positions: np.ndarray, corrected: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Vectorized eq. 4-8 construction for a whole batch.

    Parameters are the stacked ``(N, m, 3)`` satellite positions and
    ``(N, m)`` clock-corrected pseudoranges; the base satellite is
    index 0 of each epoch.  Returns ``(N, m-1, 3)`` designs and
    ``(N, m-1)`` right-hand sides.
    """
    design = positions[:, 1:, :] - positions[:, :1, :]
    squared_norms = np.einsum("nmi,nmi->nm", positions, positions)
    rhs = 0.5 * (
        (squared_norms[:, 1:] - squared_norms[:, :1])
        - (corrected[:, 1:] ** 2 - corrected[:, :1] ** 2)
    )
    return design, rhs


class BatchDLOSolver:
    """Vectorized DLO: one stacked OLS solve for N epochs."""

    name = "BatchDLO"

    def solve_batch(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Sequence[float],
    ) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array.

        ``biases`` are the predicted receiver clock biases (meters),
        one per epoch — the batched equivalent of the clock predictor
        hook on :class:`~repro.core.direct_linear.DLOSolver`.
        """
        positions, corrected = _stack_epochs(epochs, np.asarray(biases, dtype=float))
        design, rhs = build_difference_systems(positions, corrected)
        # Batched normal equations: (N,3,3) and (N,3).
        gram = np.einsum("nij,nik->njk", design, design)
        moment = np.einsum("nij,ni->nj", design, rhs)
        try:
            return np.linalg.solve(gram, moment[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc


class BatchDLGSolver:
    """Vectorized DLG: stacked GLS with the eq. 4-26 covariances."""

    name = "BatchDLG"

    def solve_batch(
        self,
        epochs: Sequence[ObservationEpoch],
        biases: Sequence[float],
    ) -> np.ndarray:
        """Positions for N same-size epochs, as an ``(N, 3)`` array."""
        positions, corrected = _stack_epochs(epochs, np.asarray(biases, dtype=float))
        design, rhs = build_difference_systems(positions, corrected)

        n, k = rhs.shape  # k = m - 1
        # Batched eq. 4-26: base^2 everywhere + rho_j^2 on the diagonal.
        base_sq = corrected[:, 0] ** 2  # (N,)
        covariance = np.broadcast_to(base_sq[:, None, None], (n, k, k)).copy()
        covariance[:, np.arange(k), np.arange(k)] += corrected[:, 1:] ** 2

        try:
            # Whiten through batched Cholesky factors.
            factors = np.linalg.cholesky(covariance)  # (N,k,k)
            white_design = np.linalg.solve(factors, design)
            white_rhs = np.linalg.solve(factors, rhs[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise EstimationError(
                "a batch epoch has a non-positive-definite covariance"
            ) from exc

        gram = np.einsum("nij,nik->njk", white_design, white_design)
        moment = np.einsum("nij,ni->nj", white_design, white_rhs)
        try:
            return np.linalg.solve(gram, moment[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise EstimationError(
                "a batch epoch has degenerate geometry; solve epochs "
                "individually to identify it"
            ) from exc


def group_epochs_by_count(
    epochs: Sequence[ObservationEpoch],
) -> "dict[int, List[ObservationEpoch]]":
    """Group arbitrary epochs into batchable same-count buckets."""
    groups: "dict[int, List[ObservationEpoch]]" = {}
    for epoch in epochs:
        groups.setdefault(epoch.satellite_count, []).append(epoch)
    return groups
