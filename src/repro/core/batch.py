"""Deprecated shim: :mod:`repro.core.batch` moved to
:mod:`repro.solvers.batch` (PR 4 API redesign).

Importing names through this path keeps working but emits a
:class:`DeprecationWarning`; switch to ``repro.solvers`` (or the
:mod:`repro.api` facade) at your convenience.
"""

from __future__ import annotations

import warnings

from repro.solvers import batch as _moved


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    value = getattr(_moved, name)
    warnings.warn(
        f"repro.core.batch.{name} is deprecated; import it from "
        "repro.solvers (or use repro.api.solve)",
        DeprecationWarning,
        stacklevel=2,
    )
    return value


def __dir__():
    return sorted(set(dir(_moved)))
