"""Base-satellite selection strategies for direct linearization.

The direct linearization (Section 4.3) subtracts one *base* equation
from all the others; the paper notes (Section 6, first extension) that
the base satellite is "randomly chosen" in their algorithm and that a
"good" choice could improve accuracy.  These strategies make the choice
pluggable so the ablation bench can quantify that extension.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch


class BaseSatelliteSelector(ABC):
    """Chooses which observation anchors the difference system."""

    @abstractmethod
    def select(self, epoch: ObservationEpoch) -> int:
        """Return the index (into ``epoch.observations``) of the base."""


class FirstSelector(BaseSatelliteSelector):
    """Always the first stored observation.

    Epochs store observations sorted by descending elevation, so on
    library-generated data this coincides with
    :class:`HighestElevationSelector`, while remaining well-defined for
    externally built epochs with arbitrary order.
    """

    def select(self, epoch: ObservationEpoch) -> int:
        return 0


class RandomSelector(BaseSatelliteSelector):
    """A uniformly random base — the paper's stated default.

    Parameters
    ----------
    rng:
        Random source; pass a seeded generator for reproducible runs.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def select(self, epoch: ObservationEpoch) -> int:
        return int(self._rng.integers(0, epoch.satellite_count))


class HighestElevationSelector(BaseSatelliteSelector):
    """The highest-elevation satellite.

    High satellites carry the least atmospheric error, so their
    equation is the most trustworthy anchor — the natural candidate for
    the paper's "good satellite" extension.
    """

    def select(self, epoch: ObservationEpoch) -> int:
        elevations = [obs.elevation for obs in epoch.observations]
        return int(np.argmax(elevations))


class ClosestRangeSelector(BaseSatelliteSelector):
    """The satellite with the smallest measured pseudorange.

    The differencing error terms (eq. 4-18) scale with the base range
    ``rho_1``, so minimizing it minimizes the injected correlation —
    an alternative "good satellite" criterion.
    """

    def select(self, epoch: ObservationEpoch) -> int:
        return int(np.argmin(epoch.pseudoranges()))


def make_selector(name: str, rng: Optional[np.random.Generator] = None) -> BaseSatelliteSelector:
    """Factory by name: ``first``, ``random``, ``highest``, ``closest``."""
    selectors = {
        "first": lambda: FirstSelector(),
        "random": lambda: RandomSelector(rng),
        "highest": lambda: HighestElevationSelector(),
        "closest": lambda: ClosestRangeSelector(),
    }
    try:
        return selectors[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown selector {name!r}; choose from {sorted(selectors)}"
        ) from None
