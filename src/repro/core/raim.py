"""Deprecated shim: :mod:`repro.core.raim` moved to
:mod:`repro.integrity.raim` (PR 5 integrity subsystem).

Importing names through this path keeps working but emits a
:class:`DeprecationWarning`; switch to ``repro.integrity`` (which also
holds the batch FDE gate and the satellite health tracker) at your
convenience.
"""

from __future__ import annotations

import warnings

from repro.integrity import raim as _moved


def __getattr__(name: str):
    if name.startswith("__"):
        raise AttributeError(name)
    value = getattr(_moved, name)
    warnings.warn(
        f"repro.core.raim.{name} is deprecated; import it from "
        "repro.integrity",
        DeprecationWarning,
        stacklevel=2,
    )
    return value


def __dir__():
    return sorted(set(dir(_moved)))
