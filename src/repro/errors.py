"""Exception hierarchy for the repro library.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at integration
boundaries while still distinguishing failure modes when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class GeometryError(ReproError):
    """The satellite geometry does not admit a solution.

    Raised, for example, when fewer satellites are supplied than a solver
    needs, or when the design matrix is singular because the satellites
    are (nearly) coplanar with degenerate geometry.
    """


class ConvergenceError(ReproError):
    """An iterative solver failed to converge.

    The paper motivates direct methods partly by this failure mode of the
    Newton-Raphson baseline ("risk of non-convergence", Section 1).
    """

    def __init__(self, message: str, iterations: int = 0) -> None:
        super().__init__(message)
        #: Number of iterations performed before giving up.
        self.iterations = iterations


class EphemerisError(ReproError):
    """An ephemeris is invalid or cannot be evaluated at the given time."""


class RinexError(ReproError):
    """A RINEX file is malformed or internally inconsistent."""


class DatasetError(ReproError):
    """A dataset request cannot be satisfied (unknown station, bad span)."""


class EstimationError(ReproError):
    """A least-squares problem is ill-posed (rank deficient, bad weights)."""


class ServiceError(ReproError):
    """The async positioning service could not complete a request."""


class QueueFullError(ServiceError):
    """The service queue is at capacity; retry after a backoff.

    The backpressure signal: the request was *rejected at admission*,
    never enqueued, so retrying after :attr:`retry_after_seconds` is
    always safe (no duplicate work in flight).
    """

    def __init__(self, message: str, retry_after_seconds: float = 0.05) -> None:
        super().__init__(message)
        #: Suggested client backoff before resubmitting.
        self.retry_after_seconds = retry_after_seconds


class RequestTimeoutError(ServiceError):
    """A request's deadline expired before its batch produced an answer.

    The epoch may still have been solved (deadline hit mid-batch) —
    the service guarantees only that *this request* stopped waiting.
    """
