"""repro — reproduction of "Design and Analysis of a New GPS Algorithm"
(Wei Li et al., ICDCS 2010).

The library implements the paper's direct-linearization positioning
algorithms (DLO, DLG), the classic Newton-Raphson baseline, and every
substrate they stand on: a simulated GPS constellation, receiver clock
models with bias prediction, atmospheric error models, a RINEX layer,
and the evaluation harness that regenerates the paper's tables and
figures.

Quickstart::

    from repro import get_station, ObservationDataset, DatasetConfig, GpsReceiver

    station = get_station("SRZN")
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=600.0))
    receiver = GpsReceiver(algorithm="dlg", clock_mode="steering")
    for epoch in dataset.epochs():
        fix = receiver.process(epoch)
        print(fix.position, fix.distance_to(station.position))
"""

from repro.constants import SPEED_OF_LIGHT
from repro.errors import (
    ReproError,
    ConfigurationError,
    GeometryError,
    ConvergenceError,
    EphemerisError,
    RinexError,
    DatasetError,
    EstimationError,
    ServiceError,
    QueueFullError,
    RequestTimeoutError,
)
from repro.timebase import GpsTime
from repro.observations import (
    SatelliteObservation,
    ObservationEpoch,
    EpochTruth,
    epoch_integrity_error,
)
from repro.blocks import EpochBlock, PackedBucket, PackedStream, pack_stream
from repro.constellation import Constellation, Satellite
from repro.clocks import (
    SteeringClock,
    ThresholdClock,
    ConstantClockBiasPredictor,
    LinearClockBiasPredictor,
    KalmanClockBiasPredictor,
    OracleClockBiasPredictor,
    ZeroClockBiasPredictor,
)
from repro.core import (
    PositionFix,
    PositioningAlgorithm,
    NewtonRaphsonSolver,
    DLOSolver,
    DLGSolver,
    BancroftSolver,
    ThreeSatelliteSolver,
    BatchDLOSolver,
    BatchDLGSolver,
    BatchNewtonRaphsonSolver,
    group_epochs_by_count,
    VelocityFix,
    VelocitySolver,
    NavigationEkf,
    RtsSmoother,
    GpsReceiver,
    compute_dop,
    DilutionOfPrecision,
)
from repro.engine import (
    EngineDiagnostics,
    EngineResult,
    ParallelReplay,
    PositioningEngine,
)
from repro.api import SolverConfig, solve, solve_batch
from repro.integrity import (
    BatchFde,
    EpochVerdict,
    FdeConfig,
    FdeRecord,
    HealthConfig,
    RaimMonitor,
    RaimResult,
    SatelliteHealthTracker,
)
from repro.service import (
    AsyncPositioningClient,
    PositioningService,
    ServiceConfig,
    ServiceResult,
)
from repro import telemetry
from repro.validation import (
    FaultProfile,
    FuzzConfig,
    FuzzHarness,
    Scenario,
    ScenarioConfig,
    ScenarioGenerator,
    run_differential,
    run_metamorphic,
)
from repro.dgps import DgpsCorrections, DgpsReferenceStation, apply_corrections
from repro.signals import (
    CycleSlipDetector,
    HatchFilter,
    MultipathModel,
    ionosphere_free_epoch,
)
from repro.constellation import SatellitePass, find_passes
from repro.motion import (
    Trajectory,
    StaticTrajectory,
    LinearTrajectory,
    GreatCircleTrajectory,
    WaypointTrajectory,
    KinematicScenario,
    AlphaBetaFilter,
)
from repro.stations import (
    Station,
    STATIONS,
    get_station,
    all_stations,
    DatasetConfig,
    ObservationDataset,
    generate_dataset,
)

__version__ = "1.0.0"

__all__ = [
    "SPEED_OF_LIGHT",
    "ReproError",
    "ConfigurationError",
    "GeometryError",
    "ConvergenceError",
    "EphemerisError",
    "RinexError",
    "DatasetError",
    "EstimationError",
    "ServiceError",
    "QueueFullError",
    "RequestTimeoutError",
    "GpsTime",
    "SatelliteObservation",
    "ObservationEpoch",
    "EpochTruth",
    "epoch_integrity_error",
    "EpochBlock",
    "PackedBucket",
    "PackedStream",
    "pack_stream",
    "Constellation",
    "Satellite",
    "SteeringClock",
    "ThresholdClock",
    "ConstantClockBiasPredictor",
    "LinearClockBiasPredictor",
    "KalmanClockBiasPredictor",
    "OracleClockBiasPredictor",
    "ZeroClockBiasPredictor",
    "PositionFix",
    "PositioningAlgorithm",
    "NewtonRaphsonSolver",
    "DLOSolver",
    "DLGSolver",
    "BancroftSolver",
    "ThreeSatelliteSolver",
    "BatchDLOSolver",
    "BatchDLGSolver",
    "BatchNewtonRaphsonSolver",
    "group_epochs_by_count",
    "EngineDiagnostics",
    "EngineResult",
    "ParallelReplay",
    "PositioningEngine",
    "SolverConfig",
    "solve",
    "solve_batch",
    "AsyncPositioningClient",
    "PositioningService",
    "ServiceConfig",
    "ServiceResult",
    "telemetry",
    "FaultProfile",
    "FuzzConfig",
    "FuzzHarness",
    "Scenario",
    "ScenarioConfig",
    "ScenarioGenerator",
    "run_differential",
    "run_metamorphic",
    "RaimMonitor",
    "RaimResult",
    "BatchFde",
    "EpochVerdict",
    "FdeConfig",
    "FdeRecord",
    "HealthConfig",
    "SatelliteHealthTracker",
    "VelocityFix",
    "VelocitySolver",
    "NavigationEkf",
    "RtsSmoother",
    "GpsReceiver",
    "compute_dop",
    "DilutionOfPrecision",
    "DgpsCorrections",
    "DgpsReferenceStation",
    "apply_corrections",
    "HatchFilter",
    "CycleSlipDetector",
    "MultipathModel",
    "ionosphere_free_epoch",
    "SatellitePass",
    "find_passes",
    "Trajectory",
    "StaticTrajectory",
    "LinearTrajectory",
    "GreatCircleTrajectory",
    "WaypointTrajectory",
    "KinematicScenario",
    "AlphaBetaFilter",
    "Station",
    "STATIONS",
    "get_station",
    "all_stations",
    "DatasetConfig",
    "ObservationDataset",
    "generate_dataset",
    "__version__",
]
