"""Moving-receiver substrate.

The paper's opening motivation: "in many application systems, the
object to be positioned may move at a high speed.  It is then
necessary to reduce the computation time overhead in order to provide
real-time response for positioning requests."  This package supplies
the moving objects: trajectory models, a kinematic observation
generator (the moving-receiver counterpart of
:class:`repro.stations.ObservationDataset`), and an alpha-beta
tracking filter for smoothing fix streams.
"""

from repro.motion.trajectory import (
    Trajectory,
    StaticTrajectory,
    LinearTrajectory,
    GreatCircleTrajectory,
    WaypointTrajectory,
)
from repro.motion.scenario import KinematicScenario
from repro.motion.filters import AlphaBetaFilter

__all__ = [
    "Trajectory",
    "StaticTrajectory",
    "LinearTrajectory",
    "GreatCircleTrajectory",
    "WaypointTrajectory",
    "KinematicScenario",
    "AlphaBetaFilter",
]
