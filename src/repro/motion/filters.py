"""Fix-stream smoothing for kinematic receivers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.timebase import GpsTime
from repro.utils.validation import require_shape


class AlphaBetaFilter:
    """Per-axis alpha-beta tracker over a position fix stream.

    The lightest useful dynamic filter: state is (position, velocity)
    per ECEF axis; each update predicts forward and blends the
    innovation with gains ``alpha`` (position) and ``beta`` (velocity).
    For a vehicle with meter-level fixes at 1 Hz this cuts fix noise
    roughly in half without the tuning burden of a full Kalman filter —
    and at microseconds per update it preserves the latency budget the
    paper's fast solvers create.

    Parameters
    ----------
    alpha, beta:
        Blend gains, ``0 < alpha < 1``, ``0 < beta <= 2(2-alpha)`` (the
        stability region).
    """

    def __init__(self, alpha: float = 0.5, beta: float = 0.1) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError("alpha must be in (0, 1)")
        if not 0.0 < beta <= 2.0 * (2.0 - alpha):
            raise ConfigurationError("beta outside the alpha-beta stability region")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self._position: Optional[np.ndarray] = None
        self._velocity = np.zeros(3)
        self._last_time: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def position(self) -> Optional[np.ndarray]:
        """Current smoothed position (copy), or ``None`` before updates."""
        return None if self._position is None else self._position.copy()

    @property
    def velocity(self) -> np.ndarray:
        """Current velocity estimate (copy)."""
        return self._velocity.copy()

    def reset(self) -> None:
        """Forget all state."""
        self._position = None
        self._velocity = np.zeros(3)
        self._last_time = None

    # ------------------------------------------------------------------
    def update(self, time: GpsTime, measured_position: np.ndarray) -> np.ndarray:
        """Absorb one fix; returns the smoothed position."""
        measurement = require_shape("measured_position", measured_position, (3,))
        t = time.to_gps_seconds()

        if self._position is None or self._last_time is None:
            self._position = measurement.copy()
            self._last_time = t
            return measurement.copy()

        dt = t - self._last_time
        if dt < 0:
            raise ConfigurationError("fixes must be fed in time order")
        if dt == 0:
            # Same-instant duplicate: blend position only.
            self._position = self._position + self.alpha * (
                measurement - self._position
            )
            return self._position.copy()

        predicted = self._position + self._velocity * dt
        innovation = measurement - predicted
        self._position = predicted + self.alpha * innovation
        self._velocity = self._velocity + (self.beta / dt) * innovation
        self._last_time = t
        return self._position.copy()

    def predict(self, time: GpsTime) -> np.ndarray:
        """Extrapolate the track to ``time`` without updating state."""
        if self._position is None or self._last_time is None:
            raise ConfigurationError("filter has no state yet; call update first")
        dt = time.to_gps_seconds() - self._last_time
        return self._position + self._velocity * dt
