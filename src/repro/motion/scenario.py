"""Kinematic observation generation for moving receivers."""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.atmosphere import KlobucharModel, SaastamoinenModel
from repro.clocks.models import ReceiverClockModel, SteeringClock
from repro.constants import SPEED_OF_LIGHT
from repro.constellation import Constellation
from repro.errors import ConfigurationError
from repro.motion.trajectory import Trajectory
from repro.observations import EpochTruth, ObservationEpoch
from repro.signals import MeasurementCorrector, PseudorangeNoiseModel, PseudorangeSimulator
from repro.timebase import GpsTime


class KinematicScenario:
    """Observation epochs for a receiver moving along a trajectory.

    The moving counterpart of
    :class:`repro.stations.ObservationDataset`: same physics, same
    correction chain, but the receiver position (and hence visibility,
    geometry, and the corrector's position hint) follows the trajectory
    each epoch, and the position hint is the *previous* fix in real
    receivers — here the truth position, which for the meter-level
    atmospheric corrections is an indistinguishable stand-in.

    Parameters
    ----------
    trajectory:
        The receiver's truth path.
    constellation:
        The space segment (build one with :meth:`Constellation.nominal`).
    receiver_clock:
        Receiver clock truth model; defaults to a mild steering clock.
    start_time, duration_seconds, interval_seconds:
        The observation span.
    noise_sigma_meters, ionosphere_scale:
        Error-model knobs, mirroring
        :class:`~repro.stations.dataset.DatasetConfig`.
    seed:
        Root seed for the per-epoch noise.
    """

    def __init__(
        self,
        trajectory: Trajectory,
        constellation: Constellation,
        start_time: GpsTime,
        duration_seconds: float,
        interval_seconds: float = 1.0,
        receiver_clock: Optional[ReceiverClockModel] = None,
        noise_sigma_meters: float = 0.8,
        ionosphere_scale: float = 1.25,
        track_carrier: bool = False,
        track_doppler: bool = False,
        seed: int = 42,
    ) -> None:
        if duration_seconds <= 0 or interval_seconds <= 0:
            raise ConfigurationError("duration and interval must be positive")
        self.trajectory = trajectory
        self.start_time = start_time
        self.interval_seconds = float(interval_seconds)
        self.epoch_count = int(round(duration_seconds / interval_seconds))
        self._seed = int(seed)

        self._clock = (
            receiver_clock
            if receiver_clock is not None
            else SteeringClock(epoch=start_time, offset_seconds=5e-8, drift=2e-10)
        )
        truth_iono = KlobucharModel(
            alpha=tuple(ionosphere_scale * a for a in KlobucharModel().alpha)
        )
        self._simulator = PseudorangeSimulator(
            constellation,
            self._clock,
            ionosphere=truth_iono,
            troposphere=SaastamoinenModel(relative_humidity=0.6),
            noise=PseudorangeNoiseModel(sigma_meters=noise_sigma_meters),
            track_carrier=track_carrier,
            carrier_seed=seed,
            track_doppler=track_doppler,
        )
        self._track_doppler = track_doppler
        self._corrector = MeasurementCorrector(constellation)

    @property
    def clock_model(self) -> ReceiverClockModel:
        """The truth receiver clock (for oracle predictors in tests)."""
        return self._clock

    # ------------------------------------------------------------------
    def epoch_at(self, index: int) -> ObservationEpoch:
        """Generate the ``index``-th epoch along the trajectory."""
        if not 0 <= index < self.epoch_count:
            raise ConfigurationError(
                f"epoch index {index} out of range [0, {self.epoch_count})"
            )
        time = self.start_time + index * self.interval_seconds
        position = self.trajectory.position_at(time)
        rng = np.random.default_rng(np.random.SeedSequence([self._seed, index]))
        velocity = (
            self.trajectory.velocity_at(time) if self._track_doppler else None
        )
        raw = self._simulator.simulate_epoch(
            position, time, rng, receiver_velocity=velocity
        )
        if not raw:
            raise ConfigurationError(
                f"no visible satellites at kinematic epoch {index}"
            )
        truth = EpochTruth(
            receiver_position=position,
            clock_bias_meters=SPEED_OF_LIGHT * self._clock.bias_seconds(time),
        )
        return self._corrector.correct_epoch(raw, position, time, truth)

    def epochs(self) -> Iterator[ObservationEpoch]:
        """Stream all epochs along the trajectory."""
        for index in range(self.epoch_count):
            yield self.epoch_at(index)
