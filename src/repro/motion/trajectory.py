"""Receiver trajectory models (truth paths for kinematic scenarios)."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geodesy import geodetic_to_ecef
from repro.timebase import GpsTime
from repro.utils.validation import require_shape


class Trajectory(ABC):
    """A receiver's true position as a function of GPS time."""

    @abstractmethod
    def position_at(self, time: GpsTime) -> np.ndarray:
        """True ECEF position (meters) at ``time``."""

    def velocity_at(self, time: GpsTime, half_step: float = 0.5) -> np.ndarray:
        """ECEF velocity (m/s) by symmetric differencing."""
        before = self.position_at(time - half_step)
        after = self.position_at(time + half_step)
        return (after - before) / (2.0 * half_step)


class StaticTrajectory(Trajectory):
    """A receiver that does not move (a station)."""

    def __init__(self, position_ecef: np.ndarray) -> None:
        self._position = require_shape("position_ecef", position_ecef, (3,)).copy()

    def position_at(self, time: GpsTime) -> np.ndarray:
        return self._position.copy()

    def velocity_at(self, time: GpsTime, half_step: float = 0.5) -> np.ndarray:
        return np.zeros(3)


class LinearTrajectory(Trajectory):
    """Constant-velocity motion in the ECEF frame.

    Appropriate for short spans (seconds to minutes); over longer spans
    a straight ECEF line leaves the earth's surface.
    """

    def __init__(
        self,
        start_position_ecef: np.ndarray,
        velocity_ecef: np.ndarray,
        epoch: GpsTime,
    ) -> None:
        self._start = require_shape("start_position_ecef", start_position_ecef, (3,)).copy()
        self._velocity = require_shape("velocity_ecef", velocity_ecef, (3,)).copy()
        self._epoch = epoch

    def position_at(self, time: GpsTime) -> np.ndarray:
        dt = time.to_gps_seconds() - self._epoch.to_gps_seconds()
        return self._start + self._velocity * dt

    def velocity_at(self, time: GpsTime, half_step: float = 0.5) -> np.ndarray:
        return self._velocity.copy()


class GreatCircleTrajectory(Trajectory):
    """Constant ground speed along a great circle at constant altitude.

    The standard model for an aircraft leg: start point, initial true
    heading (radians, clockwise from north), speed over ground, and
    altitude above the ellipsoid.  Positions follow the exact
    spherical great-circle propagation, then get the ellipsoidal
    altitude re-applied.
    """

    #: Mean earth radius used for the spherical great-circle step (m).
    _SPHERE_RADIUS = 6_371_000.0

    def __init__(
        self,
        start_latitude: float,
        start_longitude: float,
        altitude_m: float,
        heading: float,
        speed_mps: float,
        epoch: GpsTime,
    ) -> None:
        if speed_mps < 0:
            raise ConfigurationError("speed_mps must be >= 0")
        if not -math.pi / 2 <= start_latitude <= math.pi / 2:
            raise ConfigurationError("start_latitude must be in [-pi/2, pi/2]")
        self._lat0 = float(start_latitude)
        self._lon0 = float(start_longitude)
        self._altitude = float(altitude_m)
        self._heading = float(heading)
        self._speed = float(speed_mps)
        self._epoch = epoch

    def position_at(self, time: GpsTime) -> np.ndarray:
        dt = time.to_gps_seconds() - self._epoch.to_gps_seconds()
        sigma = self._speed * dt / self._SPHERE_RADIUS  # angular distance
        sin_lat0, cos_lat0 = math.sin(self._lat0), math.cos(self._lat0)
        sin_sigma, cos_sigma = math.sin(sigma), math.cos(sigma)

        sin_lat = sin_lat0 * cos_sigma + cos_lat0 * sin_sigma * math.cos(self._heading)
        latitude = math.asin(max(-1.0, min(1.0, sin_lat)))
        d_lon = math.atan2(
            math.sin(self._heading) * sin_sigma * cos_lat0,
            cos_sigma - sin_lat0 * sin_lat,
        )
        longitude = self._lon0 + d_lon
        return geodetic_to_ecef(latitude, longitude, self._altitude)


class WaypointTrajectory(Trajectory):
    """Piecewise-linear interpolation through timed ECEF waypoints.

    The workhorse for replaying recorded routes: pass
    ``[(time, position), ...]`` in time order; positions between
    waypoints interpolate linearly, and queries outside the span clamp
    to the endpoints (the vehicle waits at its first/last fix).
    """

    def __init__(self, waypoints: Sequence[Tuple[GpsTime, np.ndarray]]) -> None:
        if len(waypoints) < 2:
            raise ConfigurationError("need at least two waypoints")
        times: List[float] = []
        points: List[np.ndarray] = []
        for when, position in waypoints:
            times.append(when.to_gps_seconds())
            points.append(require_shape("waypoint position", position, (3,)).copy())
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ConfigurationError("waypoints must be strictly increasing in time")
        self._times = np.array(times)
        self._points = np.stack(points)

    def position_at(self, time: GpsTime) -> np.ndarray:
        t = time.to_gps_seconds()
        if t <= self._times[0]:
            return self._points[0].copy()
        if t >= self._times[-1]:
            return self._points[-1].copy()
        index = int(np.searchsorted(self._times, t) - 1)
        span = self._times[index + 1] - self._times[index]
        fraction = (t - self._times[index]) / span
        return self._points[index] + fraction * (
            self._points[index + 1] - self._points[index]
        )
