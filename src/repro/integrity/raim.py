"""Receiver Autonomous Integrity Monitoring (RAIM).

The paper's over-determined systems (m > 4) leave redundancy that the
least-squares residuals expose; RAIM turns that redundancy into fault
detection.  The textbook residual-based scheme implemented here:

* **Detection** — the sum of squared range residuals, normalized by
  the measurement variance, is chi-square distributed with ``m - 4``
  degrees of freedom under the no-fault hypothesis; exceeding the
  ``1 - p_false_alarm`` quantile flags the epoch.
* **Exclusion** — re-solve with each satellite left out in turn; if
  exactly the subsets excluding one particular satellite pass the
  test, that satellite is the faulty one and its exclusion is the
  repaired fix.

This complements the paper's fast closed-form solvers in exactly the
setting they target: a high-rate pipeline can afford RAIM on every
epoch only if the per-solve cost is small — which is what DLO/DLG buy.
The vectorized batch counterpart lives in
:mod:`repro.integrity.fde`; this scalar monitor is its reference
implementation and the two are differentially tested against each
other.

The chi-square quantile uses the exact normal-quantile identity at one
degree of freedom and the Wilson-Hilferty approximation above it, so
the module stays numpy-only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.base import PositioningAlgorithm
from repro.solvers.newton_raphson import NewtonRaphsonSolver
from repro.core.types import PositionFix
from repro.errors import ConfigurationError, ConvergenceError, GeometryError
from repro.observations import ObservationEpoch


def chi_square_quantile(probability: float, dof: int) -> float:
    """Chi-square quantile: exact at ``dof <= 2``, Wilson-Hilferty above.

    ``dof == 1`` is RAIM's m=5 detection case, where Wilson-Hilferty is
    at its worst (the cube-root normalization assumes more averaging
    than one squared normal provides).  There the identity
    ``chi2_1(p) = Phi^-1((1 + p) / 2)^2`` — equivalently, with upper
    tail ``q = 1 - p``, ``Phi^-1(1 - q/2)^2`` — is exact, since
    ``X ~ chi2_1`` is the square of a standard normal.  ``dof == 2``
    (the two-constellation m=9 detection gate, and every minimal
    exclusion subset one satellite above it) is the exponential
    distribution, where ``chi2_2(p) = -2 ln(1 - p)`` is likewise exact.
    For ``dof >= 3`` Wilson-Hilferty stays within a fraction of a
    percent across the upper-tail probabilities RAIM uses.
    """
    if not 0.0 < probability < 1.0:
        raise ConfigurationError("probability must be in (0, 1)")
    if dof < 1:
        raise ConfigurationError("dof must be at least 1")
    if dof == 1:
        z = _normal_quantile(0.5 * (1.0 + probability))
        return z * z
    if dof == 2:
        return -2.0 * math.log(1.0 - probability)
    z = _normal_quantile(probability)
    term = 1.0 - 2.0 / (9.0 * dof) + z * math.sqrt(2.0 / (9.0 * dof))
    return dof * term**3


def _normal_quantile(probability: float) -> float:
    """Standard normal quantile via Acklam's rational approximation."""
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425

    if probability < p_low:
        q = math.sqrt(-2.0 * math.log(probability))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if probability <= 1.0 - p_low:
        q = probability - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    q = math.sqrt(-2.0 * math.log(1.0 - probability))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
    )


@dataclass(frozen=True)
class RaimResult:
    """Outcome of a RAIM check on one epoch.

    Attributes
    ----------
    fix:
        The fix to use: the original when the test passes, the repaired
        (post-exclusion) fix when exclusion succeeds, otherwise the
        original fix flagged unusable.
    passed:
        Whether the *final* fix passes the global test.
    test_statistic, threshold:
        The normalized sum of squared residuals and its chi-square
        gate.
    excluded_prn:
        PRN removed by exclusion, or ``None``.
    """

    fix: PositionFix
    passed: bool
    test_statistic: float
    threshold: float
    excluded_prn: Optional[int] = None


class RaimMonitor:
    """Residual-based fault detection and single-satellite exclusion.

    Parameters
    ----------
    solver:
        Any P4P algorithm producing a ``residual_norm`` (all of this
        library's solvers do).  NR is the conventional choice.
    sigma_meters:
        Expected 1-sigma of the pseudorange residuals under no fault.
    p_false_alarm:
        Probability of flagging a fault-free epoch.
    """

    def __init__(
        self,
        solver: Optional[PositioningAlgorithm] = None,
        sigma_meters: float = 3.0,
        p_false_alarm: float = 1e-3,
    ) -> None:
        if sigma_meters <= 0:
            raise ConfigurationError("sigma_meters must be positive")
        if not 0.0 < p_false_alarm < 1.0:
            raise ConfigurationError("p_false_alarm must be in (0, 1)")
        self.solver = solver if solver is not None else NewtonRaphsonSolver()
        self.sigma = float(sigma_meters)
        self.p_false_alarm = float(p_false_alarm)

    # ------------------------------------------------------------------
    def check(self, epoch: ObservationEpoch) -> RaimResult:
        """Detect and, if possible, exclude a faulty satellite."""
        m = epoch.satellite_count
        dof = self._solver_dof(epoch)
        if dof < 1:
            # Single-constellation solvers reduce to the classic m >= 5
            # requirement; per-constellation solvers burn extra dof on
            # the additional clock unknowns (and, when differenced, the
            # extra base satellites), so the floor rises with K.
            if m < 5:
                raise GeometryError(
                    "RAIM detection needs redundancy: at least 5 satellites "
                    f"(got {m})"
                )
            raise GeometryError(
                f"RAIM detection needs redundancy: {m} satellites across "
                f"{epoch.constellation_count} constellations leave "
                f"{self.solver.name} no spare degrees of freedom"
            )
        fix = self.solver.solve(epoch)
        statistic, threshold = self._test(fix, dof)
        if statistic <= threshold:
            return RaimResult(
                fix=fix, passed=True, test_statistic=statistic, threshold=threshold
            )

        repaired = self._exclude(epoch)
        if repaired is not None:
            prn, repaired_fix, repaired_stat, repaired_threshold = repaired
            return RaimResult(
                fix=repaired_fix,
                passed=True,
                test_statistic=repaired_stat,
                threshold=repaired_threshold,
                excluded_prn=prn,
            )
        return RaimResult(
            fix=fix, passed=False, test_statistic=statistic, threshold=threshold
        )

    # ------------------------------------------------------------------
    def _solver_dof(self, epoch: ObservationEpoch) -> int:
        """The solver's residual dof, defaulting to the classic ``m - 4``.

        Duck-typed solvers (the monitor only requires ``solve``) may not
        implement :meth:`~repro.core.base.PositioningAlgorithm.
        residual_dof`; they get the single-constellation counting.
        """
        dof_of = getattr(self.solver, "residual_dof", None)
        if dof_of is None:
            return epoch.satellite_count - 4
        return int(dof_of(epoch))

    def _test(self, fix: PositionFix, dof: int) -> "tuple[float, float]":
        statistic = (fix.residual_norm / self.sigma) ** 2
        threshold = chi_square_quantile(1.0 - self.p_false_alarm, dof)
        return statistic, threshold

    def _exclude(self, epoch: ObservationEpoch):
        """Try dropping each satellite; return the best passing subset.

        Subsets are ranked by *normalized margin* ``statistic /
        threshold``, not raw statistic: when candidate subsets end up
        with different satellite counts (a solver rejecting one subset
        changes nothing, but callers may pass heterogeneous exclusion
        candidates), their thresholds differ and raw statistics are not
        comparable across them.  Ties keep the first (lowest-index)
        candidate, so the selection is deterministic under permutation
        of equal margins.
        """
        if epoch.satellite_count < 6:
            return None  # exclusion needs m - 1 >= 5 for a residual test
        best = None
        best_margin = None
        for drop_index in range(epoch.satellite_count):
            observations = [
                obs
                for index, obs in enumerate(epoch.observations)
                if index != drop_index
            ]
            subset = epoch.with_observations(observations)
            sub_dof = self._solver_dof(subset)
            if sub_dof < 1:
                # A per-constellation subset can run out of redundancy
                # before the m >= 6 gate above notices (each extra
                # constellation costs dof); no residual test, no verdict.
                continue
            try:
                fix = self.solver.solve(subset)
            except (GeometryError, ConvergenceError):
                continue
            statistic, threshold = self._test(fix, sub_dof)
            if statistic <= threshold:
                margin = statistic / threshold
                if best_margin is None or margin < best_margin:
                    dropped_prn = epoch.observations[drop_index].prn
                    best = (dropped_prn, fix, statistic, threshold)
                    best_margin = margin
        if best is None:
            return None
        return best[0], best[1], best[2], best[3]
