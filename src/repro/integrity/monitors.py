"""Streaming signal-plausibility monitors: what residuals can't see.

The RAIM/FDE stack (:mod:`repro.integrity.fde`) is residual-based: it
catches measurements that disagree with *each other*.  A coherent
spoofer — a meaconed replay, a slow position drag, a clock pull — keeps
the measurement set self-consistent by construction, so every residual
test passes while the fix walks away.  The monitors in this module
watch the observables such an attack cannot keep plausible at the same
time: the C/N0 lane against the elevation-dependent nominal curve
(:mod:`repro.signals.features`), the implied per-system receiver clock
against its physical drift bounds, and — for receivers that declare
themselves stationary — the fix itself against position/velocity
plausibility.

Architecture:

* a :class:`StreamingMonitor` consumes a :class:`StreamContext` (the
  stream-ordered, NaN-padded columnar lanes of one solved
  :class:`~repro.blocks.PackedStream`) and returns vectorized per-epoch
  raw breaches, statistics and per-satellite flags.  Monitors carry
  bounded ring-buffer state across calls, keyed only on epoch order —
  never on batch boundaries — so a stream chopped into different batch
  sizes produces bitwise-identical verdicts (the shard-parity
  contract);
* :class:`MonitorSuite` runs a set of monitors and applies the
  **M-of-N confirmation rung**: a raw breach is ``suspect`` the epoch
  it fires and escalates to ``spoofed`` once ``confirm_epochs`` of the
  last ``confirm_window`` epochs breached — one noisy epoch degrades
  gracefully (served, flagged, recorded), a persistent signature blocks;
* combinators (:class:`AndFiltered`, :class:`MOfNFiltered`) compose
  monitors at the raw-breach level for custom suites;
* per-satellite flags feed :meth:`SatelliteHealthTracker.
  record_monitor_strike <repro.integrity.health.SatelliteHealthTracker.
  record_monitor_strike>`, so monitor evidence drives the same
  quarantine machinery as FDE exclusions without double-counting.

Everything is NaN-aware: a stream without a C/N0 lane simply keeps the
C/N0 monitors silent, and epochs whose solve failed are skipped by the
geometry monitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.blocks import PackedStream
from repro.constellation.systems import SYSTEM_CODES, system_code
from repro.errors import ConfigurationError

__all__ = [
    "SEVERITY_NOMINAL",
    "SEVERITY_SUSPECT",
    "SEVERITY_SPOOFED",
    "SEVERITY_NAMES",
    "MonitorVerdict",
    "EpochMonitorVerdict",
    "MonitorRecord",
    "MonitorConfig",
    "MonitorSuite",
    "StreamContext",
    "StreamingMonitor",
    "Cn0ThresholdMonitor",
    "Cn0DropMonitor",
    "Cn0ConsistencyMonitor",
    "Cn0AgcProxyMonitor",
    "ClockDriftRateMonitor",
    "StationaryPositionMonitor",
    "StationaryVelocityMonitor",
    "AndFiltered",
    "MOfNFiltered",
]

#: Epoch-level severity ladder.  ``suspect`` = a raw breach this epoch
#: (served, flagged); ``spoofed`` = the breach confirmed by the M-of-N
#: rung (policy may refuse to serve the fix).
SEVERITY_NOMINAL = 0
SEVERITY_SUSPECT = 1
SEVERITY_SPOOFED = 2
SEVERITY_NAMES: Tuple[str, ...] = ("nominal", "suspect", "spoofed")

_SECONDS_PER_WEEK = 604800.0


def _key_label(key: int) -> str:
    """``prn*4+system`` identity key to a ``G07``-style label."""
    return f"{system_code(int(key) & 3)}{int(key) >> 2:02d}"


@dataclass(frozen=True)
class MonitorVerdict:
    """One monitor's verdict on one epoch.

    ``statistic`` is the monitor's decision variable at this epoch and
    ``threshold`` the value it breached (adaptive monitors report the
    learned threshold).  ``flagged`` names the satellites the monitor
    implicates (``G07``-style labels); common-mode monitors flag none.
    """

    monitor: str
    severity: str
    statistic: float
    threshold: float
    flagged: Tuple[str, ...] = ()

    def to_dict(self) -> Dict:
        return {
            "monitor": self.monitor,
            "severity": self.severity,
            "statistic": self.statistic,
            "threshold": self.threshold,
            "flagged": list(self.flagged),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MonitorVerdict":
        return cls(
            monitor=str(data["monitor"]),
            severity=str(data["severity"]),
            statistic=float(data["statistic"]),
            threshold=float(data["threshold"]),
            flagged=tuple(str(label) for label in data.get("flagged", ())),
        )


@dataclass(frozen=True)
class EpochMonitorVerdict:
    """The suite's aggregate verdict on one epoch.

    ``severity`` is the maximum over monitors; ``monitors`` lists only
    the non-nominal contributors (a nominal epoch has no verdict object
    at all — see :meth:`MonitorRecord.verdict`).
    """

    severity: str
    monitors: Tuple[MonitorVerdict, ...]

    @property
    def flagged(self) -> Tuple[str, ...]:
        """Union of per-monitor satellite flags, sorted."""
        labels = {label for verdict in self.monitors for label in verdict.flagged}
        return tuple(sorted(labels))

    def to_dict(self) -> Dict:
        return {
            "severity": self.severity,
            "monitors": [verdict.to_dict() for verdict in self.monitors],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "EpochMonitorVerdict":
        return cls(
            severity=str(data["severity"]),
            monitors=tuple(
                MonitorVerdict.from_dict(verdict)
                for verdict in data.get("monitors", ())
            ),
        )


@dataclass
class StreamContext:
    """Stream-ordered columnar lanes of one solved packed stream.

    Built once per :meth:`MonitorSuite.observe_stream` call and shared
    by every monitor.  All per-satellite lanes are ``(N, m_max)``
    NaN/-1-padded scatters of the bucket blocks back into stream order;
    ``receiver_positions`` are the *solved* fixes (NaN rows where the
    solve failed), which is deliberate — the monitors judge what the
    service is about to serve, not what the simulator knows.
    """

    times: np.ndarray  # (N,) seconds (week*604800 + sow)
    receiver_positions: np.ndarray  # (N, 3) solved fixes, NaN-padded
    cn0: np.ndarray  # (N, m_max) dB-Hz, NaN-padded
    nominal_cn0: np.ndarray  # (N, m_max) expected dB-Hz, NaN-padded
    keys: np.ndarray  # (N, m_max) prn*4+system, -1-padded
    system_ids: np.ndarray  # (N, m_max) int8, -1-padded
    sat_positions: np.ndarray  # (N, m_max, 3) ECEF, NaN-padded
    pseudoranges: np.ndarray  # (N, m_max) meters, NaN-padded
    ranges: np.ndarray  # (N, m_max) |sat - fix| meters, NaN-padded
    _cn0_deviation: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.times.shape[0])

    @property
    def width(self) -> int:
        return int(self.cn0.shape[1])

    @property
    def cn0_deviation(self) -> np.ndarray:
        """``cn0 - nominal_cn0``, computed once and shared."""
        if self._cn0_deviation is None:
            self._cn0_deviation = self.cn0 - self.nominal_cn0
        return self._cn0_deviation


def _build_context(
    packed: PackedStream,
    positions: np.ndarray,
    zenith_dbhz: float,
    horizon_dbhz: float,
) -> StreamContext:
    n = len(packed)
    m_max = max((b.satellite_count for b in packed.buckets), default=0)
    sole = packed.buckets[0] if len(packed.buckets) == 1 else None
    if (
        sole is not None
        and sole.satellite_count == m_max
        and m_max
        and bool((np.asarray(sole.indices) == np.arange(n)).all())
    ):
        # Uniform stream in order (the serving hot path): the bucket's
        # columnar lanes ARE the context lanes — no prefill, no scatter.
        block = sole.block
        times = block.weeks * _SECONDS_PER_WEEK + block.seconds_of_week
        keys = block.prns * 4 + block.systems.astype(np.int64)
        system_ids = block.systems.astype(np.int8, copy=False)
        sat_positions = block.positions
        pseudoranges = block.pseudoranges
        cn0 = (
            block.cn0 if block.cn0 is not None else np.full((n, m_max), np.nan)
        )
    else:
        times = np.full(n, np.nan)
        cn0 = np.full((n, m_max), np.nan)
        keys = np.full((n, m_max), -1, dtype=np.int64)
        system_ids = np.full((n, m_max), -1, dtype=np.int8)
        sat_positions = np.full((n, m_max, 3), np.nan)
        pseudoranges = np.full((n, m_max), np.nan)
        for bucket in packed.buckets:
            idx = np.asarray(bucket.indices)
            m = bucket.satellite_count
            block = bucket.block
            times[idx] = block.weeks * _SECONDS_PER_WEEK + block.seconds_of_week
            if m:
                keys[idx, :m] = block.prns * 4 + block.systems.astype(np.int64)
                system_ids[idx, :m] = block.systems
                sat_positions[idx, :m, :] = block.positions
                pseudoranges[idx, :m] = block.pseudoranges
                if block.cn0 is not None:
                    cn0[idx, :m] = block.cn0
    receiver = np.asarray(positions, dtype=float).reshape(n, 3)
    if m_max:
        # One pass over the satellite geometry, shared by the nominal
        # C/N0 curve here and the clock-drift monitor's residuals.
        delta = sat_positions - receiver[:, np.newaxis, :]
        with np.errstate(invalid="ignore", divide="ignore"):
            # einsum fuses the square-and-reduce into one pass with no
            # (N, m, 3) temporaries; over a length-3 axis its
            # accumulation order matches sum(), so the bits agree with
            # the scalar path.
            ranges = np.sqrt(np.einsum("ijk,ijk->ij", delta, delta))
            up = (
                receiver
                / np.sqrt(np.einsum("ij,ij->i", receiver, receiver))[
                    :, np.newaxis
                ]
            )
            sin_el = np.einsum("ijk,ik->ij", delta, up) / ranges
        # sin(arcsin(x)) is x: feed the elevation sine straight into the
        # gain curve instead of round-tripping through the angle.  NaN
        # lanes (padded satellites, failed fixes) propagate through the
        # clip, so no explicit finite mask is needed.
        gain = np.clip(sin_el, 0.0, 1.0)
        nominal = horizon_dbhz + (zenith_dbhz - horizon_dbhz) * gain
    else:
        ranges = np.full((n, 0), np.nan)
        nominal = np.full((n, 0), np.nan)
    return StreamContext(
        times=times,
        receiver_positions=receiver,
        cn0=cn0,
        nominal_cn0=nominal,
        keys=keys,
        system_ids=system_ids,
        sat_positions=sat_positions,
        pseudoranges=pseudoranges,
        ranges=ranges,
    )


# ----------------------------------------------------------------------
# NaN-quiet reductions (no RuntimeWarnings on all-NaN rows).


def _masked_min(values: np.ndarray) -> np.ndarray:
    mask = np.isfinite(values)
    filled = np.where(mask, values, np.inf)
    result = filled.min(axis=-1) if values.shape[-1] else np.full(
        values.shape[:-1], np.inf
    )
    return np.where(mask.any(axis=-1), result, np.nan)


def _masked_max(values: np.ndarray) -> np.ndarray:
    mask = np.isfinite(values)
    filled = np.where(mask, values, -np.inf)
    result = filled.max(axis=-1) if values.shape[-1] else np.full(
        values.shape[:-1], -np.inf
    )
    return np.where(mask.any(axis=-1), result, np.nan)


def _masked_mean(values: np.ndarray) -> np.ndarray:
    mask = np.isfinite(values)
    counts = mask.sum(axis=-1)
    sums = np.where(mask, values, 0.0).sum(axis=-1)
    return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)


def _masked_std(values: np.ndarray, min_count: int = 2) -> np.ndarray:
    mask = np.isfinite(values)
    counts = mask.sum(axis=-1)
    safe = np.maximum(counts, 1)
    means = np.where(mask, values, 0.0).sum(axis=-1) / safe
    centered = np.where(mask, values - means[..., np.newaxis], 0.0)
    variance = (centered**2).sum(axis=-1) / safe
    return np.where(counts >= min_count, np.sqrt(variance), np.nan)


@dataclass
class MonitorOutput:
    """Raw, unconfirmed per-epoch output of one monitor."""

    breach: np.ndarray  # (N,) bool
    statistic: np.ndarray  # (N,) float
    threshold: np.ndarray  # (N,) float (adaptive monitors vary per epoch)
    flagged: Optional[np.ndarray] = None  # (N, m_max) bool, None = no flags


class StreamingMonitor:
    """Base protocol: vectorized observe with ring-buffer state.

    State must be a pure function of the *epoch sequence* observed so
    far — never of how the sequence was chopped into ``observe`` calls.
    That invariant is what makes in-process and sharded runs bitwise
    comparable.
    """

    name: str = "?"

    def reset(self) -> None:
        """Drop all carried state (start of a new stream)."""

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        """Raw breaches for every epoch of ``ctx``, advancing state."""
        raise NotImplementedError


class Cn0ThresholdMonitor(StreamingMonitor):
    """Absolute C/N0 floor: tracking this weak is not open-sky GPS.

    Flags satellites below ``threshold_dbhz``; breaches when at least
    ``min_flagged`` are flagged at once (deep jamming pushes the whole
    sky down; a single weak satellite is just a blocked ray).
    """

    name = "cn0_threshold"

    def __init__(self, threshold_dbhz: float = 28.0, min_flagged: int = 2) -> None:
        if not np.isfinite(threshold_dbhz):
            raise ConfigurationError("threshold_dbhz must be finite")
        if min_flagged < 1:
            raise ConfigurationError("min_flagged must be at least 1")
        self.threshold_dbhz = float(threshold_dbhz)
        self.min_flagged = int(min_flagged)

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        flagged = ctx.cn0 < self.threshold_dbhz  # NaN compares False
        breach = flagged.sum(axis=1) >= self.min_flagged
        return MonitorOutput(
            breach=breach,
            statistic=_masked_min(ctx.cn0),
            threshold=np.full(len(ctx), self.threshold_dbhz),
            flagged=flagged,
        )


class Cn0DropMonitor(StreamingMonitor):
    """Abrupt per-satellite C/N0 drop between consecutive epochs.

    A spoofer capturing a tracking loop first drowns the authentic
    signal — a step down (then up) in C/N0 no elevation change
    explains.  Satellites are matched to the previous epoch by
    ``(system, prn)`` identity; the common case of a stable
    constellation compares lanes elementwise, and rows whose satellite
    set changed fall back to a keyed match.
    """

    name = "cn0_drop"

    def __init__(self, drop_db: float = 8.0) -> None:
        if not np.isfinite(drop_db) or drop_db <= 0:
            raise ConfigurationError("drop_db must be positive and finite")
        self.drop_db = float(drop_db)
        self._last_keys: Optional[np.ndarray] = None
        self._last_cn0: Optional[np.ndarray] = None

    def reset(self) -> None:
        self._last_keys = None
        self._last_cn0 = None

    @staticmethod
    def _keyed_drop(
        drops: np.ndarray,
        row: int,
        keys: np.ndarray,
        cn0: np.ndarray,
        prev_keys: np.ndarray,
        prev_cn0: np.ndarray,
    ) -> None:
        """Slow path: match the previous epoch's satellites by key."""
        lookup = {
            int(k): float(prev_cn0[j]) for j, k in enumerate(prev_keys) if k >= 0
        }
        for j, k in enumerate(keys[row]):
            if k >= 0 and int(k) in lookup:
                drops[row, j] = lookup[int(k)] - cn0[row, j]

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        n, width = len(ctx), ctx.width
        drops = np.full((n, width), np.nan)
        keys, cn0 = ctx.keys, ctx.cn0
        if n and width:
            if self._last_keys is not None:
                # Row 0 diffs against the carried previous epoch — by
                # lane when the satellite set is unchanged, by key
                # otherwise, exactly as a mid-call transition would, so
                # batch boundaries cannot change the verdict.
                if self._last_keys.shape[0] == width and bool(
                    (self._last_keys == keys[0]).all()
                ):
                    drops[0] = self._last_cn0 - cn0[0]
                else:
                    self._keyed_drop(
                        drops, 0, keys, cn0, self._last_keys, self._last_cn0
                    )
            if n > 1:
                aligned = (keys[1:] == keys[:-1]).all(axis=1)
                if aligned.all():
                    # Stable constellation (the hot path): plain slice
                    # arithmetic, no gather.
                    drops[1:] = cn0[:-1] - cn0[1:]
                else:
                    rows = np.flatnonzero(aligned) + 1
                    drops[rows] = cn0[rows - 1] - cn0[rows]
                    for row in np.flatnonzero(~aligned) + 1:
                        self._keyed_drop(
                            drops, row, keys, cn0, keys[row - 1], cn0[row - 1]
                        )
            self._last_keys = keys[-1].copy()
            self._last_cn0 = cn0[-1].copy()
        flagged = drops > self.drop_db
        return MonitorOutput(
            breach=flagged.any(axis=1),
            statistic=_masked_max(drops),
            threshold=np.full(n, self.drop_db),
            flagged=flagged,
        )


class Cn0ConsistencyMonitor(StreamingMonitor):
    """Cross-satellite C/N0 consistency against the elevation curve.

    Independent satellites scatter tightly around the nominal curve; a
    single-transmitter spoofer hands every channel roughly the *same*
    power, so the deviation-from-nominal spread blows up to the spread
    of the curve itself.  The statistic is the standard deviation of
    ``cn0 - nominal`` over reporting satellites.
    """

    name = "cn0_consistency"

    def __init__(self, spread_db: float = 2.0, min_satellites: int = 4) -> None:
        if not np.isfinite(spread_db) or spread_db <= 0:
            raise ConfigurationError("spread_db must be positive and finite")
        if min_satellites < 2:
            raise ConfigurationError("min_satellites must be at least 2")
        self.spread_db = float(spread_db)
        self.min_satellites = int(min_satellites)

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        statistic = _masked_std(ctx.cn0_deviation, min_count=self.min_satellites)
        return MonitorOutput(
            breach=statistic > self.spread_db,
            statistic=statistic,
            threshold=np.full(len(ctx), self.spread_db),
        )


class Cn0AgcProxyMonitor(StreamingMonitor):
    """Common-mode C/N0 suppression — the software AGC proxy.

    Broadband interference drives every channel's C/N0 down together
    long before any satellite hits the absolute floor.  The statistic
    is the mean deviation from nominal; breach when it falls below
    ``-suppression_db``.
    """

    name = "cn0_agc"

    def __init__(self, suppression_db: float = 6.0) -> None:
        if not np.isfinite(suppression_db) or suppression_db <= 0:
            raise ConfigurationError("suppression_db must be positive and finite")
        self.suppression_db = float(suppression_db)

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        statistic = _masked_mean(ctx.cn0_deviation)
        return MonitorOutput(
            breach=statistic < -self.suppression_db,
            statistic=statistic,
            threshold=np.full(len(ctx), -self.suppression_db),
        )


class ClockDriftRateMonitor(StreamingMonitor):
    """Implied receiver clock drift rate, per constellation.

    The monitor-side generalization of the engine's per-system bias
    lanes: the implied bias is recomputed from the *served fix* —
    ``mean(pseudorange - range)`` per system — so it stays sensitive
    even when a solver pins the bias to a prediction (where a pull
    attack never surfaces in the solved-bias lane).  The drift rate
    over a ``window_epochs`` baseline must stay within the oscillator's
    physical bounds; a clock-pull attack is a rate step no TCXO
    exhibits.
    """

    name = "clock_drift"

    def __init__(
        self,
        max_rate_mps: float = 4.0,
        window_epochs: int = 10,
        max_gap_seconds: float = 30.0,
    ) -> None:
        if not np.isfinite(max_rate_mps) or max_rate_mps <= 0:
            raise ConfigurationError("max_rate_mps must be positive and finite")
        if window_epochs < 1:
            raise ConfigurationError("window_epochs must be at least 1")
        if not np.isfinite(max_gap_seconds) or max_gap_seconds <= 0:
            raise ConfigurationError("max_gap_seconds must be positive and finite")
        self.max_rate_mps = float(max_rate_mps)
        self.window_epochs = int(window_epochs)
        self.max_gap_seconds = float(max_gap_seconds)
        self._carry_times = np.empty(0)
        self._carry_biases = np.empty((0, len(SYSTEM_CODES)))

    def reset(self) -> None:
        self._carry_times = np.empty(0)
        self._carry_biases = np.empty((0, len(SYSTEM_CODES)))

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        n = len(ctx)
        k = len(SYSTEM_CODES)
        biases = np.full((n, k), np.nan)
        if ctx.width:
            residuals = ctx.pseudoranges - ctx.ranges
            # Bounded membership tests instead of np.unique: unique
            # sorts the whole (N, m) id array, which dwarfs four
            # equality scans on the serving hot path.
            for sid in range(k):
                members = ctx.system_ids == sid
                if not members.any():
                    continue
                if members.all():
                    # Uniform single-system stream: with every fix
                    # solved (the serving hot path) the masked mean
                    # reduces to the plain row mean, same bits — and
                    # no other system can be present, so stop scanning.
                    if np.isfinite(residuals).all():
                        biases[:, sid] = residuals.mean(axis=-1)
                    else:
                        biases[:, sid] = _masked_mean(residuals)
                    break
                masked = np.where(members, residuals, np.nan)
                biases[:, sid] = _masked_mean(masked)
        times = np.concatenate([self._carry_times, ctx.times])
        series = np.concatenate([self._carry_biases, biases])
        offset = len(self._carry_times)
        rates = np.full((n, k), np.nan)
        ref = np.arange(n) + offset - self.window_epochs
        valid_ref = ref >= 0
        if valid_ref.any():
            rows = np.flatnonzero(valid_ref)
            dt = ctx.times[rows] - times[ref[rows]]
            # A window-long baseline may legitimately span up to
            # window_epochs nominal intervals; beyond that the stream
            # gapped and the rate is meaningless.
            max_span = self.max_gap_seconds * self.window_epochs
            ok = np.isfinite(dt) & (dt > 0) & (dt <= max_span)
            with np.errstate(invalid="ignore", divide="ignore"):
                rates[rows] = np.where(
                    ok[:, np.newaxis],
                    (series[rows + offset] - series[ref[rows]])
                    / np.where(ok, dt, 1.0)[:, np.newaxis],
                    np.nan,
                )
        keep = min(len(times), self.window_epochs)
        self._carry_times = times[len(times) - keep :].copy()
        self._carry_biases = series[len(series) - keep :].copy()
        statistic = _masked_max(np.abs(rates))
        return MonitorOutput(
            breach=statistic > self.max_rate_mps,
            statistic=statistic,
            threshold=np.full(n, self.max_rate_mps),
        )


class _AdaptiveScale:
    """Shared learn-then-watch scaffolding for the stationary monitors."""

    def __init__(self, learn_epochs: int, floor: float, multiplier: float) -> None:
        self.learn_epochs = int(learn_epochs)
        self.floor = float(floor)
        self.multiplier = float(multiplier)
        self.samples: List[float] = []
        self.threshold: Optional[float] = None

    def reset(self) -> None:
        self.samples = []
        self.threshold = None

    def learned(self) -> bool:
        return self.threshold is not None

    def feed(self, sample: float) -> None:
        """One clean-phase sample; finalizes the threshold when full."""
        self.samples.append(float(sample))
        if len(self.samples) >= self.learn_epochs:
            scale = float(np.sqrt(np.mean(np.square(self.samples))))
            self.threshold = max(self.floor, self.multiplier * scale)


class StationaryPositionMonitor(StreamingMonitor):
    """Displacement plausibility for a declared-stationary receiver.

    Learns a reference position (median of the first ``learn_epochs``
    solved fixes) and a noise scale, then breaches when the fix wanders
    beyond ``max(floor_meters, sigma_multiplier * scale)`` — the slow
    position drag's signature, invisible to residuals by construction.
    """

    name = "stationary_position"

    def __init__(
        self,
        learn_epochs: int = 8,
        floor_meters: float = 15.0,
        sigma_multiplier: float = 4.0,
    ) -> None:
        if learn_epochs < 2:
            raise ConfigurationError("learn_epochs must be at least 2")
        if not np.isfinite(floor_meters) or floor_meters <= 0:
            raise ConfigurationError("floor_meters must be positive and finite")
        if not np.isfinite(sigma_multiplier) or sigma_multiplier <= 0:
            raise ConfigurationError("sigma_multiplier must be positive and finite")
        self.learn_epochs = int(learn_epochs)
        self.floor_meters = float(floor_meters)
        self.sigma_multiplier = float(sigma_multiplier)
        self._fixes: List[np.ndarray] = []
        self._reference: Optional[np.ndarray] = None
        self._scale = _AdaptiveScale(learn_epochs, floor_meters, sigma_multiplier)

    def reset(self) -> None:
        self._fixes = []
        self._reference = None
        self._scale.reset()

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        n = len(ctx)
        statistic = np.full(n, np.nan)
        threshold = np.full(n, np.nan)
        breach = np.zeros(n, dtype=bool)
        start = 0
        if self._reference is None:
            # Learning phase: consume leading finite fixes one at a
            # time until the reference exists.  Rare — at most
            # learn_epochs rows ever take this loop.
            for i in range(n):
                fix = ctx.receiver_positions[i]
                if not np.isfinite(fix).all():
                    continue
                self._fixes.append(fix.copy())
                if len(self._fixes) >= self.learn_epochs:
                    stack = np.stack(self._fixes)
                    self._reference = np.median(stack, axis=0)
                    for sample in stack:
                        self._scale.feed(
                            float(np.linalg.norm(sample - self._reference))
                        )
                    start = i + 1
                    break
            else:
                start = n
        if self._reference is not None and start < n:
            # Watch phase, fully vectorized (the armed hot path).
            delta = ctx.receiver_positions[start:] - self._reference
            with np.errstate(invalid="ignore"):
                displacement = np.sqrt((delta**2).sum(axis=1))
            finite = np.isfinite(displacement)
            statistic[start:] = displacement
            threshold[start:][finite] = self._scale.threshold
            breach[start:] = finite & (displacement > self._scale.threshold)
        return MonitorOutput(breach=breach, statistic=statistic, threshold=threshold)


class StationaryVelocityMonitor(StreamingMonitor):
    """Epoch-to-epoch implied speed of a declared-stationary receiver.

    Catches step changes — a meaconer switching on walks the fix to its
    own antenna at a speed no stationary receiver's noise exhibits.
    The threshold adapts to the observed fix-noise speed scale.
    """

    name = "stationary_velocity"

    def __init__(
        self,
        learn_epochs: int = 8,
        floor_mps: float = 15.0,
        sigma_multiplier: float = 5.0,
        max_gap_seconds: float = 30.0,
    ) -> None:
        if learn_epochs < 2:
            raise ConfigurationError("learn_epochs must be at least 2")
        if not np.isfinite(floor_mps) or floor_mps <= 0:
            raise ConfigurationError("floor_mps must be positive and finite")
        if not np.isfinite(sigma_multiplier) or sigma_multiplier <= 0:
            raise ConfigurationError("sigma_multiplier must be positive and finite")
        if not np.isfinite(max_gap_seconds) or max_gap_seconds <= 0:
            raise ConfigurationError("max_gap_seconds must be positive and finite")
        self.floor_mps = float(floor_mps)
        self.max_gap_seconds = float(max_gap_seconds)
        self._last_time: Optional[float] = None
        self._last_fix: Optional[np.ndarray] = None
        self._scale = _AdaptiveScale(learn_epochs, floor_mps, sigma_multiplier)

    def reset(self) -> None:
        self._last_time = None
        self._last_fix = None
        self._scale.reset()

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        n = len(ctx)
        statistic = np.full(n, np.nan)
        threshold = np.full(n, np.nan)
        breach = np.zeros(n, dtype=bool)
        if n == 0:
            return MonitorOutput(
                breach=breach, statistic=statistic, threshold=threshold
            )
        start = 0
        if not self._scale.learned():
            # Learning phase: consume rows one at a time until the
            # scale finalizes.  Rare — at most learn_epochs rows ever
            # take this loop.
            for i in range(n):
                self._observe_row(ctx, i, statistic, threshold, breach)
                if self._scale.learned():
                    start = i + 1
                    break
            else:
                start = n
        if start < n:
            tail_positions = ctx.receiver_positions[start:]
            tail_times = ctx.times[start:]
            if (
                self._last_fix is not None
                and bool(np.isfinite(tail_positions).all())
                and bool(np.isfinite(tail_times).all())
            ):
                # Armed hot path: every fix and stamp finite, so the
                # last-finite predecessor is just the previous row.
                prev_fix = np.vstack([self._last_fix, tail_positions[:-1]])
                prev_time = np.concatenate([[self._last_time], tail_times[:-1]])
                dt = tail_times - prev_time
                step = np.sqrt(((tail_positions - prev_fix) ** 2).sum(axis=1))
                usable = (dt > 0) & (dt <= self.max_gap_seconds)
                with np.errstate(invalid="ignore", divide="ignore"):
                    speed = np.where(
                        usable, step / np.where(usable, dt, 1.0), np.nan
                    )
                statistic[start:] = speed
                threshold[start:][usable] = self._scale.threshold
                breach[start:] = usable & (speed > self._scale.threshold)
                self._last_time = float(tail_times[-1])
                self._last_fix = tail_positions[-1].copy()
            else:
                for i in range(start, n):
                    self._observe_row(ctx, i, statistic, threshold, breach)
        return MonitorOutput(breach=breach, statistic=statistic, threshold=threshold)

    def _observe_row(
        self,
        ctx: StreamContext,
        i: int,
        statistic: np.ndarray,
        threshold: np.ndarray,
        breach: np.ndarray,
    ) -> None:
        """One epoch of the scalar path (learning, or NaN-holed tails)."""
        fix = ctx.receiver_positions[i]
        time = float(ctx.times[i]) if np.isfinite(ctx.times[i]) else None
        if not np.isfinite(fix).all() or time is None:
            return
        if self._last_fix is not None:
            dt = time - self._last_time
            if 0 < dt <= self.max_gap_seconds:
                # Same expression as the vectorized hot path — norm()
                # routes through BLAS and can differ in the last bit,
                # which would break shard parity.
                speed = float(np.sqrt(((fix - self._last_fix) ** 2).sum())) / dt
                if not self._scale.learned():
                    self._scale.feed(speed)
                else:
                    statistic[i] = speed
                    threshold[i] = self._scale.threshold
                    breach[i] = speed > self._scale.threshold
        self._last_time = time
        self._last_fix = fix.copy()


class AndFiltered(StreamingMonitor):
    """Raw-breach conjunction: breaches only when *every* child does.

    For pairing a sensitive monitor with a confirming one (e.g. AGC
    proxy AND absolute threshold) so neither alone trips the alarm.
    Statistic and threshold are taken from the first child; flags are
    the intersection of children that flag.
    """

    def __init__(self, name: str, monitors: Sequence[StreamingMonitor]) -> None:
        if not monitors:
            raise ConfigurationError("AndFiltered needs at least one monitor")
        self.name = name
        self._monitors = tuple(monitors)

    def reset(self) -> None:
        for monitor in self._monitors:
            monitor.reset()

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        outputs = [monitor.observe(ctx) for monitor in self._monitors]
        breach = outputs[0].breach.copy()
        for output in outputs[1:]:
            breach &= output.breach
        flagged: Optional[np.ndarray] = None
        for output in outputs:
            if output.flagged is None:
                continue
            flagged = (
                output.flagged.copy() if flagged is None else flagged & output.flagged
            )
        return MonitorOutput(
            breach=breach,
            statistic=outputs[0].statistic,
            threshold=outputs[0].threshold,
            flagged=flagged,
        )


class MOfNFiltered(StreamingMonitor):
    """Raw-breach persistence filter: M breaches in the last N epochs.

    Pre-confirms a flappy child *before* the suite's own confirmation
    rung, for monitors whose single-epoch breaches are meaningless.
    Ring state carries across calls, batch-boundary independent.
    """

    def __init__(
        self, monitor: StreamingMonitor, required: int, window: int
    ) -> None:
        if window < 1 or not 1 <= required <= window:
            raise ConfigurationError(
                "need 1 <= required <= window for an M-of-N filter"
            )
        self.name = f"{monitor.name}_{required}of{window}"
        self._monitor = monitor
        self._required = int(required)
        self._window = int(window)
        self._history = np.zeros(0, dtype=bool)

    def reset(self) -> None:
        self._monitor.reset()
        self._history = np.zeros(0, dtype=bool)

    def observe(self, ctx: StreamContext) -> MonitorOutput:
        output = self._monitor.observe(ctx)
        confirmed, self._history = _windowed_confirm(
            output.breach, self._history, self._required, self._window
        )
        return MonitorOutput(
            breach=confirmed,
            statistic=output.statistic,
            threshold=output.threshold,
            flagged=output.flagged,
        )


def _windowed_confirm(
    breach: np.ndarray, history: np.ndarray, required: int, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """``(confirmed, new_history)`` for an M-of-N sliding count.

    ``confirmed[i]`` is true when epoch ``i`` itself breaches and at
    least ``required`` of the trailing ``window`` epochs (ending at
    ``i``) breached.  ``history`` carries the last ``window - 1``
    breach bits between calls.
    """
    extended = np.concatenate([history, breach]).astype(np.int64)
    cumulative = np.concatenate([[0], np.cumsum(extended)])
    n = len(breach)
    offset = len(history)
    ends = np.arange(n) + offset + 1
    starts = np.maximum(ends - window, 0)
    counts = cumulative[ends] - cumulative[starts]
    confirmed = breach & (counts >= required)
    keep = min(len(extended), window - 1) if window > 1 else 0
    new_history = extended[len(extended) - keep :].astype(bool) if keep else (
        np.zeros(0, dtype=bool)
    )
    return confirmed, new_history


def _windowed_confirm_all(
    breaches: np.ndarray, history: np.ndarray, required: int, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`_windowed_confirm` for all monitors at once.

    ``breaches`` is ``(K, N)``, ``history`` ``(K, H)`` — every monitor
    of a suite shares the confirmation config, so their histories stay
    the same length and one cumulative sum covers all of them.
    """
    k = breaches.shape[0]
    extended = np.concatenate([history, breaches], axis=1).astype(np.int64)
    cumulative = np.concatenate(
        [np.zeros((k, 1), dtype=np.int64), np.cumsum(extended, axis=1)], axis=1
    )
    n = breaches.shape[1]
    offset = history.shape[1]
    ends = np.arange(n) + offset + 1
    starts = np.maximum(ends - window, 0)
    counts = cumulative[:, ends] - cumulative[:, starts]
    confirmed = breaches & (counts >= required)
    keep = min(extended.shape[1], window - 1) if window > 1 else 0
    new_history = (
        extended[:, extended.shape[1] - keep :].astype(bool)
        if keep
        else np.zeros((k, 0), dtype=bool)
    )
    return confirmed, new_history


@dataclass(frozen=True)
class MonitorRecord:
    """Struct-of-arrays verdicts for one observed stream segment.

    The vectorized product of :meth:`MonitorSuite.observe_stream` —
    per-epoch aggregate severities plus per-monitor severity/statistic/
    threshold/flag lanes.  :meth:`verdict` materializes the per-epoch
    object form lazily (and only for non-nominal epochs, which is what
    keeps the clean-stream hot path allocation-free).
    """

    names: Tuple[str, ...]
    severities: np.ndarray  # (N,) int8, max over monitors
    monitor_severities: np.ndarray  # (K, N) int8
    statistics: np.ndarray  # (K, N) float
    thresholds: np.ndarray  # (K, N) float
    flagged: np.ndarray  # (K, N, m_max) bool
    keys: np.ndarray  # (N, m_max) int64, -1-padded

    def __len__(self) -> int:
        return int(self.severities.shape[0])

    def severity_name(self, index: int) -> str:
        return SEVERITY_NAMES[int(self.severities[index])]

    def verdict(self, index: int) -> Optional[EpochMonitorVerdict]:
        """The epoch's verdict object, or ``None`` when nominal."""
        level = int(self.severities[index])
        if level == SEVERITY_NOMINAL:
            return None
        verdicts = []
        for k, name in enumerate(self.names):
            monitor_level = int(self.monitor_severities[k, index])
            if monitor_level == SEVERITY_NOMINAL:
                continue
            flags = self.flagged[k, index]
            labels = tuple(
                _key_label(key)
                for key in sorted(self.keys[index][flags])
                if key >= 0
            )
            verdicts.append(
                MonitorVerdict(
                    monitor=name,
                    severity=SEVERITY_NAMES[monitor_level],
                    statistic=float(self.statistics[k, index]),
                    threshold=float(self.thresholds[k, index]),
                    flagged=labels,
                )
            )
        return EpochMonitorVerdict(
            severity=SEVERITY_NAMES[level], monitors=tuple(verdicts)
        )

    def flagged_keys(self, index: int, min_severity: int = SEVERITY_SUSPECT):
        """Sorted unique ``prn*4+system`` keys flagged at this epoch by
        any monitor at or above ``min_severity``."""
        rows = self.monitor_severities[:, index] >= min_severity
        if not rows.any():
            return ()
        mask = self.flagged[rows, index].any(axis=0)
        return tuple(int(key) for key in sorted(self.keys[index][mask]) if key >= 0)

    def counts(self) -> Dict[str, int]:
        """Epochs per aggregate severity name."""
        return {
            name: int((self.severities == level).sum())
            for level, name in enumerate(SEVERITY_NAMES)
        }


@dataclass(frozen=True)
class MonitorConfig:
    """Tuning for the default :class:`MonitorSuite`.

    One knob per monitor family plus the shared confirmation rung; see
    ``docs/observability.md`` for the tuning runbook.  ``stationary``
    arms the position/velocity monitors — only set it for receivers
    that genuinely do not move (the spoof-detection deployments the
    suite exists for); a rover would trip them on honest motion.
    """

    cn0_threshold_dbhz: float = 28.0
    cn0_min_flagged: int = 2
    cn0_drop_db: float = 8.0
    cn0_spread_db: float = 2.0
    agc_suppression_db: float = 6.0
    clock_drift_max_mps: float = 4.0
    clock_drift_window: int = 10
    stationary: bool = True
    learn_epochs: int = 8
    position_floor_meters: float = 15.0
    position_sigma_multiplier: float = 4.0
    velocity_floor_mps: float = 15.0
    velocity_sigma_multiplier: float = 5.0
    max_gap_seconds: float = 30.0
    confirm_epochs: int = 3
    confirm_window: int = 5
    zenith_dbhz: float = 50.0
    horizon_dbhz: float = 36.0
    block_spoofed: bool = True

    def __post_init__(self) -> None:
        if self.confirm_window < 1 or not (
            1 <= self.confirm_epochs <= self.confirm_window
        ):
            raise ConfigurationError(
                "need 1 <= confirm_epochs <= confirm_window"
            )
        if self.learn_epochs < 2:
            raise ConfigurationError("learn_epochs must be at least 2")
        if self.zenith_dbhz <= self.horizon_dbhz:
            raise ConfigurationError("zenith_dbhz must exceed horizon_dbhz")
        for name in (
            "cn0_drop_db",
            "cn0_spread_db",
            "agc_suppression_db",
            "clock_drift_max_mps",
            "position_floor_meters",
            "position_sigma_multiplier",
            "velocity_floor_mps",
            "velocity_sigma_multiplier",
            "max_gap_seconds",
        ):
            value = getattr(self, name)
            if not np.isfinite(value) or value <= 0:
                raise ConfigurationError(f"{name} must be positive and finite")
        if not np.isfinite(self.cn0_threshold_dbhz):
            raise ConfigurationError("cn0_threshold_dbhz must be finite")
        if self.cn0_min_flagged < 1:
            raise ConfigurationError("cn0_min_flagged must be at least 1")
        if self.clock_drift_window < 1:
            raise ConfigurationError("clock_drift_window must be at least 1")

    def to_dict(self) -> Dict:
        return {
            "cn0_threshold_dbhz": self.cn0_threshold_dbhz,
            "cn0_min_flagged": self.cn0_min_flagged,
            "cn0_drop_db": self.cn0_drop_db,
            "cn0_spread_db": self.cn0_spread_db,
            "agc_suppression_db": self.agc_suppression_db,
            "clock_drift_max_mps": self.clock_drift_max_mps,
            "clock_drift_window": self.clock_drift_window,
            "stationary": self.stationary,
            "learn_epochs": self.learn_epochs,
            "position_floor_meters": self.position_floor_meters,
            "position_sigma_multiplier": self.position_sigma_multiplier,
            "velocity_floor_mps": self.velocity_floor_mps,
            "velocity_sigma_multiplier": self.velocity_sigma_multiplier,
            "max_gap_seconds": self.max_gap_seconds,
            "confirm_epochs": self.confirm_epochs,
            "confirm_window": self.confirm_window,
            "zenith_dbhz": self.zenith_dbhz,
            "horizon_dbhz": self.horizon_dbhz,
            "block_spoofed": self.block_spoofed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MonitorConfig":
        return cls(**data)

    def build(self) -> "MonitorSuite":
        """The default suite this config describes."""
        monitors: List[StreamingMonitor] = [
            Cn0ThresholdMonitor(self.cn0_threshold_dbhz, self.cn0_min_flagged),
            Cn0DropMonitor(self.cn0_drop_db),
            Cn0ConsistencyMonitor(self.cn0_spread_db),
            Cn0AgcProxyMonitor(self.agc_suppression_db),
            ClockDriftRateMonitor(
                self.clock_drift_max_mps,
                self.clock_drift_window,
                self.max_gap_seconds,
            ),
        ]
        if self.stationary:
            monitors.append(
                StationaryPositionMonitor(
                    self.learn_epochs,
                    self.position_floor_meters,
                    self.position_sigma_multiplier,
                )
            )
            monitors.append(
                StationaryVelocityMonitor(
                    self.learn_epochs,
                    self.velocity_floor_mps,
                    self.velocity_sigma_multiplier,
                    self.max_gap_seconds,
                )
            )
        return MonitorSuite(
            monitors,
            confirm_epochs=self.confirm_epochs,
            confirm_window=self.confirm_window,
            zenith_dbhz=self.zenith_dbhz,
            horizon_dbhz=self.horizon_dbhz,
        )


class MonitorSuite:
    """A set of streaming monitors plus the confirmation rung.

    Feed it solved streams in order via :meth:`observe_stream`; state
    (ring buffers, learned references, confirmation history) carries
    across calls, keyed on epoch order only.  Severity semantics: a raw
    breach is ``suspect`` the epoch it fires; once ``confirm_epochs``
    of the trailing ``confirm_window`` epochs breached the same
    monitor, the breach is confirmed and the epoch is ``spoofed``.
    """

    def __init__(
        self,
        monitors: Sequence[StreamingMonitor],
        confirm_epochs: int = 3,
        confirm_window: int = 5,
        zenith_dbhz: float = 50.0,
        horizon_dbhz: float = 36.0,
    ) -> None:
        if not monitors:
            raise ConfigurationError("a MonitorSuite needs at least one monitor")
        names = [monitor.name for monitor in monitors]
        if len(set(names)) != len(names):
            raise ConfigurationError("monitor names must be unique within a suite")
        if confirm_window < 1 or not 1 <= confirm_epochs <= confirm_window:
            raise ConfigurationError("need 1 <= confirm_epochs <= confirm_window")
        self._monitors = tuple(monitors)
        self._confirm_epochs = int(confirm_epochs)
        self._confirm_window = int(confirm_window)
        self._zenith_dbhz = float(zenith_dbhz)
        self._horizon_dbhz = float(horizon_dbhz)
        self._history = np.zeros((len(self._monitors), 0), dtype=bool)

    @property
    def monitors(self) -> Tuple[StreamingMonitor, ...]:
        return self._monitors

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(monitor.name for monitor in self._monitors)

    def reset(self) -> None:
        """Forget all carried state (start of a new stream)."""
        for monitor in self._monitors:
            monitor.reset()
        self._history = np.zeros((len(self._monitors), 0), dtype=bool)

    def observe_stream(
        self, packed: PackedStream, positions: np.ndarray
    ) -> MonitorRecord:
        """Judge one solved stream segment, advancing suite state.

        ``positions`` are the solved fixes aligned with the stream
        (``(N, 3)``, NaN rows where the solve failed).  Returns the
        segment's :class:`MonitorRecord`.
        """
        ctx = _build_context(
            packed, positions, self._zenith_dbhz, self._horizon_dbhz
        )
        n = len(ctx)
        k = len(self._monitors)
        flagged = np.zeros((k, n, ctx.width), dtype=bool)
        outputs = [monitor.observe(ctx) for monitor in self._monitors]
        breaches = np.stack([output.breach for output in outputs])
        statistics = np.stack([output.statistic for output in outputs])
        thresholds = np.stack([output.threshold for output in outputs])
        # One confirmation pass for the whole suite: every monitor
        # shares the M-of-N config, so their histories stay aligned.
        confirmed, self._history = _windowed_confirm_all(
            breaches, self._history, self._confirm_epochs, self._confirm_window
        )
        monitor_severities = breaches.astype(np.int8)
        monitor_severities[confirmed] = SEVERITY_SPOOFED
        for index, output in enumerate(outputs):
            # Flags only count on breaching epochs: a sub-threshold
            # per-satellite wobble is not evidence against the PRN.
            # No breach anywhere (the clean hot path) masks every flag
            # off, so the zero plane stands as-is.
            if output.flagged is not None and output.breach.any():
                flagged[index] = output.flagged & output.breach[:, np.newaxis]
        severities = (
            monitor_severities.max(axis=0)
            if k
            else np.zeros(n, dtype=np.int8)
        )
        return MonitorRecord(
            names=self.names,
            severities=severities,
            monitor_severities=monitor_severities,
            statistics=statistics,
            thresholds=thresholds,
            flagged=flagged,
            keys=ctx.keys,
        )
