"""Vectorized fault detection and exclusion over DLG batches.

:class:`BatchFde` is the batch counterpart of
:class:`~repro.integrity.raim.RaimMonitor`: the same residual
chi-square test and leave-one-out exclusion, restructured so a whole
same-satellite-count bucket is screened in a handful of stacked numpy
operations.

Two structural facts make this cheap enough to run on every epoch of
a high-rate stream:

* **Detection is free.**  The whitened (Mahalanobis) residual norm the
  Sherman-Morrison GLS path already computes — and
  :class:`~repro.solvers.batch.BatchDLGSolver` discards — *is* the
  RAIM test quantity: ``(norm / sigma)^2`` is chi-square with ``m - 4``
  degrees of freedom under no fault.  The gate is one vectorized
  comparison against a single per-bucket threshold.
* **Exclusion stays structured.**  Deleting one satellite from the
  eq. 4-26 difference system preserves the diagonal-plus-rank-one
  covariance shape (drop one diagonal entry for a non-base satellite;
  promote satellite 1 to base when the base itself is dropped), so
  every leave-one-out candidate solves through the same O(m)
  Sherman-Morrison whitening — the ``m`` candidates of all flagged
  epochs stack into *one*
  :func:`~repro.estimation.batched_gls_solve_diag_rank1` call instead
  of the scalar monitor's m full re-solves per flagged epoch.

Candidate subsets are ranked by normalized margin ``statistic /
threshold`` with a keep-first tie-break, matching the scalar
monitor's selection exactly; the two implementations are
differentially tested for identical verdicts and excluded PRNs.

Per-epoch outcomes come back as a compact :class:`FdeRecord` (int8
status codes plus flat arrays) so the fault-free fast path stays
allocation-light; individual :class:`EpochVerdict` objects are
materialized lazily on access.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.blocks import EpochBlock
from repro.constellation.systems import group_layout
from repro.errors import ConfigurationError, EstimationError, GeometryError
from repro.estimation import (
    batched_gls_solve_diag_rank1,
    batched_gls_solve_grouped_rank1,
    gls_solve_diag_rank1,
)
from repro.integrity.raim import chi_square_quantile
from repro.observations import ObservationEpoch
from repro.solvers.batch import (
    BatchDLGSolver,
    BatchMultiResult,
    build_difference_systems,
    build_multi_difference_systems,
)
from repro.telemetry import get_registry

#: Compact per-epoch status codes (int8 in :class:`FdeRecord`).
STATUS_PASSED = 0
STATUS_REPAIRED = 1
STATUS_UNUSABLE = 2
STATUS_UNCHECKED = 3

#: Code -> name, indexable by the int8 status.
STATUS_NAMES: Tuple[str, ...] = ("passed", "repaired", "unusable", "unchecked")

#: Sentinel for "no satellite excluded" in :attr:`FdeRecord.excluded_prns`.
NO_EXCLUSION = -1

#: Exclusion-latency histogram bounds (seconds per flagged batch).
_EXCLUSION_LATENCY_BUCKETS = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2,
)


@dataclass(frozen=True)
class FdeConfig:
    """Tuning for the batch FDE gate.

    Attributes
    ----------
    sigma_meters:
        Expected 1-sigma of the pseudorange residuals under no fault.
    p_false_alarm:
        Probability of flagging a fault-free epoch.
    exclude:
        Whether detection is followed by leave-one-out exclusion
        (``False`` gives a detect-only gate: flagged epochs go
        straight to ``unusable``).
    """

    sigma_meters: float = 3.0
    p_false_alarm: float = 1e-3
    exclude: bool = True

    def __post_init__(self) -> None:
        if self.sigma_meters <= 0:
            raise ConfigurationError("sigma_meters must be positive")
        if not 0.0 < self.p_false_alarm < 1.0:
            raise ConfigurationError("p_false_alarm must be in (0, 1)")

    def to_dict(self) -> Dict:
        return {
            "sigma_meters": self.sigma_meters,
            "p_false_alarm": self.p_false_alarm,
            "exclude": self.exclude,
        }


@dataclass(frozen=True)
class EpochVerdict:
    """Integrity outcome for one epoch, materialized from an FdeRecord.

    Attributes
    ----------
    status:
        ``"passed"`` (test satisfied), ``"repaired"`` (fault detected,
        one satellite excluded, subset passes), ``"unusable"`` (fault
        detected, no passing exclusion — position is the full-set
        solution and should not be trusted), or ``"unchecked"`` (no
        redundancy: fewer than 5 satellites, no test possible).
    test_statistic, threshold:
        The chi-square quantity and gate that produced the verdict —
        the *subset* pair for repaired epochs, the full-set pair
        otherwise, NaN when unchecked.
    excluded_prn:
        PRN removed by exclusion, or ``None``.
    """

    status: str
    test_statistic: float
    threshold: float
    excluded_prn: Optional[int] = None

    @property
    def usable(self) -> bool:
        """Whether the accompanying position should be trusted."""
        return self.status in ("passed", "repaired")

    def to_dict(self) -> Dict:
        return {
            "status": self.status,
            "test_statistic": self.test_statistic,
            "threshold": self.threshold,
            "excluded_prn": self.excluded_prn,
        }


@dataclass(frozen=True)
class FdeRecord:
    """Compact per-epoch FDE outcomes for one stream or bucket.

    Array-of-structs would cost a python object per epoch on the
    fault-free fast path; this struct-of-arrays form keeps the common
    case (everything ``passed``) at four numpy arrays regardless of
    stream length.

    Attributes
    ----------
    statuses:
        ``(N,)`` int8 status codes (see ``STATUS_*``).
    statistics, thresholds:
        ``(N,)`` chi-square test quantities and gates (NaN when
        unchecked).
    excluded_prns:
        ``(N,)`` int32 excluded PRNs, ``NO_EXCLUSION`` (-1) where no
        exclusion happened.
    """

    statuses: np.ndarray
    statistics: np.ndarray
    thresholds: np.ndarray
    excluded_prns: np.ndarray

    def __len__(self) -> int:
        return int(self.statuses.shape[0])

    # ------------------------------------------------------------------
    def verdict(self, index: int) -> EpochVerdict:
        """Materialize the verdict for one epoch."""
        code = int(self.statuses[index])
        prn = int(self.excluded_prns[index])
        return EpochVerdict(
            status=STATUS_NAMES[code],
            test_statistic=float(self.statistics[index]),
            threshold=float(self.thresholds[index]),
            excluded_prn=None if prn == NO_EXCLUSION else prn,
        )

    def verdicts(self) -> Tuple[EpochVerdict, ...]:
        """All verdicts, materialized (prefer :meth:`verdict` on hot paths)."""
        return tuple(self.verdict(i) for i in range(len(self)))

    def counts(self) -> Dict[str, int]:
        """``{status_name: epochs}`` over the record."""
        tallies = np.bincount(self.statuses, minlength=len(STATUS_NAMES))
        return {name: int(tallies[code]) for code, name in enumerate(STATUS_NAMES)}

    @property
    def usable(self) -> np.ndarray:
        """``(N,)`` boolean mask of trustworthy rows."""
        return (self.statuses == STATUS_PASSED) | (self.statuses == STATUS_REPAIRED)

    def to_dict(self) -> Dict:
        """JSON-ready summary (counts plus an excluded-PRN tally)."""
        excluded = self.excluded_prns[self.excluded_prns != NO_EXCLUSION]
        prns, tallies = np.unique(excluded, return_counts=True)
        return {
            "counts": self.counts(),
            "excluded_prn_counts": {
                str(int(prn)): int(count) for prn, count in zip(prns, tallies)
            },
        }

    # ------------------------------------------------------------------
    @classmethod
    def unchecked(cls, count: int) -> "FdeRecord":
        """An all-``unchecked`` record (redundancy-free bucket)."""
        return cls(
            statuses=np.full(count, STATUS_UNCHECKED, dtype=np.int8),
            statistics=np.full(count, np.nan),
            thresholds=np.full(count, np.nan),
            excluded_prns=np.full(count, NO_EXCLUSION, dtype=np.int32),
        )

    @classmethod
    def scatter(
        cls,
        pieces: Sequence["tuple[Sequence[int], FdeRecord]"],
        total: int,
    ) -> "FdeRecord":
        """Assemble per-bucket records back into stream order.

        ``pieces`` pairs each bucket's stream indices with its record;
        rows no piece claims (dropped/invalid epochs) stay
        ``unchecked`` with NaN statistics.
        """
        merged = cls.unchecked(total)
        for indices, record in pieces:
            idx = np.asarray(indices, dtype=int)
            merged.statuses[idx] = record.statuses
            merged.statistics[idx] = record.statistics
            merged.thresholds[idx] = record.thresholds
            merged.excluded_prns[idx] = record.excluded_prns
        return merged


class BatchFde:
    """Chi-square detection + stacked leave-one-out exclusion for DLG.

    The gate is DLG-specific by design: only the GLS whitened residual
    norm is chi-square scaled (OLS residuals from DLO are not
    normalized by the measurement covariance, and batched NR solves its
    own bias so its redundancy bookkeeping differs).  The engine
    enforces this at configuration time.

    Parameters
    ----------
    config:
        :class:`FdeConfig`; defaults match
        :class:`~repro.integrity.raim.RaimMonitor`.
    """

    name = "BatchFDE"

    def __init__(
        self,
        config: Optional[FdeConfig] = None,
        solver: Optional[BatchDLGSolver] = None,
    ) -> None:
        self._config = config if config is not None else FdeConfig()
        # Base solver for the standalone solve_batch/solve_block entry
        # points; the engine bypasses it and calls screen() with the
        # solve it already ran.
        self._solver = solver if solver is not None else BatchDLGSolver()

    @property
    def config(self) -> FdeConfig:
        return self._config

    # ------------------------------------------------------------------
    def solve_batch(
        self,
        epochs: "Union[Sequence[ObservationEpoch], EpochBlock]",
        biases: Sequence[float],
    ) -> "tuple[np.ndarray, FdeRecord]":
        """Solve N same-size epochs with FDE; ``((N, 3), FdeRecord)``.

        The fault-free path costs one stacked DLG solve (the whitened
        norms it produces are the test statistics) plus one vectorized
        comparison; only flagged epochs pay for exclusion, and all
        their candidates solve in one additional stacked GLS call.
        ``repaired`` rows hold the post-exclusion position;
        ``unusable`` rows keep the full-set solution so callers can
        apply their own trust policy.  Accepts an
        :class:`~repro.blocks.EpochBlock` directly.
        """
        block = epochs if isinstance(epochs, EpochBlock) else None
        if block is None:
            if not epochs:
                raise GeometryError("solve_batch needs at least one epoch")
            if epochs[0].satellite_count < 4:
                raise GeometryError(
                    "batched direct linearization needs at least 4 "
                    f"satellites, got {epochs[0].satellite_count}"
                )
            block = EpochBlock.from_epochs(epochs)
        return self.solve_block(block, np.asarray(biases, dtype=float))

    def solve_block(
        self, block: EpochBlock, biases: np.ndarray
    ) -> "tuple[np.ndarray, FdeRecord]":
        """Base DLG solve plus :meth:`screen` for a columnar block."""
        solutions, norms, corrected = self._solver.solve_block_full(
            block, biases
        )
        record = self.screen(block, corrected, solutions, norms)
        return solutions, record

    def screen(
        self,
        block: EpochBlock,
        corrected: np.ndarray,
        solutions: np.ndarray,
        norms: np.ndarray,
    ) -> FdeRecord:
        """Chi-square detection + exclusion over an already-solved block.

        This is the zero-copy entry point: the engine has already built
        the clock-corrected pseudoranges and run the base DLG solve
        whose whitened ``norms`` double as the test statistics, so the
        gate re-derives *nothing* — detection is one vectorized
        comparison against the block's arrays, and only flagged epochs
        pay for the stacked leave-one-out exclusion.  ``solutions`` is
        updated **in place** for rows the exclusion repairs.
        """
        n = len(block)
        m = block.satellite_count
        if m < 5:
            record = FdeRecord.unchecked(n)
            self._count(record)
            return record

        sigma = self._config.sigma_meters
        statistics = (norms / sigma) ** 2
        threshold = chi_square_quantile(1.0 - self._config.p_false_alarm, m - 4)
        flagged = statistics > threshold

        statuses = np.where(flagged, STATUS_UNUSABLE, STATUS_PASSED).astype(np.int8)
        thresholds = np.full(n, threshold)
        excluded = np.full(n, NO_EXCLUSION, dtype=np.int32)

        if self._config.exclude and m >= 6 and np.any(flagged):
            registry = get_registry()
            started = time.perf_counter() if registry.enabled else 0.0
            self._exclude_flagged(
                np.flatnonzero(flagged),
                block,
                corrected,
                solutions,
                statuses,
                statistics,
                thresholds,
                excluded,
            )
            if registry.enabled:
                registry.histogram(
                    "repro_integrity_exclusion_seconds",
                    "Leave-one-out exclusion latency per flagged batch.",
                    buckets=_EXCLUSION_LATENCY_BUCKETS,
                ).observe(time.perf_counter() - started)

        record = FdeRecord(
            statuses=statuses,
            statistics=statistics,
            thresholds=thresholds,
            excluded_prns=excluded,
        )
        self._count(record)
        return record

    # ------------------------------------------------------------------
    def solve_block_multi(
        self, block: EpochBlock
    ) -> "tuple[BatchMultiResult, FdeRecord]":
        """Per-constellation DLG solve plus :meth:`screen_multi`.

        The solver must be configured with
        ``constellations="per_constellation"``; repaired rows have
        their positions and biases updated in place in the returned
        :class:`~repro.solvers.batch.BatchMultiResult`.
        """
        result = self._solver.solve_block_multi(block)
        record = self.screen_multi(
            block, result.positions, result.constellation_biases, result.norms
        )
        return result, record

    def screen_multi(
        self,
        block: EpochBlock,
        solutions: np.ndarray,
        biases: np.ndarray,
        norms: np.ndarray,
    ) -> FdeRecord:
        """Chi-square detection + exclusion for a per-constellation solve.

        The multi-constellation counterpart of :meth:`screen`: the
        whitened norms of the grouped GLS solve are chi-square with
        ``m - 3 - 2K`` degrees of freedom (differencing consumes one
        equation per constellation and each constellation clock is an
        extra unknown), so the detection floor rises from 5 satellites
        to ``4 + 2K``.  Exclusion candidates that would leave a
        constellation with a single satellite are skipped — their bias
        would be unobservable — and the whole exclusion pass needs
        ``m >= 5 + 2K``.  ``solutions`` (``(N, 3)``) and ``biases``
        (``(N, K)``) are updated in place for repaired rows.
        """
        n = len(block)
        m = block.satellite_count
        pattern = block.uniform_system_pattern()
        if pattern is None:
            raise GeometryError(
                "block rows carry different constellation patterns; "
                "re-bucket through pack_stream before multi-constellation "
                "FDE"
            )
        groups, codes = group_layout(pattern)
        k_groups = int(codes.shape[0])
        dof = m - 3 - 2 * k_groups
        if dof < 1:
            record = FdeRecord.unchecked(n)
            self._count(record)
            return record

        sigma = self._config.sigma_meters
        statistics = (norms / sigma) ** 2
        threshold = chi_square_quantile(1.0 - self._config.p_false_alarm, dof)
        flagged = statistics > threshold

        statuses = np.where(flagged, STATUS_UNUSABLE, STATUS_PASSED).astype(np.int8)
        thresholds = np.full(n, threshold)
        excluded = np.full(n, NO_EXCLUSION, dtype=np.int32)

        if self._config.exclude and dof >= 2 and np.any(flagged):
            registry = get_registry()
            started = time.perf_counter() if registry.enabled else 0.0
            self._exclude_flagged_multi(
                np.flatnonzero(flagged),
                block,
                pattern,
                groups,
                codes,
                solutions,
                biases,
                statuses,
                statistics,
                thresholds,
                excluded,
            )
            if registry.enabled:
                registry.histogram(
                    "repro_integrity_exclusion_seconds",
                    "Leave-one-out exclusion latency per flagged batch.",
                    buckets=_EXCLUSION_LATENCY_BUCKETS,
                ).observe(time.perf_counter() - started)

        record = FdeRecord(
            statuses=statuses,
            statistics=statistics,
            thresholds=thresholds,
            excluded_prns=excluded,
        )
        self._count(record)
        return record

    def _exclude_flagged_multi(
        self,
        flagged_idx: np.ndarray,
        block: EpochBlock,
        pattern: np.ndarray,
        groups: np.ndarray,
        codes: np.ndarray,
        solutions: np.ndarray,
        biases: np.ndarray,
        statuses: np.ndarray,
        statistics: np.ndarray,
        thresholds: np.ndarray,
        excluded: np.ndarray,
    ) -> None:
        """Leave-one-out exclusion under the grouped covariance.

        Unlike the single-constellation stack, candidate subsets for
        different drop slots have different group layouts, so the
        candidates run as one grouped batch *per slot* (m stacked
        solves of F epochs each) rather than one flat stack.  Dropping
        a slot whose constellation has only two satellites is not a
        candidate at all: the survivor would be a singleton with an
        unobservable bias.  Base promotion is automatic — the subset
        builder re-derives each group's base as its first surviving
        slot, matching what a scalar re-solve of the subset would do.
        """
        f = flagged_idx.size
        m = block.satellite_count
        k_groups = int(codes.shape[0])
        sigma = self._config.sigma_meters
        group_counts = np.bincount(groups, minlength=k_groups)
        sub_threshold = chi_square_quantile(
            1.0 - self._config.p_false_alarm, m - 4 - 2 * k_groups
        )
        positions = block.positions[flagged_idx]
        pseudoranges = block.pseudoranges[flagged_idx]

        sub_stats = np.full((f, m), np.inf)
        sub_solutions = np.full((f, m, 3 + k_groups), np.nan)
        for k in range(m):
            if group_counts[groups[k]] <= 2:
                continue  # survivor would be a singleton constellation
            keep = np.concatenate([np.arange(k), np.arange(k + 1, m)])
            design, rhs, row_groups, base_indices, sub_codes = (
                build_multi_difference_systems(
                    positions[:, keep, :], pseudoranges[:, keep], pattern[keep]
                )
            )
            non_base = np.ones(m - 1, dtype=bool)
            non_base[base_indices] = False
            diag = pseudoranges[:, keep][:, non_base] ** 2
            scales = pseudoranges[:, keep][:, base_indices] ** 2
            try:
                cand_solutions, cand_norms = batched_gls_solve_grouped_rank1(
                    design, rhs, diag, scales, row_groups
                )
            except EstimationError:
                continue  # a degenerate candidate prices this slot out
            sub_stats[:, k] = (cand_norms / sigma) ** 2
            sub_solutions[:, k, :3] = cand_solutions[:, :3]
            # Dropping a group's first slot can change the subset's
            # first-appearance group order; realign bias columns to the
            # block's order before they can be scattered back.
            sub_pos = {int(code): j for j, code in enumerate(sub_codes)}
            realign = np.array([3 + sub_pos[int(code)] for code in codes])
            sub_solutions[:, k, 3:] = cand_solutions[:, realign]

        margins = sub_stats / sub_threshold
        margins = np.where(margins <= 1.0, margins, np.inf)
        best_k = np.argmin(margins, axis=1)
        rows = np.arange(f)
        has_pass = np.isfinite(margins[rows, best_k])
        if not np.any(has_pass):
            return

        repaired_rows = rows[has_pass]
        stream_rows = flagged_idx[repaired_rows]
        chosen = best_k[repaired_rows]
        statuses[stream_rows] = STATUS_REPAIRED
        statistics[stream_rows] = sub_stats[repaired_rows, chosen]
        thresholds[stream_rows] = sub_threshold
        solutions[stream_rows] = sub_solutions[repaired_rows, chosen, :3]
        biases[stream_rows] = sub_solutions[repaired_rows, chosen, 3:]
        excluded[stream_rows] = block.prns[stream_rows, chosen]

    # ------------------------------------------------------------------
    def _exclude_flagged(
        self,
        flagged_idx: np.ndarray,
        block: EpochBlock,
        corrected: np.ndarray,
        solutions: np.ndarray,
        statuses: np.ndarray,
        statistics: np.ndarray,
        thresholds: np.ndarray,
        excluded: np.ndarray,
    ) -> None:
        """Stacked leave-one-out exclusion; mutates the result arrays.

        All m candidate subsets of all F flagged epochs become one
        ``(F*m, m-1)``-satellite stack.  Rebuilding each subset's
        difference system from its surviving satellites handles both
        drop cases uniformly: dropping a non-base satellite deletes
        one row (base unchanged), dropping the base promotes satellite
        1 — exactly the subsets the scalar monitor's first-satellite
        base selection produces.
        """
        f = flagged_idx.size
        m = block.satellite_count
        positions = block.positions
        # keep[k] = all satellite columns except k.
        keep = np.array(
            [[j for j in range(m) if j != k] for k in range(m)], dtype=int
        )  # (m, m-1)
        cand_positions = positions[flagged_idx][:, keep, :].reshape(f * m, m - 1, 3)
        cand_corrected = corrected[flagged_idx][:, keep].reshape(f * m, m - 1)

        sub_design, sub_rhs = build_difference_systems(cand_positions, cand_corrected)
        sub_diag = cand_corrected[:, 1:] ** 2
        sub_scale = cand_corrected[:, 0] ** 2
        try:
            sub_solutions, sub_norms = batched_gls_solve_diag_rank1(
                sub_design, sub_rhs, sub_diag, sub_scale
            )
        except EstimationError:
            # One degenerate candidate poisons the stacked solve; fall
            # back to per-candidate solves, pricing degenerate subsets
            # out of the selection (mirrors the scalar monitor skipping
            # subsets its solver rejects).
            sub_solutions = np.full((f * m, 3), np.nan)
            sub_norms = np.full(f * m, np.inf)
            for i in range(f * m):
                try:
                    sub_solutions[i], sub_norms[i] = gls_solve_diag_rank1(
                        sub_design[i], sub_rhs[i], sub_diag[i], sub_scale[i]
                    )
                except EstimationError:
                    continue

        sigma = self._config.sigma_meters
        sub_threshold = chi_square_quantile(
            1.0 - self._config.p_false_alarm, m - 5
        )
        sub_stats = ((sub_norms / sigma) ** 2).reshape(f, m)
        # Normalized margins; non-passing candidates priced out so
        # argmin's first-minimum semantics give the keep-first tie-break.
        margins = sub_stats / sub_threshold
        margins = np.where(margins <= 1.0, margins, np.inf)
        best_k = np.argmin(margins, axis=1)
        rows = np.arange(f)
        has_pass = np.isfinite(margins[rows, best_k])
        if not np.any(has_pass):
            return

        repaired_rows = rows[has_pass]
        stream_rows = flagged_idx[repaired_rows]
        chosen = best_k[repaired_rows]
        statuses[stream_rows] = STATUS_REPAIRED
        statistics[stream_rows] = sub_stats[repaired_rows, chosen]
        thresholds[stream_rows] = sub_threshold
        solutions[stream_rows] = sub_solutions.reshape(f, m, 3)[repaired_rows, chosen]
        # PRN lookup is one fancy-index into the block's columnar PRNs —
        # the last remnant of the old python-object walk.
        excluded[stream_rows] = block.prns[stream_rows, chosen]

    # ------------------------------------------------------------------
    def _count(self, record: FdeRecord) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        counter = registry.counter(
            "repro_integrity_fde_epochs_total",
            "Epochs screened by batch FDE, by verdict.",
            labels=("status",),
        )
        for name, count in record.counts().items():
            if count:
                counter.labels(status=name).inc(count)
