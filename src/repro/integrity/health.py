"""Cross-epoch satellite health memory.

Batch FDE is stateless: a satellite with a persistent fault (a stuck
clock, a bad ephemeris upload) is re-detected from scratch every
epoch, paying the exclusion search each time and briefly polluting
every solve it enters.  :class:`SatelliteHealthTracker` adds the
memory: satellites excluded repeatedly are *quarantined* — pre-excluded
cheaply at admission, before any solving — then re-admitted through a
watched *probation* with exponential reinstatement backoff so a
genuinely flapping satellite settles into long quarantines instead of
oscillating in and out of the solution (flap suppression).

State machine (per PRN)::

    healthy ──exclusion──▶ suspect ──threshold in window──▶ quarantined
       ▲                                                        │
       │                                              quarantine expires
       │                                                        ▼
       └────── probation_epochs clean epochs ────────── probation
                                                                │
                                                 any exclusion  │
                                                                ▼
                                             quarantined (backoff × longer)

Time is the *admission counter*, not wall time: the tracker advances
one tick per :meth:`admit` call, so replayed streams behave
identically to live ones and tests are deterministic.

The tracker is intentionally solver-agnostic — it consumes exclusion
events from any source (batch FDE verdicts, scalar RAIM results) and
is shared by :class:`~repro.core.receiver.GpsReceiver` and the async
service's circuit breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional, Sequence, Tuple
from collections import deque

from repro.errors import ConfigurationError
from repro.telemetry import get_registry

#: The four externally visible per-PRN states.
HEALTH_STATES: Tuple[str, ...] = ("healthy", "suspect", "quarantined", "probation")


@dataclass(frozen=True)
class HealthConfig:
    """Tuning for :class:`SatelliteHealthTracker`.

    Attributes
    ----------
    window_epochs:
        Sliding window (in admitted epochs) over which exclusions are
        counted toward quarantine.
    exclusion_threshold:
        Exclusions within the window that trigger quarantine.  The
        default of 3 tolerates isolated false exclusions (a noisy epoch
        scapegoating a healthy satellite) without quarantining.
    quarantine_epochs:
        Base quarantine duration; doubled (``backoff_factor``) on each
        re-quarantine, capped at ``max_quarantine_epochs``.
    probation_epochs:
        Clean epochs a reinstated satellite must serve before it is
        healthy again.  A single exclusion during probation
        re-quarantines immediately.
    backoff_factor, max_quarantine_epochs:
        Reinstatement backoff: quarantine ``i`` lasts
        ``quarantine_epochs * backoff_factor**(i-1)`` epochs, capped.
    min_satellites:
        Admission floor: pre-exclusion never leaves an epoch with
        fewer than this many satellites (5 keeps the epoch
        RAIM-testable; the worst offenders stay excluded, the rest are
        readmitted and left to per-epoch FDE).
    """

    window_epochs: int = 50
    exclusion_threshold: int = 3
    quarantine_epochs: int = 200
    probation_epochs: int = 20
    backoff_factor: float = 2.0
    max_quarantine_epochs: int = 5000
    min_satellites: int = 5

    def __post_init__(self) -> None:
        if self.window_epochs < 1:
            raise ConfigurationError("window_epochs must be at least 1")
        if self.exclusion_threshold < 1:
            raise ConfigurationError("exclusion_threshold must be at least 1")
        if self.quarantine_epochs < 1:
            raise ConfigurationError("quarantine_epochs must be at least 1")
        if self.probation_epochs < 1:
            raise ConfigurationError("probation_epochs must be at least 1")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be at least 1.0")
        if self.max_quarantine_epochs < self.quarantine_epochs:
            raise ConfigurationError(
                "max_quarantine_epochs must be at least quarantine_epochs"
            )
        if self.min_satellites < 4:
            raise ConfigurationError("min_satellites must be at least 4")

    def to_dict(self) -> Dict:
        return {
            "window_epochs": self.window_epochs,
            "exclusion_threshold": self.exclusion_threshold,
            "quarantine_epochs": self.quarantine_epochs,
            "probation_epochs": self.probation_epochs,
            "backoff_factor": self.backoff_factor,
            "max_quarantine_epochs": self.max_quarantine_epochs,
            "min_satellites": self.min_satellites,
        }


class _PrnRecord:
    """Mutable per-PRN bookkeeping (internal)."""

    __slots__ = (
        "exclusion_epochs",
        "quarantined",
        "quarantine_until",
        "strikes",
        "probation_left",
        "last_strike_epoch",
        "last_monitor_epoch",
    )

    def __init__(self) -> None:
        self.exclusion_epochs: Deque[int] = deque()
        self.quarantined = False
        self.quarantine_until = 0
        self.strikes = 0  # lifetime quarantine count, drives backoff
        self.probation_left = 0  # > 0 means on probation
        self.last_strike_epoch = -1  # dedupes multi-source strikes
        self.last_monitor_epoch = -1  # epoch of the last monitor strike


class SatelliteHealthTracker:
    """Exclusion memory with probation, backoff, and flap suppression.

    Not thread-safe: the service serializes access through its worker
    thread, and the receiver is single-threaded by construction.
    """

    def __init__(self, config: Optional[HealthConfig] = None) -> None:
        self._config = config if config is not None else HealthConfig()
        self._records: Dict[int, _PrnRecord] = {}
        self._epoch = 0

    @property
    def config(self) -> HealthConfig:
        return self._config

    @property
    def epoch(self) -> int:
        """Admission-counter time: epochs admitted so far."""
        return self._epoch

    # ------------------------------------------------------------------
    def admit(self, prns: Sequence[int]) -> Tuple[int, ...]:
        """Advance one epoch; return the PRNs to pre-exclude from it.

        Quarantines whose sentence expired flip to probation here.
        The returned PRNs are currently quarantined members of
        ``prns``, trimmed (worst strikes first survive) so the epoch
        keeps at least ``min_satellites`` satellites.
        """
        self._epoch += 1
        candidates = []
        for prn in prns:
            record = self._records.get(prn)
            if record is None or not record.quarantined:
                continue
            if self._epoch >= record.quarantine_until:
                record.quarantined = False
                record.probation_left = self._config.probation_epochs
                record.exclusion_epochs.clear()
                continue
            candidates.append(prn)
        if not candidates:
            return ()
        # Admission floor: keep the epoch solvable and testable.  The
        # most-struck satellites stay excluded; the tie-break on PRN
        # keeps trimming deterministic.
        budget = len(prns) - self._config.min_satellites
        if budget <= 0:
            return ()
        if len(candidates) > budget:
            candidates.sort(key=lambda prn: (-self._records[prn].strikes, prn))
            candidates = candidates[:budget]
        return tuple(sorted(candidates))

    # ------------------------------------------------------------------
    def record_exclusion(self, prn: int) -> None:
        """An FDE/RAIM exclusion of ``prn`` at the current epoch."""
        record = self._records.setdefault(prn, _PrnRecord())
        if record.quarantined:
            return  # already serving; nothing new to learn
        if record.last_monitor_epoch == self._epoch:
            # A monitor already struck this PRN this epoch: the FDE
            # exclusion is the second witness to the same event, not
            # new evidence (the mirror image of the monitor-side dedup).
            return
        record.last_strike_epoch = self._epoch
        if record.probation_left > 0:
            # Probation is one-strike: the satellite already proved
            # flappy, so a single exclusion re-quarantines with backoff.
            record.probation_left = 0
            self._quarantine(record)
            return
        record.exclusion_epochs.append(self._epoch)
        self._prune_window(record)
        if len(record.exclusion_epochs) >= self._config.exclusion_threshold:
            record.exclusion_epochs.clear()
            self._quarantine(record)

    def record_monitor_strike(self, prn: int) -> bool:
        """A signal-plausibility monitor strike against ``prn``.

        Monitors and per-epoch FDE are *independent witnesses to the
        same event*: when both flag one satellite in the same admitted
        epoch, that is one piece of evidence, not two.  This entry
        point therefore dedupes against any strike (FDE or monitor)
        already recorded for the PRN this epoch, and otherwise counts
        exactly like :meth:`record_exclusion` — same window, threshold,
        probation one-strike rule, and reinstatement backoff.

        Returns whether the strike was counted (``False`` when deduped
        or the PRN is already quarantined).
        """
        record = self._records.setdefault(prn, _PrnRecord())
        if record.quarantined or record.last_strike_epoch == self._epoch:
            return False
        # Count first, mark second: the monitor-epoch stamp exists to
        # dedupe a *later* FDE exclusion this epoch, not this call.
        self.record_exclusion(prn)
        record.last_monitor_epoch = self._epoch
        return True

    def record_clean(self, prns: Iterable[int]) -> None:
        """Satellites that served in a passed (un-excluded) epoch."""
        for prn in prns:
            record = self._records.get(prn)
            if record is None or record.probation_left <= 0:
                continue
            record.probation_left -= 1
            # Probation served; strikes persist so the *next*
            # quarantine is still longer (flap suppression).

    # ------------------------------------------------------------------
    def state(self, prn: int) -> str:
        """The PRN's current state name (``HEALTH_STATES``)."""
        record = self._records.get(prn)
        if record is None:
            return "healthy"
        if record.quarantined:
            return "quarantined"
        if record.probation_left > 0:
            return "probation"
        self._prune_window(record)
        if record.exclusion_epochs:
            return "suspect"
        return "healthy"

    def state_counts(self) -> Dict[str, int]:
        """``{state: PRNs}`` over every PRN the tracker has seen."""
        counts = {name: 0 for name in HEALTH_STATES}
        for prn in self._records:
            counts[self.state(prn)] += 1
        return counts

    def quarantined_prns(self) -> Tuple[int, ...]:
        """Currently quarantined PRNs, sorted."""
        return tuple(
            sorted(prn for prn, rec in self._records.items() if rec.quarantined)
        )

    def to_dict(self) -> Dict:
        """JSON-ready snapshot for diagnostics and chaos artifacts."""
        return {
            "epoch": self._epoch,
            "state_counts": self.state_counts(),
            "quarantined_prns": list(self.quarantined_prns()),
            "config": self._config.to_dict(),
        }

    def publish(self) -> None:
        """Push per-state PRN counts to the telemetry gauge."""
        registry = get_registry()
        if not registry.enabled:
            return
        gauge = registry.gauge(
            "repro_integrity_tracker_prns",
            "Tracked PRNs by health state.",
            labels=("state",),
        )
        for name, count in self.state_counts().items():
            gauge.labels(state=name).set(count)

    # ------------------------------------------------------------------
    def _quarantine(self, record: _PrnRecord) -> None:
        record.strikes += 1
        duration = self._config.quarantine_epochs * (
            self._config.backoff_factor ** (record.strikes - 1)
        )
        duration = min(duration, float(self._config.max_quarantine_epochs))
        record.quarantined = True
        record.quarantine_until = self._epoch + int(duration)

    def _prune_window(self, record: _PrnRecord) -> None:
        horizon = self._epoch - self._config.window_epochs
        while record.exclusion_epochs and record.exclusion_epochs[0] <= horizon:
            record.exclusion_epochs.popleft()
