"""Online integrity: fault detection, exclusion, and health memory.

Three layers, stacked by time horizon:

* :mod:`repro.integrity.raim` — the scalar per-epoch monitor
  (:class:`RaimMonitor`), one epoch at a time with full re-solves;
  the reference implementation.
* :mod:`repro.integrity.fde` — :class:`BatchFde`, the vectorized
  batch counterpart the engine and service actually run: chi-square
  gate over stacked DLG solves, leave-one-out exclusion through one
  stacked Sherman-Morrison GLS call.
* :mod:`repro.integrity.health` — :class:`SatelliteHealthTracker`,
  cross-epoch exclusion memory with quarantine, probation, and
  reinstatement backoff.
* :mod:`repro.integrity.monitors` — the signal-plausibility plane:
  streaming C/N0, clock-drift, and stationarity monitors that catch
  the residual-consistent attacks (spoofing, meaconing, jamming) FDE
  is structurally blind to, with M-of-N confirmation and graceful
  ``suspect``/``spoofed`` degradation.
"""

from repro.integrity.fde import (
    BatchFde,
    EpochVerdict,
    FdeConfig,
    FdeRecord,
    NO_EXCLUSION,
    STATUS_NAMES,
    STATUS_PASSED,
    STATUS_REPAIRED,
    STATUS_UNCHECKED,
    STATUS_UNUSABLE,
)
from repro.integrity.health import (
    HEALTH_STATES,
    HealthConfig,
    SatelliteHealthTracker,
)
from repro.integrity.monitors import (
    AndFiltered,
    ClockDriftRateMonitor,
    Cn0AgcProxyMonitor,
    Cn0ConsistencyMonitor,
    Cn0DropMonitor,
    Cn0ThresholdMonitor,
    EpochMonitorVerdict,
    MOfNFiltered,
    MonitorConfig,
    MonitorRecord,
    MonitorSuite,
    MonitorVerdict,
    SEVERITY_NAMES,
    SEVERITY_NOMINAL,
    SEVERITY_SPOOFED,
    SEVERITY_SUSPECT,
    StationaryPositionMonitor,
    StationaryVelocityMonitor,
    StreamingMonitor,
)
from repro.integrity.raim import RaimMonitor, RaimResult, chi_square_quantile

__all__ = [
    "AndFiltered",
    "ClockDriftRateMonitor",
    "Cn0AgcProxyMonitor",
    "Cn0ConsistencyMonitor",
    "Cn0DropMonitor",
    "Cn0ThresholdMonitor",
    "EpochMonitorVerdict",
    "MOfNFiltered",
    "MonitorConfig",
    "MonitorRecord",
    "MonitorSuite",
    "MonitorVerdict",
    "SEVERITY_NAMES",
    "SEVERITY_NOMINAL",
    "SEVERITY_SPOOFED",
    "SEVERITY_SUSPECT",
    "StationaryPositionMonitor",
    "StationaryVelocityMonitor",
    "StreamingMonitor",
    "BatchFde",
    "EpochVerdict",
    "FdeConfig",
    "FdeRecord",
    "HEALTH_STATES",
    "HealthConfig",
    "NO_EXCLUSION",
    "RaimMonitor",
    "RaimResult",
    "STATUS_NAMES",
    "STATUS_PASSED",
    "STATUS_REPAIRED",
    "STATUS_UNCHECKED",
    "STATUS_UNUSABLE",
    "SatelliteHealthTracker",
    "chi_square_quantile",
]
