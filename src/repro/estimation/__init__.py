"""Least-squares estimation substrate.

The paper leans on two estimators: *ordinary* least squares (OLS,
optimal under i.i.d. residuals — used inside NR and by DLO) and
*general* least squares (GLS, optimal under correlated residuals with a
known covariance — the key to DLG, Theorem 4.2).  This package provides
both, plus weighted LS and the linear-algebra diagnostics the solvers
use to fail loudly on degenerate geometry.
"""

from repro.estimation.linalg import (
    cholesky_solve,
    condition_number,
    is_positive_definite,
)
from repro.estimation.leastsquares import (
    LeastSquaresResult,
    ols_solve,
    ols_solve_full,
    weighted_solve,
    gls_solve,
    gls_solve_whitened,
    gls_solve_full,
)
from repro.estimation.structured import (
    apply_inverse_diag_rank1,
    apply_inverse_grouped_rank1,
    batched_apply_inverse_diag_rank1,
    batched_apply_inverse_grouped_rank1,
    batched_gls_solve_diag_rank1,
    batched_gls_solve_grouped_rank1,
    gls_solve_diag_rank1,
    gls_solve_grouped_rank1,
    grouped_covariance,
)
from repro.estimation.workspace import KernelWorkspace

__all__ = [
    "cholesky_solve",
    "condition_number",
    "is_positive_definite",
    "LeastSquaresResult",
    "ols_solve",
    "ols_solve_full",
    "weighted_solve",
    "gls_solve",
    "gls_solve_whitened",
    "gls_solve_full",
    "apply_inverse_diag_rank1",
    "apply_inverse_grouped_rank1",
    "batched_apply_inverse_diag_rank1",
    "batched_apply_inverse_grouped_rank1",
    "batched_gls_solve_diag_rank1",
    "batched_gls_solve_grouped_rank1",
    "gls_solve_diag_rank1",
    "gls_solve_grouped_rank1",
    "grouped_covariance",
    "KernelWorkspace",
]
