"""Preallocated kernel workspaces for the batched solve hot path.

The batched Sherman-Morrison kernel allocates a handful of large
scratch tensors per call (whitened stacks, Gram matrices).  On a
steady-state stream the bucket shapes repeat every call, so those
allocations are pure churn: same sizes, freed and re-requested tens of
times per second.  :class:`KernelWorkspace` keeps one buffer per
``(name, shape, dtype)`` and hands it back on every later request,
turning the steady state into zero allocations.

The workspace also makes the zero-copy claim *observable*: it counts
buffer reuses versus fresh allocations, and
:meth:`~KernelWorkspace.flush_telemetry` publishes the deltas as
``repro_kernel_workspace_requests_total{outcome=...}`` counters, so a
``repro-gps telemetry`` scrape shows directly whether the hot path is
recycling its scratch memory or thrashing the allocator.

Thread safety: a workspace is single-owner by design — each solver
instance owns one, and solver instances are not shared across threads
(the process-backend parallel replay gives every worker its own
solvers).  Buffers returned from :meth:`buffer` are only valid until
the next solve call requests the same key.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.telemetry import get_registry

#: Block-size histogram bounds (bytes per allocated scratch buffer):
#: geometric 4KiB → 256MiB, wide enough for a 4-sat micro-batch row up
#: to the large-n constellation sweeps.
_BLOCK_BYTES_BUCKETS = tuple(4096.0 * 4**e for e in range(9))


class KernelWorkspace:
    """Shape-keyed scratch buffers reused across batched solve calls."""

    __slots__ = ("_buffers", "_reused", "_allocated", "_flushed",
                 "_unflushed_block_bytes", "_metrics_registry",
                 "_reused_child", "_allocated_child", "_resident_gauge",
                 "_block_histogram")

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, Tuple[int, ...], np.dtype], np.ndarray] = {}
        self._reused = 0
        self._allocated = 0
        # Counts already published to telemetry (flush publishes deltas).
        self._flushed = (0, 0)
        # Sizes of buffers allocated since the last flush, for the
        # scrape-visible block-size histogram.
        self._unflushed_block_bytes: List[int] = []
        # Per-registry cached metric children; flush_telemetry runs on
        # every engine stream, so the family lookups are bound once per
        # installed registry.
        self._metrics_registry = None
        self._reused_child = None
        self._allocated_child = None
        self._resident_gauge = None
        self._block_histogram = None

    def _bind_metrics(self, registry) -> None:
        counter = registry.counter(
            "repro_kernel_workspace_requests_total",
            "Kernel scratch-buffer requests by outcome.",
            labels=("outcome",),
        )
        self._reused_child = counter.labels(outcome="reused")
        self._allocated_child = counter.labels(outcome="allocated")
        self._resident_gauge = registry.gauge(
            "repro_kernel_workspace_resident_bytes",
            "Bytes held by cached kernel scratch buffers.",
        ).labels()
        self._block_histogram = registry.histogram(
            "repro_kernel_workspace_block_bytes",
            "Size of freshly allocated kernel scratch buffers.",
            buckets=_BLOCK_BYTES_BUCKETS,
        ).labels()
        self._metrics_registry = registry

    def buffer(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: "np.typing.DTypeLike" = np.float64,
    ) -> np.ndarray:
        """An uninitialized ``shape``/``dtype`` scratch array.

        The same ``(name, shape, dtype)`` request returns the *same*
        array on every later call — contents are whatever the previous
        use left there, so callers must fully overwrite it.
        """
        key = (name, tuple(shape), np.dtype(dtype))
        existing = self._buffers.get(key)
        if existing is not None:
            self._reused += 1
            return existing
        self._allocated += 1
        fresh = np.empty(key[1], dtype=key[2])
        self._buffers[key] = fresh
        self._unflushed_block_bytes.append(fresh.nbytes)
        return fresh

    # ------------------------------------------------------------------
    @property
    def reused(self) -> int:
        """Buffer requests served from the cache since construction."""
        return self._reused

    @property
    def allocated(self) -> int:
        """Buffer requests that had to allocate since construction."""
        return self._allocated

    @property
    def resident_bytes(self) -> int:
        """Total bytes currently held by cached buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every cached buffer (counters are kept)."""
        self._buffers.clear()

    def flush_telemetry(self) -> None:
        """Publish reuse/allocation deltas since the last flush.

        Called once per engine stream (not per buffer request) so the
        telemetry cost stays off the kernel's inner loop; free when no
        registry is installed.
        """
        registry = get_registry()
        if not registry.enabled:
            # Nobody will scrape these; don't let the pending-size list
            # grow for the life of an uninstrumented process.
            self._unflushed_block_bytes.clear()
            return
        flushed_reused, flushed_allocated = self._flushed
        delta_reused = self._reused - flushed_reused
        delta_allocated = self._allocated - flushed_allocated
        if not (delta_reused or delta_allocated):
            return
        if registry is not self._metrics_registry:
            self._bind_metrics(registry)
        if delta_reused:
            self._reused_child.inc(delta_reused)
        if delta_allocated:
            self._allocated_child.inc(delta_allocated)
        self._resident_gauge.set(float(self.resident_bytes))
        if self._unflushed_block_bytes:
            self._block_histogram.observe_many(
                [float(nbytes) for nbytes in self._unflushed_block_bytes]
            )
            self._unflushed_block_bytes.clear()
        self._flushed = (self._reused, self._allocated)
