"""Preallocated kernel workspaces for the batched solve hot path.

The batched Sherman-Morrison kernel allocates a handful of large
scratch tensors per call (whitened stacks, Gram matrices).  On a
steady-state stream the bucket shapes repeat every call, so those
allocations are pure churn: same sizes, freed and re-requested tens of
times per second.  :class:`KernelWorkspace` keeps one buffer per
``(name, shape, dtype)`` and hands it back on every later request,
turning the steady state into zero allocations.

The workspace also makes the zero-copy claim *observable*: it counts
buffer reuses versus fresh allocations, and
:meth:`~KernelWorkspace.flush_telemetry` publishes the deltas as
``repro_kernel_workspace_requests_total{outcome=...}`` counters, so a
``repro-gps telemetry`` scrape shows directly whether the hot path is
recycling its scratch memory or thrashing the allocator.

Thread safety: a workspace is single-owner by design — each solver
instance owns one, and solver instances are not shared across threads
(the process-backend parallel replay gives every worker its own
solvers).  Buffers returned from :meth:`buffer` are only valid until
the next solve call requests the same key.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.telemetry import get_registry


class KernelWorkspace:
    """Shape-keyed scratch buffers reused across batched solve calls."""

    __slots__ = ("_buffers", "_reused", "_allocated", "_flushed")

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, Tuple[int, ...], np.dtype], np.ndarray] = {}
        self._reused = 0
        self._allocated = 0
        # Counts already published to telemetry (flush publishes deltas).
        self._flushed = (0, 0)

    def buffer(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: "np.typing.DTypeLike" = np.float64,
    ) -> np.ndarray:
        """An uninitialized ``shape``/``dtype`` scratch array.

        The same ``(name, shape, dtype)`` request returns the *same*
        array on every later call — contents are whatever the previous
        use left there, so callers must fully overwrite it.
        """
        key = (name, tuple(shape), np.dtype(dtype))
        existing = self._buffers.get(key)
        if existing is not None:
            self._reused += 1
            return existing
        self._allocated += 1
        fresh = np.empty(key[1], dtype=key[2])
        self._buffers[key] = fresh
        return fresh

    # ------------------------------------------------------------------
    @property
    def reused(self) -> int:
        """Buffer requests served from the cache since construction."""
        return self._reused

    @property
    def allocated(self) -> int:
        """Buffer requests that had to allocate since construction."""
        return self._allocated

    @property
    def resident_bytes(self) -> int:
        """Total bytes currently held by cached buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every cached buffer (counters are kept)."""
        self._buffers.clear()

    def flush_telemetry(self) -> None:
        """Publish reuse/allocation deltas since the last flush.

        Called once per engine stream (not per buffer request) so the
        telemetry cost stays off the kernel's inner loop; free when no
        registry is installed.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        flushed_reused, flushed_allocated = self._flushed
        delta_reused = self._reused - flushed_reused
        delta_allocated = self._allocated - flushed_allocated
        if not (delta_reused or delta_allocated):
            return
        counter = registry.counter(
            "repro_kernel_workspace_requests_total",
            "Kernel scratch-buffer requests by outcome.",
            labels=("outcome",),
        )
        if delta_reused:
            counter.labels(outcome="reused").inc(delta_reused)
        if delta_allocated:
            counter.labels(outcome="allocated").inc(delta_allocated)
        registry.gauge(
            "repro_kernel_workspace_resident_bytes",
            "Bytes held by cached kernel scratch buffers.",
        ).set(float(self.resident_bytes))
        self._flushed = (self._reused, self._allocated)
