"""Ordinary, weighted, and general least squares.

Notation matches the paper: the model is ``A x = b + v`` with residual
vector ``v``.

* OLS (eq. 4-12): ``x = (A^T A)^-1 A^T b`` — optimal when the residuals
  are zero-mean, equal-variance, and uncorrelated (eq. 3-33..3-35).
* GLS (eq. 4-21): ``x = (A^T M^-1 A)^-1 A^T M^-1 b`` — optimal when the
  residual covariance is ``sigma^2 * Omega`` for a known positive
  definite ``Omega`` (eq. 4-23/4-24); ``M`` may be ``Omega`` itself
  since the scalar cancels.

Both are implemented through Cholesky-based normal equations: the
design matrices here are tiny (at most ~12 rows, 3-4 columns), so the
numerically fancier QR route buys nothing while costing the exact
execution time the paper is measuring.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EstimationError
from repro.estimation.linalg import cholesky_solve
from repro.telemetry import get_registry


@dataclass(frozen=True)
class LeastSquaresResult:
    """A least-squares solution with diagnostics.

    Attributes
    ----------
    solution:
        The estimate ``x``.
    residuals:
        ``b - A x`` (in the *original*, unwhitened metric).
    cost:
        The minimized objective: squared residual norm for OLS,
        Mahalanobis norm ``v^T M^-1 v`` for GLS.
    """

    solution: np.ndarray
    residuals: np.ndarray
    cost: float


def _validate_system(design: np.ndarray, observations: np.ndarray) -> None:
    if design.ndim != 2:
        raise EstimationError(f"design matrix must be 2-D, got shape {design.shape}")
    rows, cols = design.shape
    if observations.shape != (rows,):
        raise EstimationError(
            f"observations shape {observations.shape} does not match design "
            f"matrix with {rows} rows"
        )
    if rows < cols:
        raise EstimationError(
            f"under-determined system: {rows} equations for {cols} unknowns"
        )
    if not (np.all(np.isfinite(design)) and np.all(np.isfinite(observations))):
        raise EstimationError("design matrix and observations must be finite")


def ols_solve(design: np.ndarray, observations: np.ndarray) -> np.ndarray:
    """Ordinary least squares, solution only (the hot path)."""
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    _validate_system(a, b)
    return cholesky_solve(a.T @ a, a.T @ b)


def ols_solve_full(design: np.ndarray, observations: np.ndarray) -> LeastSquaresResult:
    """Ordinary least squares with residuals and cost."""
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    solution = ols_solve(a, b)
    residuals = b - a @ solution
    return LeastSquaresResult(
        solution=solution,
        residuals=residuals,
        cost=float(residuals @ residuals),
    )


def weighted_solve(
    design: np.ndarray,
    observations: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Diagonally weighted least squares.

    ``weights`` are per-equation weights (inverse variances); this is
    GLS restricted to a diagonal covariance, used by the covariance
    ablation.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    w = np.asarray(weights, dtype=float)
    _validate_system(a, b)
    if w.shape != b.shape:
        raise EstimationError(
            f"weights shape {w.shape} does not match {b.shape[0]} equations"
        )
    if np.any(w <= 0) or not np.all(np.isfinite(w)):
        raise EstimationError("weights must be positive and finite")
    aw = a * w[:, None]
    return cholesky_solve(a.T @ aw, aw.T @ b)


def gls_solve(
    design: np.ndarray,
    observations: np.ndarray,
    covariance: np.ndarray,
) -> np.ndarray:
    """General least squares, solution only (the hot path).

    ``covariance`` is the residual covariance ``M`` (any positive
    multiple of it gives the same solution).
    """
    solution, _whitened_norm = gls_solve_whitened(design, observations, covariance)
    return solution


def gls_solve_whitened(
    design: np.ndarray,
    observations: np.ndarray,
    covariance: np.ndarray,
) -> "tuple[np.ndarray, float]":
    """GLS solution plus the whitened residual norm.

    The whitened residual ``L^-1 (b - A x)`` (with ``L L^T = M``) has
    identity covariance up to the scalar ``sigma^2``, so its norm is
    the Mahalanobis residual — directly comparable across systems with
    different covariance scales and chi-square testable, which is what
    integrity monitoring needs.  Computed from intermediates the solve
    produces anyway, so it costs one extra matrix-vector product.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    m = np.asarray(covariance, dtype=float)
    _validate_system(a, b)
    if m.shape != (a.shape[0], a.shape[0]):
        raise EstimationError(
            f"covariance shape {m.shape} does not match {a.shape[0]} equations"
        )
    registry = get_registry()
    if registry.enabled:
        registry.counter(
            "repro_estimation_gls_solves_total",
            "GLS solves by implementation path.",
            labels=("path",),
        ).labels(path="dense_cholesky").inc()
    # Whiten through the Cholesky factor of M: with L L^T = M, solving
    # the triangular systems L u = A and L w = b gives the OLS problem
    # u x = w whose normal equations are exactly A^T M^-1 A x = A^T M^-1 b.
    try:
        factor = np.linalg.cholesky(m)
    except np.linalg.LinAlgError as exc:
        raise EstimationError("GLS covariance must be positive definite") from exc
    whitened_design = np.linalg.solve(factor, a)
    whitened_obs = np.linalg.solve(factor, b)
    solution = cholesky_solve(
        whitened_design.T @ whitened_design, whitened_design.T @ whitened_obs
    )
    whitened_residuals = whitened_obs - whitened_design @ solution
    return solution, float(np.linalg.norm(whitened_residuals))


def gls_solve_full(
    design: np.ndarray,
    observations: np.ndarray,
    covariance: np.ndarray,
) -> LeastSquaresResult:
    """General least squares with residuals and Mahalanobis cost."""
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    m = np.asarray(covariance, dtype=float)
    solution = gls_solve(a, b, m)
    residuals = b - a @ solution
    cost = float(residuals @ np.linalg.solve(m, residuals))
    return LeastSquaresResult(solution=solution, residuals=residuals, cost=cost)
