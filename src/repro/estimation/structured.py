"""Structured-covariance least squares: the diagonal-plus-rank-one path.

The eq. 4-26 difference covariance is not an arbitrary dense matrix:
every off-diagonal entry is the shared base-satellite variance, so

    Psi = diag(d) + s * 1 1^T,   d_j = rho_j^2,  s = rho_base^2.

That structure admits the Sherman-Morrison identity

    Psi^-1 = D^-1 - (s / (1 + s * sum(1/d))) * D^-1 1 1^T D^-1,

so applying ``Psi^-1`` costs O(k) per vector instead of the O(k^3)
Cholesky factorization that a dense GLS solve pays — and, unlike a
factorization, it vectorizes trivially across a whole ``(N, k)`` stack
of epochs.  This module is the shared fast path behind the scalar
:class:`~repro.solvers.direct_linear.DLGSolver` and the batch engine's
:class:`~repro.solvers.batch.BatchDLGSolver`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.estimation.linalg import cholesky_solve
from repro.telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.estimation.workspace import KernelWorkspace


# Per-registry cached counter children for _count_gls_path: it runs
# once per solved bucket on the serving path, where the uncached
# name -> family -> child lookup costs more than the increment.
_GLS_PATH_CACHE: Tuple[object, Dict[str, object]] = (None, {})


def _count_gls_path(path: str, solves: int = 1) -> None:
    """Record which GLS implementation answered (telemetry only).

    The Sherman-Morrison fast path and the dense-Cholesky fallback
    produce identical answers, so *which one ran* is invisible without
    this counter — yet it is exactly what a perf investigation needs.
    """
    global _GLS_PATH_CACHE
    registry = get_registry()
    if not registry.enabled:
        return
    cached_registry, children = _GLS_PATH_CACHE
    if cached_registry is not registry:
        children = {}
        _GLS_PATH_CACHE = (registry, children)
    child = children.get(path)
    if child is None:
        child = registry.counter(
            "repro_estimation_gls_solves_total",
            "GLS solves by implementation path.",
            labels=("path",),
        ).labels(path=path)
        children[path] = child
    child.inc(solves)


def _validate_components(diag: np.ndarray, scale: np.ndarray) -> None:
    if not np.all(np.isfinite(diag)) or np.any(diag <= 0):
        raise EstimationError(
            "diag-plus-rank-one covariance needs positive finite diagonal terms"
        )
    if not np.all(np.isfinite(scale)) or np.any(scale < 0):
        raise EstimationError(
            "diag-plus-rank-one covariance needs a non-negative finite rank-one scale"
        )


def apply_inverse_diag_rank1(
    diag: np.ndarray,
    scale: float,
    matrix: np.ndarray,
) -> np.ndarray:
    """``(diag(d) + s 11^T)^-1 @ matrix`` without forming the matrix.

    Parameters
    ----------
    diag:
        ``(k,)`` positive diagonal entries ``d``.
    scale:
        Non-negative rank-one scale ``s``.
    matrix:
        ``(k,)`` vector or ``(k, p)`` matrix to multiply.
    """
    d = np.asarray(diag, dtype=float)
    s = float(scale)
    v = np.asarray(matrix, dtype=float)
    _validate_components(d, np.asarray(s))
    inv_d = 1.0 / d
    denominator = 1.0 + s * float(inv_d.sum())
    u = v * (inv_d[:, None] if v.ndim == 2 else inv_d)
    column_sums = u.sum(axis=0)
    correction = (s / denominator) * column_sums
    if v.ndim == 2:
        return u - inv_d[:, None] * correction[None, :]
    return u - inv_d * correction


def gls_solve_diag_rank1(
    design: np.ndarray,
    observations: np.ndarray,
    diag: np.ndarray,
    scale: float,
) -> Tuple[np.ndarray, float]:
    """GLS with a ``diag(d) + s 11^T`` covariance, O(k) whitening.

    Solves ``x = (A^T Psi^-1 A)^-1 A^T Psi^-1 b`` (eq. 4-21) using the
    Sherman-Morrison inverse, and returns the solution together with
    the whitened (Mahalanobis) residual norm ``sqrt(r^T Psi^-1 r)`` —
    identical, up to float error, to what the dense
    :func:`~repro.estimation.leastsquares.gls_solve_whitened` returns
    for the materialized covariance, at a fraction of the cost.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    if a.ndim != 2 or b.shape != (a.shape[0],):
        raise EstimationError(
            f"design {a.shape} and observations {b.shape} are inconsistent"
        )
    d = np.asarray(diag, dtype=float)
    if d.shape != (a.shape[0],):
        raise EstimationError(
            f"diag shape {d.shape} does not match {a.shape[0]} equations"
        )
    _count_gls_path("sherman_morrison")
    psi_inv_design = apply_inverse_diag_rank1(d, scale, a)
    psi_inv_obs = apply_inverse_diag_rank1(d, scale, b)
    solution = cholesky_solve(a.T @ psi_inv_design, a.T @ psi_inv_obs)
    residuals = b - a @ solution
    mahalanobis_sq = float(residuals @ apply_inverse_diag_rank1(d, scale, residuals))
    return solution, float(np.sqrt(max(mahalanobis_sq, 0.0)))


def batched_apply_inverse_diag_rank1(
    diag: np.ndarray,
    scale: np.ndarray,
    stack: np.ndarray,
) -> np.ndarray:
    """Batched ``Psi^-1 @ v`` for N independent diag+rank-one systems.

    Parameters
    ----------
    diag:
        ``(N, k)`` positive diagonals.
    scale:
        ``(N,)`` non-negative rank-one scales.
    stack:
        ``(N, k)`` vectors or ``(N, k, p)`` matrices.
    """
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scale, dtype=float)
    v = np.asarray(stack, dtype=float)
    _validate_components(d, s)
    inv_d = 1.0 / d  # (N, k)
    denominator = 1.0 + s * inv_d.sum(axis=1)  # (N,)
    if v.ndim == 3:
        u = v * inv_d[:, :, None]
        correction = (s / denominator)[:, None] * u.sum(axis=1)  # (N, p)
        return u - inv_d[:, :, None] * correction[:, None, :]
    u = v * inv_d
    correction = (s / denominator) * u.sum(axis=1)  # (N,)
    return u - inv_d * correction[:, None]


def batched_gls_solve_diag_rank1(
    design: np.ndarray,
    observations: np.ndarray,
    diag: np.ndarray,
    scale: np.ndarray,
    workspace: "Optional[KernelWorkspace]" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One stacked GLS solve for N diag+rank-one systems.

    Parameters
    ----------
    design:
        ``(N, k, p)`` stacked design matrices.
    observations:
        ``(N, k)`` stacked right-hand sides.
    diag, scale:
        ``(N, k)`` diagonals and ``(N,)`` rank-one scales of the per-
        system covariances.
    workspace:
        Optional :class:`~repro.estimation.workspace.KernelWorkspace`
        supplying the whitening scratch tensors, so repeated solves of
        the same bucket shape allocate nothing.  Results are bitwise
        independent of whether a workspace is passed.

    Returns
    -------
    (solutions, whitened_norms)
        ``(N, p)`` solutions and ``(N,)`` Mahalanobis residual norms.

    The design and right-hand side are whitened as one fused ``[A | b]``
    stack: the Sherman-Morrison correction is column-independent
    (elementwise scaling plus a per-column axis-k reduction), so the
    fused pass is bitwise identical to whitening them separately while
    touching the diagonal/denominator arithmetic once instead of twice.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    if a.ndim != 3 or b.shape != a.shape[:2]:
        raise EstimationError(
            f"batched design {a.shape} and observations {b.shape} are inconsistent"
        )
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scale, dtype=float)
    _validate_components(d, s)
    _count_gls_path("sherman_morrison_batched", solves=a.shape[0])
    n, k, p = a.shape

    def _scratch(name: str, shape: Tuple[int, ...]) -> np.ndarray:
        if workspace is not None:
            return workspace.buffer(name, shape, a.dtype)
        return np.empty(shape, dtype=a.dtype)

    # Fused [A | b] whitening through the Sherman-Morrison identity.
    ab = _scratch("gls_ab", (n, k, p + 1))
    ab[..., :p] = a
    ab[..., p] = b
    inv_d = 1.0 / d  # (N, k)
    denominator = 1.0 + s * inv_d.sum(axis=1)  # (N,)
    whitened = np.multiply(ab, inv_d[:, :, None], out=_scratch("gls_u", (n, k, p + 1)))
    correction = (s / denominator)[:, None] * whitened.sum(axis=1)  # (N, p+1)
    whitened -= np.multiply(
        inv_d[:, :, None], correction[:, None, :], out=ab
    )
    psi_inv_design = whitened[..., :p]  # (N,k,p)
    psi_inv_obs = whitened[..., p]  # (N,k)
    gram = np.einsum("nki,nkj->nij", a, psi_inv_design)  # (N,p,p)
    moment = np.einsum("nki,nk->ni", a, psi_inv_obs)  # (N,p)
    try:
        solutions = np.linalg.solve(gram, moment[..., None])[..., 0]
    except np.linalg.LinAlgError as exc:
        raise EstimationError(
            "a batched GLS system is degenerate (rank-deficient design)"
        ) from exc
    residuals = b - np.einsum("nki,ni->nk", a, solutions)
    mahalanobis_sq = np.einsum(
        "nk,nk->n", residuals, batched_apply_inverse_diag_rank1(diag, scale, residuals)
    )
    return solutions, np.sqrt(np.maximum(mahalanobis_sq, 0.0))


# ----------------------------------------------------------------------
# Grouped (diag + rank-K block) structure: the multi-constellation
# generalization.  Differencing each constellation against its own base
# satellite makes the eq. 4-26 covariance *block*-diagonal — one
# diag+rank-one block per constellation, zero covariance across
# constellations (independent base satellites):
#
#     Psi = diag(d) + sum_g s_g 1_g 1_g^T,
#
# where 1_g is the indicator of rows in group g and s_g the squared
# pseudorange of group g's base satellite.  Sherman-Morrison applies
# per block, so the O(k) structure survives: each group needs only its
# own inverse-diagonal sum and column sums.
# ----------------------------------------------------------------------


def _validate_grouped(
    diag: np.ndarray, scales: np.ndarray, groups: np.ndarray
) -> int:
    """Common validation; returns the group count K."""
    if groups.ndim != 1:
        raise EstimationError(f"groups must be 1-D, got shape {groups.shape}")
    if diag.shape[-1] != groups.shape[0]:
        raise EstimationError(
            f"diag rows ({diag.shape[-1]}) do not match groups ({groups.shape[0]})"
        )
    k_groups = int(scales.shape[-1])
    if groups.size and (groups.min() < 0 or groups.max() >= k_groups):
        raise EstimationError(
            f"group indices must be in [0, {k_groups - 1}] to match scales"
        )
    if not np.all(np.isfinite(diag)) or np.any(diag <= 0):
        raise EstimationError(
            "grouped covariance needs positive finite diagonal terms"
        )
    if not np.all(np.isfinite(scales)) or np.any(scales < 0):
        raise EstimationError(
            "grouped covariance needs non-negative finite rank-one scales"
        )
    return k_groups


def _group_indicator(groups: np.ndarray, k_groups: int) -> np.ndarray:
    """``(k, K)`` one-hot membership matrix (float64 for einsum)."""
    indicator = np.zeros((groups.shape[0], k_groups))
    indicator[np.arange(groups.shape[0]), groups] = 1.0
    return indicator


def grouped_covariance(
    diag: np.ndarray, scales: np.ndarray, groups: np.ndarray
) -> np.ndarray:
    """Materialize the dense ``diag(d) + sum_g s_g 1_g 1_g^T`` matrix.

    The dense-Cholesky fallback (and the differential oracle for the
    grouped Sherman-Morrison path) needs the explicit matrix; at
    O(k^2) storage this stays off the hot path.
    """
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scales, dtype=float)
    g = np.asarray(groups, dtype=np.int64)
    _validate_grouped(d, s, g)
    same_group = g[:, None] == g[None, :]
    psi = np.where(same_group, s[g][None, :], 0.0)
    psi[np.arange(g.size), np.arange(g.size)] += d
    return psi


def apply_inverse_grouped_rank1(
    diag: np.ndarray,
    scales: np.ndarray,
    groups: np.ndarray,
    matrix: np.ndarray,
) -> np.ndarray:
    """``Psi^-1 @ matrix`` for the grouped diag+rank-one structure.

    Parameters
    ----------
    diag:
        ``(k,)`` positive diagonal entries.
    scales:
        ``(K,)`` non-negative per-group rank-one scales.
    groups:
        ``(k,)`` group index of every row, values in ``[0, K)``.
    matrix:
        ``(k,)`` vector or ``(k, p)`` matrix to multiply.
    """
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scales, dtype=float)
    g = np.asarray(groups, dtype=np.int64)
    v = np.asarray(matrix, dtype=float)
    k_groups = _validate_grouped(d, s, g)
    inv_d = 1.0 / d
    inv_sums = np.bincount(g, weights=inv_d, minlength=k_groups)  # (K,)
    denominator = 1.0 + s * inv_sums  # (K,)
    coefficient = s / denominator  # (K,)
    if v.ndim == 2:
        u = v * inv_d[:, None]
        group_sums = _group_indicator(g, k_groups).T @ u  # (K, p)
        return u - inv_d[:, None] * (coefficient[g, None] * group_sums[g, :])
    u = v * inv_d
    group_sums = np.bincount(g, weights=u, minlength=k_groups)  # (K,)
    return u - inv_d * (coefficient[g] * group_sums[g])


def gls_solve_grouped_rank1(
    design: np.ndarray,
    observations: np.ndarray,
    diag: np.ndarray,
    scales: np.ndarray,
    groups: np.ndarray,
    method: str = "auto",
) -> Tuple[np.ndarray, float]:
    """GLS under the grouped diag+rank-one covariance.

    ``method`` selects the implementation: ``"auto"`` (the grouped
    Sherman-Morrison fast path), ``"sherman_morrison"`` explicitly, or
    ``"dense"`` — materialize the covariance and run the dense-Cholesky
    :func:`~repro.estimation.leastsquares.gls_solve_whitened`, the
    fallback/oracle for the structured path.  All methods agree to
    float rounding.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    if a.ndim != 2 or b.shape != (a.shape[0],):
        raise EstimationError(
            f"design {a.shape} and observations {b.shape} are inconsistent"
        )
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scales, dtype=float)
    g = np.asarray(groups, dtype=np.int64)
    if method not in ("auto", "sherman_morrison", "dense"):
        raise EstimationError(f"unknown grouped GLS method {method!r}")
    if method == "dense":
        from repro.estimation.leastsquares import gls_solve_whitened

        psi = grouped_covariance(d, s, g)
        return gls_solve_whitened(a, b, psi)
    _validate_grouped(d, s, g)
    if d.shape != (a.shape[0],):
        raise EstimationError(
            f"diag shape {d.shape} does not match {a.shape[0]} equations"
        )
    _count_gls_path("grouped_sherman_morrison")
    psi_inv_design = apply_inverse_grouped_rank1(d, s, g, a)
    psi_inv_obs = apply_inverse_grouped_rank1(d, s, g, b)
    solution = cholesky_solve(a.T @ psi_inv_design, a.T @ psi_inv_obs)
    residuals = b - a @ solution
    mahalanobis_sq = float(
        residuals @ apply_inverse_grouped_rank1(d, s, g, residuals)
    )
    return solution, float(np.sqrt(max(mahalanobis_sq, 0.0)))


def batched_apply_inverse_grouped_rank1(
    diag: np.ndarray,
    scales: np.ndarray,
    groups: np.ndarray,
    stack: np.ndarray,
) -> np.ndarray:
    """Batched ``Psi^-1 @ v`` for N grouped diag+rank-one systems.

    The group layout ``groups`` is shared by the whole batch — exactly
    what the pattern-bucketed :class:`~repro.blocks.PackedStream`
    guarantees (every row of a bucket puts each constellation in the
    same slots).

    Parameters
    ----------
    diag:
        ``(N, k)`` positive diagonals.
    scales:
        ``(N, K)`` non-negative per-group scales.
    groups:
        ``(k,)`` shared group index per row.
    stack:
        ``(N, k)`` vectors or ``(N, k, p)`` matrices.
    """
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scales, dtype=float)
    g = np.asarray(groups, dtype=np.int64)
    v = np.asarray(stack, dtype=float)
    k_groups = _validate_grouped(d, s, g)
    indicator = _group_indicator(g, k_groups)  # (k, K)
    inv_d = 1.0 / d  # (N, k)
    denominator = 1.0 + s * (inv_d @ indicator)  # (N, K)
    coefficient = s / denominator  # (N, K)
    if v.ndim == 3:
        u = v * inv_d[:, :, None]
        group_sums = np.einsum("nkq,kg->ngq", u, indicator)  # (N, K, p)
        correction = coefficient[:, g, None] * group_sums[:, g, :]
        return u - inv_d[:, :, None] * correction
    u = v * inv_d
    group_sums = u @ indicator  # (N, K)
    return u - inv_d * (coefficient[:, g] * group_sums[:, g])


def batched_gls_solve_grouped_rank1(
    design: np.ndarray,
    observations: np.ndarray,
    diag: np.ndarray,
    scales: np.ndarray,
    groups: np.ndarray,
    workspace: "Optional[KernelWorkspace]" = None,
    method: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """One stacked GLS solve for N grouped diag+rank-one systems.

    The rank-K generalization of :func:`batched_gls_solve_diag_rank1`:
    same fused ``[A | b]`` whitening, with the per-column axis-k
    reduction replaced by K per-group reductions (a single ``(k, K)``
    indicator einsum).  ``method="dense"`` runs the batched
    dense-Cholesky fallback instead — O(k^3) per epoch, used when the
    structured path is unavailable or as its oracle.

    Returns ``(solutions (N, p), whitened_norms (N,))``.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    if a.ndim != 3 or b.shape != a.shape[:2]:
        raise EstimationError(
            f"batched design {a.shape} and observations {b.shape} are inconsistent"
        )
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scales, dtype=float)
    g = np.asarray(groups, dtype=np.int64)
    k_groups = _validate_grouped(d, s, g)
    if method not in ("auto", "sherman_morrison", "dense"):
        raise EstimationError(f"unknown grouped GLS method {method!r}")
    n, k, p = a.shape
    if method == "dense":
        _count_gls_path("dense_cholesky_batched", solves=n)
        same_group = g[:, None] == g[None, :]  # (k, k)
        psi = np.where(same_group[None, :, :], s[:, g][:, None, :], 0.0)
        psi[:, np.arange(k), np.arange(k)] += d
        try:
            chol = np.linalg.cholesky(psi)
            white_a = np.linalg.solve(chol, a)
            white_b = np.linalg.solve(chol, b[..., None])[..., 0]
            gram = np.einsum("nki,nkj->nij", white_a, white_a)
            moment = np.einsum("nki,nk->ni", white_a, white_b)
            solutions = np.linalg.solve(gram, moment[..., None])[..., 0]
        except np.linalg.LinAlgError as exc:
            raise EstimationError(
                "a batched grouped GLS system is degenerate"
            ) from exc
        residuals = b - np.einsum("nki,ni->nk", a, solutions)
        white_r = np.linalg.solve(chol, residuals[..., None])[..., 0]
        return solutions, np.sqrt(np.einsum("nk,nk->n", white_r, white_r))
    _count_gls_path("grouped_sherman_morrison_batched", solves=n)

    def _scratch(name: str, shape: Tuple[int, ...]) -> np.ndarray:
        if workspace is not None:
            return workspace.buffer(name, shape, a.dtype)
        return np.empty(shape, dtype=a.dtype)

    indicator = _group_indicator(g, k_groups)  # (k, K)
    ab = _scratch("grouped_gls_ab", (n, k, p + 1))
    ab[..., :p] = a
    ab[..., p] = b
    inv_d = 1.0 / d  # (N, k)
    denominator = 1.0 + s * (inv_d @ indicator)  # (N, K)
    coefficient = s / denominator  # (N, K)
    u = np.multiply(ab, inv_d[:, :, None], out=_scratch("grouped_gls_u", (n, k, p + 1)))
    group_sums = np.einsum("nkq,kg->ngq", u, indicator)  # (N, K, p+1)
    correction = coefficient[:, g, None] * group_sums[:, g, :]  # (N, k, p+1)
    whitened = u
    whitened -= np.multiply(inv_d[:, :, None], correction, out=ab)
    psi_inv_design = whitened[..., :p]
    psi_inv_obs = whitened[..., p]
    gram = np.einsum("nki,nkj->nij", a, psi_inv_design)
    moment = np.einsum("nki,nk->ni", a, psi_inv_obs)
    try:
        solutions = np.linalg.solve(gram, moment[..., None])[..., 0]
    except np.linalg.LinAlgError as exc:
        raise EstimationError(
            "a batched grouped GLS system is degenerate (rank-deficient design)"
        ) from exc
    residuals = b - np.einsum("nki,ni->nk", a, solutions)
    mahalanobis_sq = np.einsum(
        "nk,nk->n",
        residuals,
        batched_apply_inverse_grouped_rank1(d, s, g, residuals),
    )
    return solutions, np.sqrt(np.maximum(mahalanobis_sq, 0.0))
