"""Structured-covariance least squares: the diagonal-plus-rank-one path.

The eq. 4-26 difference covariance is not an arbitrary dense matrix:
every off-diagonal entry is the shared base-satellite variance, so

    Psi = diag(d) + s * 1 1^T,   d_j = rho_j^2,  s = rho_base^2.

That structure admits the Sherman-Morrison identity

    Psi^-1 = D^-1 - (s / (1 + s * sum(1/d))) * D^-1 1 1^T D^-1,

so applying ``Psi^-1`` costs O(k) per vector instead of the O(k^3)
Cholesky factorization that a dense GLS solve pays — and, unlike a
factorization, it vectorizes trivially across a whole ``(N, k)`` stack
of epochs.  This module is the shared fast path behind the scalar
:class:`~repro.solvers.direct_linear.DLGSolver` and the batch engine's
:class:`~repro.solvers.batch.BatchDLGSolver`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.errors import EstimationError
from repro.estimation.linalg import cholesky_solve
from repro.telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.estimation.workspace import KernelWorkspace


# Per-registry cached counter children for _count_gls_path: it runs
# once per solved bucket on the serving path, where the uncached
# name -> family -> child lookup costs more than the increment.
_GLS_PATH_CACHE: Tuple[object, Dict[str, object]] = (None, {})


def _count_gls_path(path: str, solves: int = 1) -> None:
    """Record which GLS implementation answered (telemetry only).

    The Sherman-Morrison fast path and the dense-Cholesky fallback
    produce identical answers, so *which one ran* is invisible without
    this counter — yet it is exactly what a perf investigation needs.
    """
    global _GLS_PATH_CACHE
    registry = get_registry()
    if not registry.enabled:
        return
    cached_registry, children = _GLS_PATH_CACHE
    if cached_registry is not registry:
        children = {}
        _GLS_PATH_CACHE = (registry, children)
    child = children.get(path)
    if child is None:
        child = registry.counter(
            "repro_estimation_gls_solves_total",
            "GLS solves by implementation path.",
            labels=("path",),
        ).labels(path=path)
        children[path] = child
    child.inc(solves)


def _validate_components(diag: np.ndarray, scale: np.ndarray) -> None:
    if not np.all(np.isfinite(diag)) or np.any(diag <= 0):
        raise EstimationError(
            "diag-plus-rank-one covariance needs positive finite diagonal terms"
        )
    if not np.all(np.isfinite(scale)) or np.any(scale < 0):
        raise EstimationError(
            "diag-plus-rank-one covariance needs a non-negative finite rank-one scale"
        )


def apply_inverse_diag_rank1(
    diag: np.ndarray,
    scale: float,
    matrix: np.ndarray,
) -> np.ndarray:
    """``(diag(d) + s 11^T)^-1 @ matrix`` without forming the matrix.

    Parameters
    ----------
    diag:
        ``(k,)`` positive diagonal entries ``d``.
    scale:
        Non-negative rank-one scale ``s``.
    matrix:
        ``(k,)`` vector or ``(k, p)`` matrix to multiply.
    """
    d = np.asarray(diag, dtype=float)
    s = float(scale)
    v = np.asarray(matrix, dtype=float)
    _validate_components(d, np.asarray(s))
    inv_d = 1.0 / d
    denominator = 1.0 + s * float(inv_d.sum())
    u = v * (inv_d[:, None] if v.ndim == 2 else inv_d)
    column_sums = u.sum(axis=0)
    correction = (s / denominator) * column_sums
    if v.ndim == 2:
        return u - inv_d[:, None] * correction[None, :]
    return u - inv_d * correction


def gls_solve_diag_rank1(
    design: np.ndarray,
    observations: np.ndarray,
    diag: np.ndarray,
    scale: float,
) -> Tuple[np.ndarray, float]:
    """GLS with a ``diag(d) + s 11^T`` covariance, O(k) whitening.

    Solves ``x = (A^T Psi^-1 A)^-1 A^T Psi^-1 b`` (eq. 4-21) using the
    Sherman-Morrison inverse, and returns the solution together with
    the whitened (Mahalanobis) residual norm ``sqrt(r^T Psi^-1 r)`` —
    identical, up to float error, to what the dense
    :func:`~repro.estimation.leastsquares.gls_solve_whitened` returns
    for the materialized covariance, at a fraction of the cost.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    if a.ndim != 2 or b.shape != (a.shape[0],):
        raise EstimationError(
            f"design {a.shape} and observations {b.shape} are inconsistent"
        )
    d = np.asarray(diag, dtype=float)
    if d.shape != (a.shape[0],):
        raise EstimationError(
            f"diag shape {d.shape} does not match {a.shape[0]} equations"
        )
    _count_gls_path("sherman_morrison")
    psi_inv_design = apply_inverse_diag_rank1(d, scale, a)
    psi_inv_obs = apply_inverse_diag_rank1(d, scale, b)
    solution = cholesky_solve(a.T @ psi_inv_design, a.T @ psi_inv_obs)
    residuals = b - a @ solution
    mahalanobis_sq = float(residuals @ apply_inverse_diag_rank1(d, scale, residuals))
    return solution, float(np.sqrt(max(mahalanobis_sq, 0.0)))


def batched_apply_inverse_diag_rank1(
    diag: np.ndarray,
    scale: np.ndarray,
    stack: np.ndarray,
) -> np.ndarray:
    """Batched ``Psi^-1 @ v`` for N independent diag+rank-one systems.

    Parameters
    ----------
    diag:
        ``(N, k)`` positive diagonals.
    scale:
        ``(N,)`` non-negative rank-one scales.
    stack:
        ``(N, k)`` vectors or ``(N, k, p)`` matrices.
    """
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scale, dtype=float)
    v = np.asarray(stack, dtype=float)
    _validate_components(d, s)
    inv_d = 1.0 / d  # (N, k)
    denominator = 1.0 + s * inv_d.sum(axis=1)  # (N,)
    if v.ndim == 3:
        u = v * inv_d[:, :, None]
        correction = (s / denominator)[:, None] * u.sum(axis=1)  # (N, p)
        return u - inv_d[:, :, None] * correction[:, None, :]
    u = v * inv_d
    correction = (s / denominator) * u.sum(axis=1)  # (N,)
    return u - inv_d * correction[:, None]


def batched_gls_solve_diag_rank1(
    design: np.ndarray,
    observations: np.ndarray,
    diag: np.ndarray,
    scale: np.ndarray,
    workspace: "Optional[KernelWorkspace]" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One stacked GLS solve for N diag+rank-one systems.

    Parameters
    ----------
    design:
        ``(N, k, p)`` stacked design matrices.
    observations:
        ``(N, k)`` stacked right-hand sides.
    diag, scale:
        ``(N, k)`` diagonals and ``(N,)`` rank-one scales of the per-
        system covariances.
    workspace:
        Optional :class:`~repro.estimation.workspace.KernelWorkspace`
        supplying the whitening scratch tensors, so repeated solves of
        the same bucket shape allocate nothing.  Results are bitwise
        independent of whether a workspace is passed.

    Returns
    -------
    (solutions, whitened_norms)
        ``(N, p)`` solutions and ``(N,)`` Mahalanobis residual norms.

    The design and right-hand side are whitened as one fused ``[A | b]``
    stack: the Sherman-Morrison correction is column-independent
    (elementwise scaling plus a per-column axis-k reduction), so the
    fused pass is bitwise identical to whitening them separately while
    touching the diagonal/denominator arithmetic once instead of twice.
    """
    a = np.asarray(design, dtype=float)
    b = np.asarray(observations, dtype=float)
    if a.ndim != 3 or b.shape != a.shape[:2]:
        raise EstimationError(
            f"batched design {a.shape} and observations {b.shape} are inconsistent"
        )
    d = np.asarray(diag, dtype=float)
    s = np.asarray(scale, dtype=float)
    _validate_components(d, s)
    _count_gls_path("sherman_morrison_batched", solves=a.shape[0])
    n, k, p = a.shape

    def _scratch(name: str, shape: Tuple[int, ...]) -> np.ndarray:
        if workspace is not None:
            return workspace.buffer(name, shape, a.dtype)
        return np.empty(shape, dtype=a.dtype)

    # Fused [A | b] whitening through the Sherman-Morrison identity.
    ab = _scratch("gls_ab", (n, k, p + 1))
    ab[..., :p] = a
    ab[..., p] = b
    inv_d = 1.0 / d  # (N, k)
    denominator = 1.0 + s * inv_d.sum(axis=1)  # (N,)
    whitened = np.multiply(ab, inv_d[:, :, None], out=_scratch("gls_u", (n, k, p + 1)))
    correction = (s / denominator)[:, None] * whitened.sum(axis=1)  # (N, p+1)
    whitened -= np.multiply(
        inv_d[:, :, None], correction[:, None, :], out=ab
    )
    psi_inv_design = whitened[..., :p]  # (N,k,p)
    psi_inv_obs = whitened[..., p]  # (N,k)
    gram = np.einsum("nki,nkj->nij", a, psi_inv_design)  # (N,p,p)
    moment = np.einsum("nki,nk->ni", a, psi_inv_obs)  # (N,p)
    try:
        solutions = np.linalg.solve(gram, moment[..., None])[..., 0]
    except np.linalg.LinAlgError as exc:
        raise EstimationError(
            "a batched GLS system is degenerate (rank-deficient design)"
        ) from exc
    residuals = b - np.einsum("nki,ni->nk", a, solutions)
    mahalanobis_sq = np.einsum(
        "nk,nk->n", residuals, batched_apply_inverse_diag_rank1(diag, scale, residuals)
    )
    return solutions, np.sqrt(np.maximum(mahalanobis_sq, 0.0))
