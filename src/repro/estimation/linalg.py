"""Linear-algebra helpers shared by the estimators."""

from __future__ import annotations

import numpy as np

from repro.errors import EstimationError


def cholesky_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` for a symmetric positive-definite matrix.

    Uses a Cholesky factorization, which is both the fastest dense
    route and a built-in positive-definiteness check: failure raises
    :class:`EstimationError` instead of returning garbage, which is how
    degenerate satellite geometry surfaces to callers.
    """
    a = np.asarray(matrix, dtype=float)
    b = np.asarray(rhs, dtype=float)
    try:
        factor = np.linalg.cholesky(a)
    except np.linalg.LinAlgError as exc:
        raise EstimationError(
            "normal-equations matrix is not positive definite "
            "(degenerate geometry or rank-deficient design matrix)"
        ) from exc
    # Forward/back substitution via triangular solves.
    y = np.linalg.solve(factor, b)
    return np.linalg.solve(factor.T, y)


def condition_number(matrix: np.ndarray) -> float:
    """2-norm condition number; ``inf`` for a singular matrix."""
    a = np.asarray(matrix, dtype=float)
    try:
        return float(np.linalg.cond(a))
    except np.linalg.LinAlgError:
        return float("inf")


def is_positive_definite(matrix: np.ndarray, symmetry_tolerance: float = 1e-8) -> bool:
    """Whether a matrix is symmetric positive definite.

    Symmetry is checked to relative tolerance first; then a Cholesky
    attempt decides definiteness (the numerically meaningful test).
    """
    a = np.asarray(matrix, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        return False
    scale = max(1.0, float(np.max(np.abs(a))))
    if np.max(np.abs(a - a.T)) > symmetry_tolerance * scale:
        return False
    try:
        np.linalg.cholesky(a)
        return True
    except np.linalg.LinAlgError:
        return False
