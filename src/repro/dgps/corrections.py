"""DGPS reference-station corrections and rover-side application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import ConfigurationError, GeometryError
from repro.observations import ObservationEpoch, SatelliteObservation
from repro.timebase import GpsTime
from repro.utils.validation import require_shape


@dataclass(frozen=True)
class DgpsCorrections:
    """Per-satellite pseudorange corrections issued at one instant.

    ``corrections[prn]`` is the value to *subtract* from a rover's
    measured pseudorange for that satellite.  It contains the
    satellite-dependent error observed by the reference station *plus*
    the reference receiver's clock bias; the latter is common to all
    corrections of the epoch and therefore folds into the rover's
    solved clock term (P4P absorbs any per-epoch constant), exactly as
    operational DGPS does.
    """

    time: GpsTime
    corrections: Dict[int, float]
    reference_station: str = ""

    def __post_init__(self) -> None:
        if not self.corrections:
            raise ConfigurationError("DGPS corrections must not be empty")

    @property
    def prns(self):
        """PRNs covered by this correction set, sorted."""
        return sorted(self.corrections)


class DgpsReferenceStation:
    """A surveyed receiver computing pseudorange corrections.

    Parameters
    ----------
    name:
        Station label stamped onto the corrections.
    position_ecef:
        The surveyed ECEF position (meters); the whole technique rests
        on this being accurately known.
    """

    def __init__(self, name: str, position_ecef: np.ndarray) -> None:
        self.name = name
        self.position = require_shape("position_ecef", position_ecef, (3,))

    def compute_corrections(self, epoch: ObservationEpoch) -> DgpsCorrections:
        """Corrections from one of the reference station's own epochs.

        For each satellite: ``correction = rho_measured - ||s - x_ref||``
        — everything in the measurement that is not geometric range, as
        seen from the surveyed point.
        """
        corrections: Dict[int, float] = {}
        for observation in epoch.observations:
            geometric = float(np.linalg.norm(observation.position - self.position))
            if geometric <= 0:
                raise GeometryError(
                    f"satellite PRN {observation.prn} coincides with the "
                    "reference station"
                )
            corrections[observation.prn] = observation.pseudorange - geometric
        return DgpsCorrections(
            time=epoch.time, corrections=corrections, reference_station=self.name
        )


def apply_corrections(
    epoch: ObservationEpoch,
    corrections: DgpsCorrections,
    max_age_seconds: float = 30.0,
    min_satellites: int = 4,
) -> ObservationEpoch:
    """Apply reference corrections to a rover epoch.

    Satellites without a correction are dropped (the rover cannot
    difference them).  Corrections older than ``max_age_seconds`` are
    refused — stale corrections are worse than none because the
    atmosphere and satellite clocks move on.

    Returns a new epoch whose pseudoranges are differentially
    corrected; solve it with any of the P4P algorithms (the rover's
    solved "clock bias" will then be ``eps_R_rover - eps_R_ref``).
    """
    age = abs(epoch.time - corrections.time)
    if age > max_age_seconds:
        raise ConfigurationError(
            f"DGPS corrections are {age:.1f} s old (limit {max_age_seconds} s)"
        )

    corrected = []
    for observation in epoch.observations:
        correction = corrections.corrections.get(observation.prn)
        if correction is None:
            continue
        pseudorange = observation.pseudorange - correction
        if pseudorange <= 0:
            raise GeometryError(
                f"corrected pseudorange for PRN {observation.prn} is "
                "non-positive; reference and rover data are inconsistent"
            )
        corrected.append(
            SatelliteObservation(
                prn=observation.prn,
                position=observation.position,
                pseudorange=pseudorange,
                elevation=observation.elevation,
                azimuth=observation.azimuth,
            )
        )
    if len(corrected) < min_satellites:
        raise GeometryError(
            f"only {len(corrected)} satellites have corrections; "
            f"{min_satellites} required"
        )
    return epoch.with_observations(corrected)
