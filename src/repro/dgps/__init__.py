"""Differential GPS (DGPS) corrections.

Section 3.3 of the paper: "In the case where there are only clock
dependent errors, or where satellite dependent errors can be
compensated, 4 satellites are sufficient.  For example, Differential
GPS (DGPS) technology ... can be used."

This package provides that compensation: a reference station at a
surveyed position observes the same satellites as a nearby rover and
broadcasts per-satellite pseudorange corrections.  Applying them
cancels the errors common to both receivers — satellite clock
residual, ionosphere, troposphere (the paper's ``eps_S``) — leaving
the rover with geometry + its own clock bias + decorrelated noise.
"""

from repro.dgps.corrections import (
    DgpsCorrections,
    DgpsReferenceStation,
    apply_corrections,
)

__all__ = ["DgpsCorrections", "DgpsReferenceStation", "apply_corrections"]
