"""Plain-text report formatting for the reproduced tables and figures.

The benches print through these helpers so every experiment produces
the same row/series layout the paper reports — one rate table per
station panel, satellite count on the x-axis, DLO/DLG series.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.evaluation.experiments import StationResult
from repro.stations.catalog import Station


def format_table_5_1(stations: Iterable[Station], epoch_counts: Dict[str, int]) -> str:
    """Render Table 5.1 plus the per-data-set item counts.

    ``epoch_counts`` maps site id to the number of data items generated
    for that station (86 400 for the paper's full-day configuration).
    """
    lines = [
        "Table 5.1: Data Set Specifications",
        f"{'No.':>3} {'Site':<5} {'ECEF Coordinates (X, Y, Z) (m)':<46} "
        f"{'Date':<11} {'Clock':<10} {'Items':>7}",
    ]
    for station in stations:
        x, y, z = station.ecef
        coords = f"({x:.3f}, {y:.3f}, {z:.3f})"
        lines.append(
            f"{station.number:>3} {station.site_id:<5} {coords:<46} "
            f"{station.collection_date:<11} {station.clock_correction:<10} "
            f"{epoch_counts.get(station.site_id, 0):>7}"
        )
    return "\n".join(lines)


def format_rate_table(
    title: str,
    rates: Dict[str, Dict[int, float]],
    satellite_counts: Sequence[int],
    unit: str = "%",
) -> str:
    """One figure panel as text: rows = algorithm, columns = m."""
    header = f"{'alg':<6}" + "".join(f"{f'm={m}':>9}" for m in satellite_counts)
    lines = [title, header]
    for algorithm in sorted(rates):
        cells = []
        for m in satellite_counts:
            value = rates[algorithm].get(m)
            cells.append(f"{value:8.1f}{unit}" if value is not None else f"{'-':>9}")
        lines.append(f"{algorithm:<6}" + "".join(cells))
    return "\n".join(lines)


def format_ascii_series(
    title: str,
    series: Dict[str, Dict[int, float]],
    satellite_counts: Sequence[int],
    height: int = 10,
    y_label: str = "%",
) -> str:
    """Render figure panels as an ASCII chart (one mark per algorithm).

    Each algorithm's values over the satellite-count sweep plot as its
    own symbol; the y-axis auto-scales to the data.  This is the
    closest a terminal gets to the paper's line plots, and keeps the
    bench output self-contained.
    """
    marks = {}
    symbols = "ox+*#@"
    values = []
    for index, algorithm in enumerate(sorted(series)):
        marks[algorithm] = symbols[index % len(symbols)]
        values.extend(
            series[algorithm][m] for m in satellite_counts if m in series[algorithm]
        )
    if not values:
        return f"{title}\n  (no data)"

    low, high = min(values), max(values)
    if high == low:
        high = low + 1.0
    rows: List[List[str]] = [
        [" "] * (len(satellite_counts) * 4) for _ in range(height)
    ]
    for algorithm in sorted(series):
        for column, m in enumerate(satellite_counts):
            value = series[algorithm].get(m)
            if value is None:
                continue
            level = int(round((value - low) / (high - low) * (height - 1)))
            row = height - 1 - level
            cell = column * 4 + 1
            rows[row][cell] = marks[algorithm]

    lines = [title]
    for index, row in enumerate(rows):
        if index == 0:
            label = f"{high:7.1f}{y_label} |"
        elif index == height - 1:
            label = f"{low:7.1f}{y_label} |"
        else:
            label = " " * 8 + " |"
        lines.append(label + "".join(row))
    axis = " " * 10 + "".join(f"{f'm={m}':<4}" for m in satellite_counts)
    lines.append(axis)
    legend = "  legend: " + ", ".join(
        f"{marks[algorithm]}={algorithm}" for algorithm in sorted(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def format_station_report(result: StationResult) -> str:
    """Full per-station report: raw aggregates plus both rate panels."""
    station = result.station
    counts = result.satellite_counts
    lines: List[str] = [
        f"Station {station.site_id} (#{station.number}, "
        f"{station.clock_correction} clock)",
        f"  epochs used per m: "
        + ", ".join(f"m={m}:{result.epochs_used.get(m, 0)}" for m in counts),
    ]

    lines.append(f"  {'mean error (m)':<18}" + "".join(f"{f'm={m}':>9}" for m in counts))
    for algorithm in sorted(result.error_m):
        series = result.error_m[algorithm]
        cells = "".join(
            f"{series[m]:9.2f}" if m in series else f"{'-':>9}" for m in counts
        )
        lines.append(f"  {algorithm:<18}" + cells)

    lines.append(f"  {'mean time (us)':<18}" + "".join(f"{f'm={m}':>9}" for m in counts))
    for algorithm in sorted(result.time_ns):
        series = result.time_ns[algorithm]
        cells = "".join(
            f"{series[m] / 1000.0:9.1f}" if m in series else f"{'-':>9}"
            for m in counts
        )
        lines.append(f"  {algorithm:<18}" + cells)

    lines.append(
        format_rate_table(
            f"  Fig 5.1 panel ({station.site_id}): execution time rate theta",
            result.time_rate_pct,
            counts,
        )
    )
    lines.append(
        format_rate_table(
            f"  Fig 5.2 panel ({station.site_id}): accuracy rate eta",
            result.accuracy_rate_pct,
            counts,
        )
    )
    return "\n".join(lines)
