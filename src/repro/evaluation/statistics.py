"""GNSS-style error statistics for fix streams.

The paper reports plain mean errors; downstream users usually want the
standard positioning summary: RMS, CEP (circular error probable),
95th percentile, and the horizontal/vertical split in the receiver's
local frame.  This module computes all of it from a stream of fixes
against a truth position (or per-epoch truths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.types import PositionFix
from repro.errors import ConfigurationError
from repro.geodesy import ecef_to_enu_matrix, ecef_to_geodetic
from repro.utils.validation import require_shape


def enu_error(
    estimated_position: np.ndarray,
    truth_position: np.ndarray,
) -> Tuple[float, float, float]:
    """Error components in the local frame anchored at the truth point.

    Returns ``(east, north, up)`` in meters (signed).
    """
    estimate = require_shape("estimated_position", estimated_position, (3,))
    truth = require_shape("truth_position", truth_position, (3,))
    latitude, longitude, _height = ecef_to_geodetic(truth)
    rotation = ecef_to_enu_matrix(latitude, longitude)
    east, north, up = rotation @ (estimate - truth)
    return float(east), float(north), float(up)


@dataclass(frozen=True)
class ErrorStatistics:
    """Summary of a fix stream's position errors.

    All values in meters.  ``cep50``/``cep95`` are horizontal circular
    error percentiles (the conventional receiver datasheet numbers);
    ``rms_3d`` is the root-mean-square of the full 3-D error.
    """

    count: int
    mean_3d: float
    rms_3d: float
    max_3d: float
    cep50: float
    cep95: float
    rms_horizontal: float
    rms_vertical: float
    mean_vertical_signed: float

    @classmethod
    def from_errors(cls, enu_errors: Sequence[Tuple[float, float, float]]) -> "ErrorStatistics":
        """Build from per-epoch ``(east, north, up)`` error triples."""
        if not enu_errors:
            raise ConfigurationError("cannot summarize zero errors")
        array = np.asarray(enu_errors, dtype=float)
        if array.ndim != 2 or array.shape[1] != 3:
            raise ConfigurationError("enu_errors must be a sequence of 3-tuples")
        if not np.all(np.isfinite(array)):
            raise ConfigurationError("enu_errors must be finite")

        horizontal = np.hypot(array[:, 0], array[:, 1])
        vertical = array[:, 2]
        three_d = np.linalg.norm(array, axis=1)
        return cls(
            count=int(array.shape[0]),
            mean_3d=float(np.mean(three_d)),
            rms_3d=float(np.sqrt(np.mean(three_d**2))),
            max_3d=float(np.max(three_d)),
            cep50=float(np.percentile(horizontal, 50.0)),
            cep95=float(np.percentile(horizontal, 95.0)),
            rms_horizontal=float(np.sqrt(np.mean(horizontal**2))),
            rms_vertical=float(np.sqrt(np.mean(vertical**2))),
            mean_vertical_signed=float(np.mean(vertical)),
        )

    @classmethod
    def from_fixes(
        cls,
        fixes: Iterable[PositionFix],
        truth_position: np.ndarray,
    ) -> "ErrorStatistics":
        """Build from fixes against one static truth position."""
        truth = require_shape("truth_position", truth_position, (3,))
        errors: List[Tuple[float, float, float]] = [
            enu_error(fix.position, truth) for fix in fixes
        ]
        return cls.from_errors(errors)

    def __str__(self) -> str:
        return (
            f"n={self.count} rms3d={self.rms_3d:.2f}m mean3d={self.mean_3d:.2f}m "
            f"cep50={self.cep50:.2f}m cep95={self.cep95:.2f}m "
            f"rmsH={self.rms_horizontal:.2f}m rmsV={self.rms_vertical:.2f}m"
        )
