"""The paper's performance metrics (Section 5.1)."""

from __future__ import annotations

import numpy as np

from repro.core.types import PositionFix
from repro.errors import ConfigurationError


def absolute_error(fix: PositionFix, truth_position: np.ndarray) -> float:
    """Absolute 3-D position error ``d_O`` in meters (eq. 5-1)."""
    return fix.distance_to(truth_position)


def accuracy_rate(d_algorithm: float, d_nr: float) -> float:
    """Accuracy rate ``eta = d_O / d_NR * 100%`` (eq. 5-2).

    Values above 100 mean the algorithm is less accurate than NR.
    """
    if d_algorithm < 0 or d_nr <= 0:
        raise ConfigurationError(
            f"errors must be positive (d_O={d_algorithm}, d_NR={d_nr})"
        )
    return 100.0 * d_algorithm / d_nr


def execution_time_rate(tau_algorithm: float, tau_nr: float) -> float:
    """Execution time rate ``theta = tau_O / tau_NR * 100%`` (eq. 5-3).

    Values below 100 mean the algorithm is faster than NR.
    """
    if tau_algorithm <= 0 or tau_nr <= 0:
        raise ConfigurationError(
            f"times must be positive (tau_O={tau_algorithm}, tau_NR={tau_nr})"
        )
    return 100.0 * tau_algorithm / tau_nr
