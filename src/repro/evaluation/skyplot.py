"""ASCII sky plots: where the satellites are, at a glance.

A sky plot maps each visible satellite's (azimuth, elevation) onto a
polar disc — north up, zenith at the center, horizon on the rim.  It
is the standard way to eyeball geometry problems: clustered satellites
mean a high DOP, an empty quadrant means a shadowed antenna, and the
paper's m-satellite subsets can be sanity-checked visually.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError

#: Characters used for satellite marks, cycled by order of appearance.
_MARKS = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def render_skyplot(
    satellites: Iterable[Tuple[int, float, float]],
    radius: int = 11,
) -> str:
    """Render satellites as an ASCII sky disc.

    Parameters
    ----------
    satellites:
        Iterable of ``(prn, elevation_rad, azimuth_rad)``; satellites
        below the horizon are skipped.
    radius:
        Disc radius in character rows (the plot is ``2*radius+1`` rows
        tall and twice as wide, because terminal cells are ~2:1).

    Returns
    -------
    str
        The plot plus a legend mapping marks to PRNs.
    """
    if radius < 4:
        raise ConfigurationError("radius must be at least 4")

    height = 2 * radius + 1
    width = 2 * (2 * radius) + 1
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    # Horizon circle.
    for degree in range(0, 360, 2):
        theta = math.radians(degree)
        row = int(round(radius - radius * math.cos(theta)))
        col = int(round(2 * radius + 2 * radius * math.sin(theta)))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = "."

    # Compass labels.
    grid[0][2 * radius] = "N"
    grid[height - 1][2 * radius] = "S"
    grid[radius][width - 1] = "E"
    grid[radius][0] = "W"
    grid[radius][2 * radius] = "+"  # zenith

    legend: Dict[str, int] = {}
    for index, (prn, elevation, azimuth) in enumerate(satellites):
        if elevation < 0:
            continue
        mark = _MARKS[index % len(_MARKS)]
        # Zenith-centered polar projection: r = (90 - el)/90.
        fraction = 1.0 - (elevation / (math.pi / 2.0))
        fraction = min(max(fraction, 0.0), 1.0)
        row = int(round(radius - radius * fraction * math.cos(azimuth)))
        col = int(round(2 * radius + 2 * radius * fraction * math.sin(azimuth)))
        if 0 <= row < height and 0 <= col < width:
            grid[row][col] = mark
        legend[mark] = prn

    lines = ["".join(row).rstrip() for row in grid]
    lines.append(
        "legend: "
        + ", ".join(f"{mark}=G{prn:02d}" for mark, prn in legend.items())
    )
    return "\n".join(lines)


def skyplot_for_epoch(epoch, radius: int = 11) -> str:
    """Sky plot of an :class:`~repro.observations.ObservationEpoch`."""
    return render_skyplot(
        ((obs.prn, obs.elevation, obs.azimuth) for obs in epoch.observations),
        radius=radius,
    )
