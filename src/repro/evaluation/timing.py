"""Execution-time measurement for positioning solvers.

The paper measures wall-clock execution time per positioning request
(Section 5.3).  :func:`time_solver` measures exactly that — the
``solve`` call, nothing else — over a batch of epochs, with warm-up
rounds and best-of-``repeats`` aggregation to suppress interpreter and
scheduler noise.  :func:`time_solver_stats` returns the full
distribution over passes (mean/p50/p95) for benchmark records, and
:func:`time_callable` times arbitrary bulk operations (batched solves,
parallel replays) on the same per-item nanosecond scale so scalar and
batched paths land in one comparable table.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.base import PositioningAlgorithm
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch


@dataclass(frozen=True)
class TimingStats:
    """Per-item timing distribution over repeated timed passes.

    All times are nanoseconds per item (epoch/fix).  Percentiles are
    taken over the per-pass means — with the usual 3-10 repeats they
    are coarse but catch the asymmetry that a lone mean hides (GC
    pauses and scheduler preemption only ever slow a pass down).

    Attributes
    ----------
    best_ns:
        Fastest pass's mean — the cost of the computation itself.
    mean_ns, p50_ns, p95_ns:
        Mean, median, and 95th percentile over passes.
    repeats:
        Timed passes the record aggregates.
    items:
        Items (epochs) per pass.
    """

    best_ns: float
    mean_ns: float
    p50_ns: float
    p95_ns: float
    repeats: int
    items: int

    @property
    def items_per_second(self) -> float:
        """Best-pass throughput in items (fixes) per second."""
        return 1e9 / self.best_ns

    @classmethod
    def from_samples(
        cls, per_item_ns: Sequence[float], items: int
    ) -> "TimingStats":
        """Aggregate already-measured per-item pass times.

        For harnesses that interleave several measured operations in
        one loop (so slow drift — thermal throttling, allocator state —
        lands on every arm equally) and therefore cannot hand
        :func:`time_callable` a single operation.
        """
        if items < 1:
            raise ConfigurationError("items must be at least 1")
        if not per_item_ns:
            raise ConfigurationError("from_samples needs at least one pass")
        ordered = sorted(per_item_ns)
        return cls(
            best_ns=ordered[0],
            mean_ns=sum(per_item_ns) / len(per_item_ns),
            p50_ns=_percentile(ordered, 0.50),
            p95_ns=_percentile(ordered, 0.95),
            repeats=len(per_item_ns),
            items=items,
        )


def _percentile(sorted_values: "list[float]", fraction: float) -> float:
    """Nearest-rank percentile of an ascending list.

    Rounds half *up* explicitly: ``round()`` uses banker's rounding,
    so e.g. the p50 of two values would pick rank ``round(0.5) = 0``
    — the *minimum* — instead of the conventional upper neighbor.
    """
    last = len(sorted_values) - 1
    rank = int(math.floor(fraction * last + 0.5))
    return sorted_values[max(0, min(last, rank))]


def time_callable(
    operation: Callable[[], object],
    items: int,
    repeats: int = 3,
    warmup_rounds: int = 1,
) -> TimingStats:
    """Time a bulk operation covering ``items`` items per call.

    The generalization of :func:`time_solver` to batched/parallel
    paths: ``operation`` is invoked once per pass (it may internally
    process thousands of epochs), and the per-pass wall time is
    divided by ``items`` so results compare directly against scalar
    per-solve numbers.
    """
    if items < 1:
        raise ConfigurationError("items must be at least 1")
    if repeats < 1:
        raise ConfigurationError("repeats must be at least 1")
    for _ in range(warmup_rounds):
        operation()
    per_item: "list[float]" = []
    for _ in range(repeats):
        start = time.perf_counter_ns()
        operation()
        per_item.append((time.perf_counter_ns() - start) / items)
    return TimingStats.from_samples(per_item, items)


def time_solver_stats(
    solver: PositioningAlgorithm,
    epochs: Sequence[ObservationEpoch],
    repeats: int = 3,
    warmup_rounds: int = 1,
) -> TimingStats:
    """Per-solve timing distribution for a solver over epochs.

    Same measurement protocol as :func:`time_solver` (warm-up passes,
    then ``repeats`` timed passes over the whole batch), but keeping
    every pass instead of only the best one.
    """
    if not epochs:
        raise ConfigurationError("cannot time a solver over zero epochs")

    def run_pass() -> None:
        for epoch in epochs:
            solver.solve(epoch)

    return time_callable(
        run_pass, items=len(epochs), repeats=repeats, warmup_rounds=warmup_rounds
    )


def time_solver(
    solver: PositioningAlgorithm,
    epochs: Sequence[ObservationEpoch],
    repeats: int = 3,
    warmup_rounds: int = 1,
) -> float:
    """Mean per-solve time in **nanoseconds** for a solver over epochs.

    Runs ``warmup_rounds`` untimed passes (JIT-free Python still
    benefits: allocator, caches, branch history), then ``repeats`` timed
    passes over the whole batch, returning the *best* pass's mean —
    the standard way to estimate the cost of the computation itself
    rather than of background noise.  Use :func:`time_solver_stats`
    for the full per-pass distribution.
    """
    return time_solver_stats(
        solver, epochs, repeats=repeats, warmup_rounds=warmup_rounds
    ).best_ns
