"""Execution-time measurement for positioning solvers.

The paper measures wall-clock execution time per positioning request
(Section 5.3).  :func:`time_solver` measures exactly that — the
``solve`` call, nothing else — over a batch of epochs, with warm-up
rounds and best-of-``repeats`` aggregation to suppress interpreter and
scheduler noise.
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.core.base import PositioningAlgorithm
from repro.errors import ConfigurationError
from repro.observations import ObservationEpoch


def time_solver(
    solver: PositioningAlgorithm,
    epochs: Sequence[ObservationEpoch],
    repeats: int = 3,
    warmup_rounds: int = 1,
) -> float:
    """Mean per-solve time in **nanoseconds** for a solver over epochs.

    Runs ``warmup_rounds`` untimed passes (JIT-free Python still
    benefits: allocator, caches, branch history), then ``repeats`` timed
    passes over the whole batch, returning the *best* pass's mean —
    the standard way to estimate the cost of the computation itself
    rather than of background noise.
    """
    if not epochs:
        raise ConfigurationError("cannot time a solver over zero epochs")
    if repeats < 1:
        raise ConfigurationError("repeats must be at least 1")

    for _ in range(warmup_rounds):
        for epoch in epochs:
            solver.solve(epoch)

    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter_ns()
        for epoch in epochs:
            solver.solve(epoch)
        elapsed = time.perf_counter_ns() - start
        best = min(best, elapsed / len(epochs))
    return best
