"""Evaluation harness: metrics, timing, and the paper's experiments.

Everything Section 5 needs: the metric definitions (eq. 5-1..5-3), a
micro-timing utility, per-station experiment runners that sweep the
satellite count like Figures 5.1/5.2, and plain-text report formatting.
"""

from repro.evaluation.metrics import (
    absolute_error,
    accuracy_rate,
    execution_time_rate,
)
from repro.evaluation.timing import (
    TimingStats,
    time_callable,
    time_solver,
    time_solver_stats,
)
from repro.evaluation.experiments import (
    ExperimentConfig,
    StationPipeline,
    StationResult,
    ReplayClockBiasPredictor,
    run_station_experiment,
)
from repro.evaluation.reporting import (
    format_table_5_1,
    format_rate_table,
    format_ascii_series,
    format_station_report,
)
from repro.evaluation.statistics import ErrorStatistics, enu_error
from repro.evaluation.skyplot import render_skyplot, skyplot_for_epoch
from repro.evaluation.report_builder import build_markdown_report, write_markdown_report

__all__ = [
    "absolute_error",
    "accuracy_rate",
    "execution_time_rate",
    "TimingStats",
    "time_callable",
    "time_solver",
    "time_solver_stats",
    "ExperimentConfig",
    "StationPipeline",
    "StationResult",
    "ReplayClockBiasPredictor",
    "run_station_experiment",
    "format_table_5_1",
    "format_rate_table",
    "format_ascii_series",
    "format_station_report",
    "ErrorStatistics",
    "enu_error",
    "render_skyplot",
    "skyplot_for_epoch",
    "build_markdown_report",
    "write_markdown_report",
]
