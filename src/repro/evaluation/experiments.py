"""The paper's experiments: per-station sweeps over satellite count.

For each station data set (Table 5.1) and each satellite count
``m = 4..10``, run NR, DLO, and DLG over the same sampled epochs and
collect

* the absolute position error (feeding Fig. 5.2's accuracy rates),
  aggregated with the *median* over epochs — robust against the rare
  near-degenerate PRN-order subset whose error measures geometry
  rather than algorithm (see ``ExperimentConfig.max_gdop``), and
* the per-solve execution time (feeding Fig. 5.1's time rates).

Methodology notes (mirroring Section 5.2.2):

* The clock-bias predictor is bootstrapped from NR during a warm-up
  window and refreshed by an NR solve every ``recalibration_interval``
  epochs — the paper's "use the clock bias calculated by the NR method
  [...] when external providers are not available".  Prediction stays
  *causal*: every epoch is predicted with only past information, then
  frozen in a :class:`ReplayClockBiasPredictor` so the timed solver
  runs replay identical predictions at lookup cost.
* The m-satellite subsets are drawn in PRN order, which is how
  observations are laid out in RINEX records — a geometry-neutral
  choice, matching the paper's use of "the first m satellites" of each
  data item rather than a geometry-optimized selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.clocks.prediction import ClockBiasPredictor, LinearClockBiasPredictor
from repro.solvers.bancroft import BancroftSolver
from repro.solvers.direct_linear import DLGSolver, DLOSolver
from repro.core.dop import compute_dop
from repro.solvers.newton_raphson import NewtonRaphsonSolver
from repro.core.selection import BaseSatelliteSelector
from repro.errors import ConfigurationError, ConvergenceError, EstimationError, GeometryError
from repro.evaluation.timing import time_solver
from repro.observations import ObservationEpoch
from repro.stations.catalog import Station
from repro.stations.dataset import DatasetConfig, ObservationDataset
from repro.timebase import GpsTime


class ReplayClockBiasPredictor(ClockBiasPredictor):
    """Replays biases that were predicted causally during collection.

    Keyed by epoch time; raises if asked about an epoch it never saw,
    which catches harness bugs instead of silently extrapolating.
    """

    def __init__(self) -> None:
        self._by_time: Dict[float, float] = {}

    def record(self, time: GpsTime, bias_meters: float) -> None:
        """Store the causal prediction for an epoch."""
        self._by_time[time.to_gps_seconds()] = float(bias_meters)

    def observe(self, time: GpsTime, bias_meters: float) -> None:
        pass  # replay is read-only

    def predict_bias_meters(self, time: GpsTime) -> float:
        key = time.to_gps_seconds()
        try:
            return self._by_time[key]
        except KeyError:
            raise EstimationError(
                f"no recorded clock bias for epoch at {time}"
            ) from None

    @property
    def is_ready(self) -> bool:
        return bool(self._by_time)

    def __len__(self) -> int:
        return len(self._by_time)

    def has(self, time: GpsTime) -> bool:
        """Whether a bias was recorded for this epoch."""
        return time.to_gps_seconds() in self._by_time


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of a per-station experiment run.

    The defaults trade the paper's full 86 400-epoch day for a sampled
    hour — enough epochs for stable means while keeping a full
    four-station reproduction in the minutes range.  ``dataset``
    overrides (e.g. ``duration_seconds``) flow through untouched.
    """

    satellite_counts: Tuple[int, ...] = (4, 5, 6, 7, 8, 9, 10)
    warmup_epochs: int = 120
    recalibration_interval: int = 60
    evaluation_stride: int = 20
    max_evaluation_epochs: int = 200
    timing_repeats: int = 3
    timing_epochs: int = 40
    #: Subsets whose GDOP exceeds this are excluded from the accuracy
    #: statistics, as real receivers exclude unusable geometry.  Small
    #: PRN-order subsets occasionally land on near-coplanar satellites
    #: whose NR solution error is kilometers — those epochs measure
    #: geometry, not algorithms.
    max_gdop: float = 20.0
    #: Also run the Bancroft closed-form baseline (paper ref [2]) as a
    #: fourth series in the sweep.
    include_bancroft: bool = False
    dataset: DatasetConfig = field(
        default_factory=lambda: DatasetConfig(duration_seconds=4200.0)
    )

    @classmethod
    def paper_full(cls) -> "ExperimentConfig":
        """The paper's full-scale configuration: the complete 24-hour,
        86 400-item data set per station, evaluating one epoch per
        minute (1 440 evaluation epochs per station).

        Expect minutes of runtime per station; the default config is
        the CI-scale version of the same sweep.
        """
        return cls(
            evaluation_stride=60,
            max_evaluation_epochs=1440,
            dataset=DatasetConfig(),  # full day at 1 Hz
        )

    def __post_init__(self) -> None:
        if not self.satellite_counts:
            raise ConfigurationError("satellite_counts must not be empty")
        if min(self.satellite_counts) < 4:
            raise ConfigurationError(
                "all algorithms need at least 4 satellites (P4P model)"
            )
        if self.warmup_epochs < 2:
            raise ConfigurationError("warmup_epochs must be at least 2")
        if self.evaluation_stride < 1:
            raise ConfigurationError("evaluation_stride must be >= 1")


@dataclass
class StationResult:
    """All Fig. 5.1/5.2 numbers for one station.

    ``error_m[alg][m]`` and ``time_ns[alg][m]`` hold the raw
    aggregates; ``accuracy_rate_pct``/``time_rate_pct`` hold the
    NR-normalized percentages the figures plot.
    """

    station: Station
    satellite_counts: Tuple[int, ...]
    epochs_used: Dict[int, int]
    error_m: Dict[str, Dict[int, float]]
    time_ns: Dict[str, Dict[int, float]]

    @property
    def accuracy_rate_pct(self) -> Dict[str, Dict[int, float]]:
        """``eta`` per algorithm and satellite count (eq. 5-2)."""
        return self._rates(self.error_m)

    @property
    def time_rate_pct(self) -> Dict[str, Dict[int, float]]:
        """``theta`` per algorithm and satellite count (eq. 5-3)."""
        return self._rates(self.time_ns)

    def _rates(self, table: Dict[str, Dict[int, float]]) -> Dict[str, Dict[int, float]]:
        rates: Dict[str, Dict[int, float]] = {}
        baseline = table["NR"]
        for algorithm, series in table.items():
            if algorithm == "NR":
                continue
            rates[algorithm] = {
                m: 100.0 * value / baseline[m]
                for m, value in series.items()
                if m in baseline and baseline[m] > 0
            }
        return rates


class StationPipeline:
    """Builds the causal evaluation stream for one station.

    Streams the data set once: warm-up epochs train the clock
    predictor via NR; thereafter every ``recalibration_interval``-th
    epoch feeds an NR bias to the predictor, and every
    ``evaluation_stride``-th epoch is collected together with its
    causally predicted clock bias.
    """

    def __init__(self, station: Station, config: Optional[ExperimentConfig] = None) -> None:
        self.station = station
        self.config = config if config is not None else ExperimentConfig()
        self.dataset = ObservationDataset(station, self.config.dataset)
        mode = "steering" if station.uses_steering_clock else "threshold"
        self._predictor = LinearClockBiasPredictor(
            mode=mode, warmup_samples=self.config.warmup_epochs
        )
        self._nr = NewtonRaphsonSolver()

    def collect(self) -> Tuple[List[ObservationEpoch], ReplayClockBiasPredictor]:
        """Stream the data set; return evaluation epochs + frozen biases."""
        config = self.config
        replay = ReplayClockBiasPredictor()
        collected: List[ObservationEpoch] = []

        total = self.dataset.epoch_count
        for index in range(total):
            is_warmup = not self._predictor.is_ready
            is_recalibration = (
                config.recalibration_interval
                and index % config.recalibration_interval == 0
            )
            is_sample = (
                index >= config.warmup_epochs
                and (index - config.warmup_epochs) % config.evaluation_stride == 0
            )
            if not (is_warmup or is_recalibration or is_sample):
                continue

            epoch = self.dataset.epoch_at(index)
            if is_warmup or is_recalibration:
                try:
                    fix = self._nr.solve(epoch)
                except (ConvergenceError, GeometryError):
                    continue
                if fix.clock_bias_meters is not None:
                    self._predictor.observe(epoch.time, fix.clock_bias_meters)

            if is_sample and self._predictor.is_ready:
                replay.record(
                    epoch.time, self._predictor.predict_bias_meters(epoch.time)
                )
                collected.append(epoch)
                if len(collected) >= config.max_evaluation_epochs:
                    break

        if not collected:
            raise ConfigurationError(
                "no evaluation epochs collected; the dataset span is shorter "
                "than warmup_epochs"
            )
        return collected, replay


def prn_order_subset(epoch: ObservationEpoch, count: int) -> ObservationEpoch:
    """Take the first ``count`` satellites in PRN order (RINEX layout)."""
    order = sorted(
        range(epoch.satellite_count), key=lambda i: epoch.observations[i].prn
    )
    return epoch.subset(count, order)


def run_station_experiment(
    station: Station,
    config: Optional[ExperimentConfig] = None,
    base_selector: Optional[BaseSatelliteSelector] = None,
) -> StationResult:
    """Run the full Fig. 5.1 + Fig. 5.2 sweep for one station."""
    config = config if config is not None else ExperimentConfig()
    pipeline = StationPipeline(station, config)
    epochs, replay = pipeline.collect()

    solvers: Dict[str, object] = {
        "NR": NewtonRaphsonSolver(),
        "DLO": DLOSolver(replay, base_selector),
        "DLG": DLGSolver(replay, base_selector),
    }
    if config.include_bancroft:
        solvers["Bancroft"] = BancroftSolver()

    median_error: Dict[str, Dict[int, float]] = {name: {} for name in solvers}
    mean_time: Dict[str, Dict[int, float]] = {name: {} for name in solvers}
    epochs_used: Dict[int, int] = {}

    for m in config.satellite_counts:
        subsets = []
        for epoch in epochs:
            if epoch.satellite_count < m:
                continue
            subset = prn_order_subset(epoch, m)
            try:
                dop = compute_dop(
                    subset.satellite_positions(), subset.truth.receiver_position
                )
            except GeometryError:
                continue
            if dop.gdop <= config.max_gdop:
                subsets.append(subset)
        epochs_used[m] = len(subsets)
        if not subsets:
            continue

        # Accuracy: every subset once per solver.
        for name, solver in solvers.items():
            errors = []
            for subset in subsets:
                try:
                    fix = solver.solve(subset)
                except (ConvergenceError, GeometryError):
                    continue
                errors.append(fix.distance_to(subset.truth.receiver_position))
            if errors:
                median_error[name][m] = float(np.median(errors))

        # Timing: a fixed-size batch per solver, best-of-N repeats.
        timing_batch = subsets[: config.timing_epochs]
        for name, solver in solvers.items():
            mean_time[name][m] = time_solver(
                solver, timing_batch, repeats=config.timing_repeats
            )

    return StationResult(
        station=station,
        satellite_counts=config.satellite_counts,
        epochs_used=epochs_used,
        error_m=median_error,
        time_ns=mean_time,
    )
