"""Markdown experiment reports.

Turns a set of :class:`StationResult` sweeps into a self-contained
markdown document — the shape of this repository's own
``EXPERIMENTS.md``, regenerated from fresh measurements.  Useful for
tracking reproduction results across machines or library changes:

    repro-gps experiment all --output results.md
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.evaluation.experiments import StationResult
from repro.evaluation.reporting import format_ascii_series


def build_markdown_report(
    results: Dict[str, StationResult],
    title: str = "GPS algorithm reproduction results",
    notes: Optional[str] = None,
) -> str:
    """Render station sweeps as a markdown document."""
    if not results:
        raise ConfigurationError("no results to report")

    lines: List[str] = [f"# {title}", ""]
    if notes:
        lines.extend([notes, ""])

    first = next(iter(results.values()))
    counts = first.satellite_counts

    # ------------------------------------------------------------------
    lines.append("## Execution time rate θ = τ_O/τ_NR × 100 % (Fig 5.1)")
    lines.append("")
    for site_id, result in results.items():
        lines.append(
            f"### {site_id} ({result.station.clock_correction} clock)"
        )
        lines.append("")
        lines.extend(_rate_table(result.time_rate_pct, counts))
        lines.append("")

    # ------------------------------------------------------------------
    lines.append("## Accuracy rate η = d_O/d_NR × 100 % (Fig 5.2)")
    lines.append("")
    for site_id, result in results.items():
        lines.append(
            f"### {site_id} ({result.station.clock_correction} clock)"
        )
        lines.append("")
        lines.extend(_rate_table(result.accuracy_rate_pct, counts))
        lines.append("")

    # ------------------------------------------------------------------
    lines.append("## Raw aggregates")
    lines.append("")
    for site_id, result in results.items():
        lines.append(f"### {site_id}")
        lines.append("")
        lines.append("Median position error (m):")
        lines.append("")
        lines.extend(_value_table(result.error_m, counts, "{:.2f}"))
        lines.append("")
        lines.append("Mean solve time (µs):")
        lines.append("")
        lines.extend(
            _value_table(
                {
                    algorithm: {m: v / 1000.0 for m, v in series.items()}
                    for algorithm, series in result.time_ns.items()
                },
                counts,
                "{:.1f}",
            )
        )
        lines.append("")
        lines.append(
            "Epochs used: "
            + ", ".join(f"m={m}: {result.epochs_used.get(m, 0)}" for m in counts)
        )
        lines.append("")

    # ------------------------------------------------------------------
    aggregate_eta = _aggregate(results, "accuracy_rate_pct", counts)
    aggregate_theta = _aggregate(results, "time_rate_pct", counts)
    lines.append("## Shape charts (mean over stations)")
    lines.append("")
    lines.append("```")
    lines.append(
        format_ascii_series("theta vs satellite count", aggregate_theta, counts)
    )
    lines.append("```")
    lines.append("")
    lines.append("```")
    lines.append(
        format_ascii_series("eta vs satellite count", aggregate_eta, counts)
    )
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def write_markdown_report(
    path: Union[str, Path],
    results: Dict[str, StationResult],
    title: str = "GPS algorithm reproduction results",
    notes: Optional[str] = None,
) -> Path:
    """Build and write the report; returns the path."""
    path = Path(path)
    path.write_text(build_markdown_report(results, title=title, notes=notes))
    return path


# ----------------------------------------------------------------------
def _rate_table(rates, counts) -> List[str]:
    header = "| algorithm | " + " | ".join(f"m={m}" for m in counts) + " |"
    rule = "|---" * (len(counts) + 1) + "|"
    rows = [header, rule]
    for algorithm in sorted(rates):
        cells = [
            f"{rates[algorithm][m]:.1f} %" if m in rates[algorithm] else "—"
            for m in counts
        ]
        rows.append(f"| {algorithm} | " + " | ".join(cells) + " |")
    return rows


def _value_table(values, counts, fmt: str) -> List[str]:
    header = "| algorithm | " + " | ".join(f"m={m}" for m in counts) + " |"
    rule = "|---" * (len(counts) + 1) + "|"
    rows = [header, rule]
    for algorithm in sorted(values):
        cells = [
            fmt.format(values[algorithm][m]) if m in values[algorithm] else "—"
            for m in counts
        ]
        rows.append(f"| {algorithm} | " + " | ".join(cells) + " |")
    return rows


def _aggregate(results, attribute: str, counts):
    aggregate: Dict[str, Dict[int, float]] = {}
    for result in results.values():
        for algorithm, series in getattr(result, attribute).items():
            bucket = aggregate.setdefault(algorithm, {})
            for m, value in series.items():
                bucket.setdefault(m, []).append(value)
    return {
        algorithm: {
            m: sum(values) / len(values) for m, values in series.items()
        }
        for algorithm, series in aggregate.items()
    }
