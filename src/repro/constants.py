"""Physical and geodetic constants shared across the library.

All values follow the WGS-84 / IS-GPS-200 conventions used by the GPS
control segment, so satellite positions computed from broadcast-style
ephemerides here are directly comparable to receiver-side computations.

Units are SI (meters, seconds, radians) unless the name says otherwise.
"""

from __future__ import annotations

import math

#: Speed of light in vacuum (m/s), the exact SI definition.  This is the
#: ``c`` of the paper's eq. (3-9); pseudoranges convert travel time to
#: meters with this constant.
SPEED_OF_LIGHT = 299_792_458.0

#: WGS-84 earth gravitational parameter GM (m^3/s^2), per IS-GPS-200.
EARTH_GM = 3.986005e14

#: WGS-84 earth rotation rate (rad/s), per IS-GPS-200.  Used by the
#: broadcast-ephemeris propagation and the Sagnac correction.
EARTH_ROTATION_RATE = 7.2921151467e-5

#: WGS-84 ellipsoid semi-major axis (m).
WGS84_SEMI_MAJOR_AXIS = 6_378_137.0

#: WGS-84 ellipsoid flattening (dimensionless).
WGS84_FLATTENING = 1.0 / 298.257223563

#: WGS-84 ellipsoid semi-minor axis (m), derived from a and f.
WGS84_SEMI_MINOR_AXIS = WGS84_SEMI_MAJOR_AXIS * (1.0 - WGS84_FLATTENING)

#: WGS-84 first eccentricity squared, derived from the flattening.
WGS84_ECCENTRICITY_SQ = WGS84_FLATTENING * (2.0 - WGS84_FLATTENING)

#: Nominal GPS orbit semi-major axis (m): ~20 200 km altitude above the
#: earth surface, i.e. a 12-sidereal-hour orbit.
GPS_ORBIT_SEMI_MAJOR_AXIS = 26_559_800.0

#: Inclination of the nominal GPS orbital planes (rad): 55 degrees.
GPS_ORBIT_INCLINATION = math.radians(55.0)

#: Number of orbital planes in the nominal GPS constellation.
GPS_ORBIT_PLANE_COUNT = 6

#: Number of active GPS satellites in March 2008, quoted by the paper
#: (footnote 2).  Our simulated almanac fields this many space vehicles.
GPS_ACTIVE_SATELLITE_COUNT = 31

#: Seconds in a GPS week.
SECONDS_PER_WEEK = 604_800

#: Seconds in a day.
SECONDS_PER_DAY = 86_400

#: GPS L1 carrier frequency (Hz).  Table 5.1 measurements are L1-based.
L1_FREQUENCY = 1_575.42e6

#: GPS L1 carrier wavelength (m).
L1_WAVELENGTH = SPEED_OF_LIGHT / L1_FREQUENCY

#: GPS L2 carrier frequency (Hz).
L2_FREQUENCY = 1_227.60e6

#: GPS L2 carrier wavelength (m).
L2_WAVELENGTH = SPEED_OF_LIGHT / L2_FREQUENCY

#: Ionospheric scale factor between the bands: the L2 group delay is
#: ``(f1/f2)^2`` times the L1 delay (dispersive medium).
IONO_L2_SCALE = (L1_FREQUENCY / L2_FREQUENCY) ** 2

#: GPS epoch (1980-01-06T00:00:00 UTC) expressed as a Unix timestamp.
GPS_EPOCH_UNIX = 315_964_800

#: Default elevation mask for visibility (rad): satellites below this
#: elevation are considered obstructed and excluded, as real receivers do.
DEFAULT_ELEVATION_MASK = math.radians(10.0)
