"""The columnar epoch store: struct-of-arrays blocks for the hot path.

Every tier of the stack used to re-pack Python
:class:`~repro.observations.ObservationEpoch` objects into numpy
arrays at its own boundary — the service before dispatch, the engine
for integrity screening, the batch solvers for stacking, the FDE gate
for exclusion.  Profiling showed that for batched DLG well over 80% of
the per-fix time was exactly this boundary cost, not solver math.

:class:`EpochBlock` is the one representation that crosses all of
those boundaries: N same-satellite-count epochs as read-only dense
arrays (positions ``(N, m, 3)``, pseudoranges ``(N, m)``, PRNs
``(N, m)``, epoch times, truth), packed **once** — at decode, or on
first contact with the batch path — and flowing zero-copy from there:

* :func:`pack_stream` buckets a mixed-count stream into blocks while
  remembering stream provenance (:class:`PackedStream`);
* :meth:`EpochBlock.validity_mask` answers the structural-integrity
  question (:func:`~repro.observations.epoch_integrity_error`) as a
  handful of vectorized reductions instead of a per-epoch Python walk;
* the batch solvers (:mod:`repro.solvers.batch`) and the FDE gate
  (:mod:`repro.integrity.fde`) consume the block's arrays directly.

Blocks carry exactly the solver contract: satellite positions,
pseudoranges, PRNs, epoch times, and optional truth.  Auxiliary
per-satellite fields (elevation, carrier phase, Doppler) stay on the
source :class:`~repro.observations.ObservationEpoch` objects, which
remain the rich data model for everything off the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constellation.systems import constellation_signature, system_code
from repro.errors import ConfigurationError, GeometryError
from repro.observations import (
    EpochTruth,
    ObservationEpoch,
    SatelliteObservation,
)
from repro.telemetry import get_registry
from repro.timebase import GpsTime

#: Block-size histogram buckets (epochs per packed block).
_BLOCK_SIZE_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000)


def _read_only(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (the caller's copy stays writable)."""
    view = array.view()
    view.flags.writeable = False
    return view


@dataclass(frozen=True)
class EpochBlock:
    """N same-satellite-count epochs as dense, read-only arrays.

    Attributes
    ----------
    positions:
        ``(N, m, 3)`` satellite ECEF positions (float64).
    pseudoranges:
        ``(N, m)`` measured pseudoranges (float64).
    prns:
        ``(N, m)`` satellite PRNs (int64), aligned with the satellite
        axis of ``positions``/``pseudoranges``.
    weeks, seconds_of_week:
        ``(N,)`` per-epoch GPS times in (week, seconds-of-week) form —
        columnar so a block never holds per-epoch Python objects.
    truth_positions, truth_biases:
        ``(N, 3)`` / ``(N,)`` simulation ground truth; all-NaN rows
        mark epochs without truth (an :class:`~repro.observations.
        EpochTruth` position is validated finite, so NaN is
        unambiguous).
    systems:
        ``(N, m)`` compact GNSS system ids (int8, the indices of
        :data:`repro.constellation.systems.SYSTEM_CODES`), aligned with
        the satellite axis.  ``None`` defaults to all-GPS (zeros), so
        every pre-existing single-constellation producer keeps working
        unchanged.
    cn0:
        Optional ``(N, m)`` C/N0 lane (dB-Hz, float64), NaN-padded
        where a channel reported no carrier-to-noise ratio.  ``None``
        (the default) means the stream carries no signal features at
        all — the solvers never read this lane, only the
        signal-plausibility monitors do, so blocks built from plain
        pseudorange streams pay nothing for it.

    All arrays are read-only: a block is a value, shared freely across
    tiers without defensive copies.
    """

    positions: np.ndarray
    pseudoranges: np.ndarray
    prns: np.ndarray
    weeks: np.ndarray
    seconds_of_week: np.ndarray
    truth_positions: np.ndarray
    truth_biases: np.ndarray
    systems: Optional[np.ndarray] = None
    cn0: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions, dtype=float)
        if positions.ndim != 3 or positions.shape[2] != 3:
            raise ConfigurationError(
                f"positions must have shape (N, m, 3), got {positions.shape}"
            )
        n, m = positions.shape[:2]
        pseudoranges = np.asarray(self.pseudoranges, dtype=float)
        prns = np.asarray(self.prns, dtype=np.int64)
        weeks = np.asarray(self.weeks, dtype=np.int64)
        sow = np.asarray(self.seconds_of_week, dtype=float)
        truth_positions = np.asarray(self.truth_positions, dtype=float)
        truth_biases = np.asarray(self.truth_biases, dtype=float)
        if pseudoranges.shape != (n, m):
            raise ConfigurationError(
                f"pseudoranges shape {pseudoranges.shape} does not match "
                f"positions ({n}, {m})"
            )
        if prns.shape != (n, m):
            raise ConfigurationError(
                f"prns shape {prns.shape} does not match positions ({n}, {m})"
            )
        if weeks.shape != (n,) or sow.shape != (n,):
            raise ConfigurationError(
                f"weeks/seconds_of_week must have shape ({n},), got "
                f"{weeks.shape}/{sow.shape}"
            )
        if truth_positions.shape != (n, 3) or truth_biases.shape != (n,):
            raise ConfigurationError(
                f"truth arrays must have shapes ({n}, 3)/({n},), got "
                f"{truth_positions.shape}/{truth_biases.shape}"
            )
        if self.systems is None:
            systems = np.zeros((n, m), dtype=np.int8)
        else:
            systems = np.asarray(self.systems, dtype=np.int8)
            if systems.shape != (n, m):
                raise ConfigurationError(
                    f"systems shape {systems.shape} does not match positions "
                    f"({n}, {m})"
                )
            if systems.size and (systems.min() < 0 or systems.max() > 3):
                raise ConfigurationError(
                    "system ids must be in [0, 3] (G/R/E/C)"
                )
        cn0 = self.cn0
        if cn0 is not None:
            cn0 = np.asarray(cn0, dtype=float)
            if cn0.shape != (n, m):
                raise ConfigurationError(
                    f"cn0 shape {cn0.shape} does not match positions ({n}, {m})"
                )
        object.__setattr__(self, "positions", _read_only(positions))
        object.__setattr__(self, "pseudoranges", _read_only(pseudoranges))
        object.__setattr__(self, "prns", _read_only(prns))
        object.__setattr__(self, "weeks", _read_only(weeks))
        object.__setattr__(self, "seconds_of_week", _read_only(sow))
        object.__setattr__(self, "truth_positions", _read_only(truth_positions))
        object.__setattr__(self, "truth_biases", _read_only(truth_biases))
        object.__setattr__(self, "systems", _read_only(systems))
        object.__setattr__(
            self, "cn0", None if cn0 is None else _read_only(cn0)
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.positions.shape[0])

    @property
    def satellite_count(self) -> int:
        """The shared satellite count ``m`` of every epoch in the block."""
        return int(self.positions.shape[1])

    def time(self, index: int) -> GpsTime:
        """The :class:`~repro.timebase.GpsTime` of epoch ``index``."""
        return GpsTime(
            week=int(self.weeks[index]),
            seconds_of_week=float(self.seconds_of_week[index]),
        )

    def has_truth(self) -> np.ndarray:
        """``(N,)`` mask of epochs carrying simulation ground truth."""
        return np.isfinite(self.truth_positions).all(axis=1)

    # ------------------------------------------------------------------
    def uniform_system_pattern(self) -> Optional[np.ndarray]:
        """The shared per-slot system-id pattern, or ``None`` if mixed.

        The multi-constellation batch kernels need every row of a block
        to put each constellation's satellites in the same slots; the
        :func:`pack_stream` buckets guarantee this by construction, and
        hand-built blocks can be checked here.
        """
        systems = self.systems
        if systems.shape[0] == 0:
            return _read_only(np.zeros(systems.shape[1], dtype=np.int8))
        pattern = systems[0]
        if systems.shape[0] > 1 and not np.array_equal(
            systems[1:], np.broadcast_to(pattern, systems[1:].shape)
        ):
            return None
        return pattern

    @property
    def signature(self) -> str:
        """Constellation-count signature (e.g. ``"G5R3"``) of a block
        with a uniform system pattern; raises on mixed patterns."""
        pattern = self.uniform_system_pattern()
        if pattern is None:
            raise GeometryError(
                "block rows carry different system patterns; no single signature"
            )
        return constellation_signature(pattern)

    # ------------------------------------------------------------------
    @classmethod
    def from_epochs(cls, epochs: Sequence[ObservationEpoch]) -> "EpochBlock":
        """Pack N same-satellite-count epochs into one block.

        Uses each epoch's memoized :meth:`~repro.observations.
        ObservationEpoch.dense` arrays, so repeated packing of the same
        epochs costs N C-level row copies, not N Python walks.  Raises
        :class:`~repro.errors.GeometryError` on mixed satellite counts
        (group with :func:`pack_stream` first).
        """
        epochs = list(epochs)
        if not epochs:
            raise GeometryError("an EpochBlock needs at least one epoch")
        m = len(epochs[0].observations)
        # The C/N0 lane is packed only when the stream actually carries
        # signal features (probed on the first epoch, like the lane's
        # producers populate it: all epochs or none).  Plain pseudorange
        # streams keep the lane at None and pay nothing.
        carries_cn0 = bool(np.isfinite(epochs[0].cn0()).any()) if m else False
        position_rows: List[np.ndarray] = []
        pseudorange_rows: List[np.ndarray] = []
        prn_rows: List[np.ndarray] = []
        system_rows: List[np.ndarray] = []
        weeks = np.empty(len(epochs), dtype=np.int64)
        sow = np.empty(len(epochs))
        truth_positions = np.full((len(epochs), 3), np.nan)
        truth_biases = np.full(len(epochs), np.nan)
        for index, epoch in enumerate(epochs):
            if len(epoch.observations) != m:
                raise GeometryError(
                    "all epochs in a batch must have the same satellite count "
                    f"(got {len(epoch.observations)} and {m}); group epochs by "
                    "count before batching"
                )
            positions, pseudoranges, prns, system_ids = epoch.dense()
            position_rows.append(positions)
            pseudorange_rows.append(pseudoranges)
            prn_rows.append(prns)
            system_rows.append(system_ids)
            time = epoch.time
            weeks[index] = time.week
            sow[index] = time.seconds_of_week
            truth = epoch.truth
            if truth is not None:
                truth_positions[index] = truth.receiver_position
                truth_biases[index] = truth.clock_bias_meters
        return cls(
            positions=(
                np.stack(position_rows)
                if m
                else np.empty((len(epochs), 0, 3))
            ),
            pseudoranges=(
                np.stack(pseudorange_rows) if m else np.empty((len(epochs), 0))
            ),
            prns=(
                np.stack(prn_rows)
                if m
                else np.empty((len(epochs), 0), dtype=np.int64)
            ),
            weeks=weeks,
            seconds_of_week=sow,
            truth_positions=truth_positions,
            truth_biases=truth_biases,
            systems=(
                np.stack(system_rows)
                if m
                else np.empty((len(epochs), 0), dtype=np.int8)
            ),
            cn0=(
                np.stack([epoch.cn0() for epoch in epochs])
                if carries_cn0
                else None
            ),
        )

    def to_epochs(self) -> List[ObservationEpoch]:
        """Materialize validated :class:`ObservationEpoch` objects.

        The inverse of :meth:`from_epochs` for the solver contract:
        positions, pseudoranges, PRNs, times and truth round-trip
        bit-exactly.  Goes through the validating constructors, so a
        block holding structurally invalid rows (duplicate PRNs,
        non-finite measurements — see :meth:`validity_mask`) raises.
        """
        epochs: List[ObservationEpoch] = []
        has_truth = self.has_truth()
        cn0 = self.cn0
        for i in range(len(self)):
            observations = tuple(
                SatelliteObservation(
                    prn=int(self.prns[i, j]),
                    position=self.positions[i, j].copy(),
                    pseudorange=float(self.pseudoranges[i, j]),
                    system=system_code(int(self.systems[i, j])),
                    cn0_dbhz=(
                        float(cn0[i, j])
                        if cn0 is not None and np.isfinite(cn0[i, j])
                        else None
                    ),
                )
                for j in range(self.satellite_count)
            )
            truth = None
            if has_truth[i]:
                truth = EpochTruth(
                    receiver_position=self.truth_positions[i].copy(),
                    clock_bias_meters=float(self.truth_biases[i]),
                )
            epochs.append(
                ObservationEpoch(
                    time=self.time(i), observations=observations, truth=truth
                )
            )
        return epochs

    def take(self, rows: np.ndarray) -> "EpochBlock":
        """A new block keeping only the given row indices (or mask)."""
        return EpochBlock(
            positions=self.positions[rows],
            pseudoranges=self.pseudoranges[rows],
            prns=self.prns[rows],
            weeks=self.weeks[rows],
            seconds_of_week=self.seconds_of_week[rows],
            truth_positions=self.truth_positions[rows],
            truth_biases=self.truth_biases[rows],
            systems=self.systems[rows],
            cn0=None if self.cn0 is None else self.cn0[rows],
        )

    # ------------------------------------------------------------------
    def validity_mask(self, min_satellites: int = 4) -> np.ndarray:
        """``(N,)`` mask of rows satisfying the solvers' input contract.

        The vectorized equivalent of running :func:`~repro.
        observations.epoch_integrity_error` on every row: satellite
        count, duplicate PRNs, non-finite positions, non-finite or
        non-positive pseudoranges — as five stacked reductions instead
        of N Python calls.
        """
        n, m = self.pseudoranges.shape
        if m < min_satellites:
            return np.zeros(n, dtype=bool)
        valid = np.isfinite(self.positions).all(axis=(1, 2))
        valid &= np.isfinite(self.pseudoranges).all(axis=1)
        valid &= (self.pseudoranges > 0).all(axis=1)
        if m > 1:
            # PRNs are unique per (system, prn); fold the 2-bit system
            # id into the key so cross-system PRN reuse stays legal.
            keys = self.prns * 4 + self.systems.astype(np.int64)
            sorted_keys = np.sort(keys, axis=1)
            valid &= (sorted_keys[:, 1:] != sorted_keys[:, :-1]).all(axis=1)
        return valid

    def row_integrity_error(
        self, index: int, min_satellites: int = 4
    ) -> Optional[str]:
        """Why row ``index`` violates the contract, or ``None``.

        Mirrors :func:`~repro.observations.epoch_integrity_error`'s
        checks and wording (first violation wins, satellites scanned in
        order) for callers holding only the block.
        """
        m = self.satellite_count
        if m < min_satellites:
            return (
                f"epoch has {m} satellites, fewer than {min_satellites} required"
            )
        prns = self.prns[index]
        systems = self.systems[index]
        identities = [
            (system_code(int(systems[j])), int(prns[j])) for j in range(m)
        ]
        if len(set(identities)) != m:
            duplicated = sorted(
                {key for key in identities if identities.count(key) > 1}
            )
            return "epoch contains duplicate PRNs " + ", ".join(
                f"{system}{prn:02d}" for system, prn in duplicated
            )
        for j in range(m):
            if not np.all(np.isfinite(self.positions[index, j])):
                return (
                    f"PRN {int(prns[j])} has a non-finite satellite position"
                )
            pseudorange = self.pseudoranges[index, j]
            if not np.isfinite(pseudorange) or pseudorange <= 0:
                return (
                    f"PRN {int(prns[j])} has a non-finite or non-positive "
                    f"pseudorange ({pseudorange})"
                )
        return None


@dataclass(frozen=True)
class PackedBucket:
    """One same-satellite-count block plus its stream provenance.

    Attributes
    ----------
    satellite_count:
        The shared ``m`` of the block.
    indices:
        ``(N,)`` positions of the block's epochs in the original
        stream, in stream order — the scatter key.
    block:
        The packed epochs.
    """

    satellite_count: int
    indices: np.ndarray
    block: EpochBlock

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.intp)
        if indices.shape != (len(self.block),):
            raise ConfigurationError(
                f"indices shape {indices.shape} does not match block of "
                f"{len(self.block)} epochs"
            )
        object.__setattr__(self, "indices", _read_only(indices))

    def __len__(self) -> int:
        return len(self.block)

    @property
    def signature(self) -> str:
        """Constellation-count signature shared by the bucket's rows."""
        return self.block.signature

    @property
    def key(self):
        """The bucket's dict key in engine results.

        Pure-GPS buckets keep the historical ``int`` satellite-count
        key, so existing consumers of ``bucket_sizes``/``bucket_status``
        see no change; mixed-constellation buckets get a string key of
        the form ``"8:G5R3"`` (count plus constellation signature).
        """
        pattern = self.block.uniform_system_pattern()
        if pattern is None or not pattern.any():
            return int(self.satellite_count)
        return f"{self.satellite_count}:{constellation_signature(pattern)}"

    def take(self, rows: np.ndarray) -> "PackedBucket":
        """Keep only the given rows (indices stay aligned)."""
        return PackedBucket(
            satellite_count=self.satellite_count,
            indices=np.asarray(self.indices)[rows],
            block=self.block.take(rows),
        )


@dataclass(frozen=True)
class PackedStream:
    """A mixed-count stream in columnar form, provenance preserved.

    Attributes
    ----------
    length:
        Length of the original stream; bucket indices and
        ``unpackable`` partition ``0..length-1``.
    buckets:
        One :class:`PackedBucket` per satellite count, sorted by count
        (deterministic dispatch order).
    unpackable:
        Stream indices of epochs that could not be packed at all
        (structurally ragged observations — wrong-shaped positions,
        non-numeric fields).  They are invalid by definition; packable
        rows that merely violate the value contract (NaN, duplicate
        PRNs) land in blocks and are found by
        :meth:`EpochBlock.validity_mask`.
    """

    length: int
    buckets: Tuple[PackedBucket, ...]
    unpackable: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return self.length

    @classmethod
    def from_block(cls, block: EpochBlock) -> "PackedStream":
        """Wrap one pre-built block as a whole stream.

        A block whose rows all share one system pattern (every legacy
        all-GPS block does) becomes a single bucket.  Mixed-pattern
        blocks are split into one bucket per pattern, because the
        multi-constellation kernels need per-slot system membership to
        be uniform within a bucket.
        """
        if block.uniform_system_pattern() is not None:
            return cls(
                length=len(block),
                buckets=(
                    PackedBucket(
                        satellite_count=block.satellite_count,
                        indices=np.arange(len(block), dtype=np.intp),
                        block=block,
                    ),
                ),
            )
        patterns: "Dict[bytes, List[int]]" = {}
        for row in range(len(block)):
            patterns.setdefault(block.systems[row].tobytes(), []).append(row)
        buckets = tuple(
            PackedBucket(
                satellite_count=block.satellite_count,
                indices=np.asarray(rows, dtype=np.intp),
                block=block.take(np.asarray(rows, dtype=np.intp)),
            )
            for rows in sorted(patterns.values(), key=lambda rows: rows[0])
        )
        return cls(length=len(block), buckets=buckets)


def pack_stream(epochs: Sequence[ObservationEpoch]) -> PackedStream:
    """Pack a mixed-count epoch stream into columnar buckets, once.

    The single object→array boundary of the whole pipeline: one pass
    groups epochs by satellite count and stacks each group's memoized
    dense arrays into an :class:`EpochBlock`.  Everything downstream —
    validity screening, batch solving, FDE, scatter — works on the
    blocks without touching the epoch objects again.

    Epochs whose observations cannot be stacked (ragged shapes,
    non-numeric fields — only possible for objects that bypassed the
    validating constructors) are reported as ``unpackable`` rather than
    failing the stream.
    """
    # Group by satellite count *and* per-slot system pattern: the batch
    # kernels need uniform constellation membership per bucket.  Pure
    # GPS streams only ever see one pattern per count, so their buckets
    # are exactly what the count-only grouping produced before.
    unpackable: List[int] = []
    dense_rows: "Dict[Tuple[int, bytes], list]" = {}
    pattern_order: "Dict[int, List[bytes]]" = {}
    for index, epoch in enumerate(epochs):
        try:
            dense = epoch.dense()
        except (TypeError, ValueError, OverflowError):
            unpackable.append(index)
            continue
        count = dense[0].shape[0]
        pattern = dense[3].tobytes()
        if pattern not in pattern_order.setdefault(count, []):
            pattern_order[count].append(pattern)
        dense_rows.setdefault((count, pattern), []).append((index, epoch, dense))
    buckets: List[PackedBucket] = []
    group_keys = [
        (count, pattern)
        for count in sorted(pattern_order)
        for pattern in pattern_order[count]
    ]
    for count, pattern in group_keys:
        rows = dense_rows[(count, pattern)]
        n = len(rows)
        # Same first-epoch probe as EpochBlock.from_epochs: the C/N0
        # lane is stacked only for groups whose stream reports signal
        # features, so pseudorange-only streams never touch it.
        carries_cn0 = (
            bool(np.isfinite(rows[0][1].cn0()).any()) if count else False
        )
        weeks = np.empty(n, dtype=np.int64)
        sow = np.empty(n)
        truth_positions = np.full((n, 3), np.nan)
        truth_biases = np.full(n, np.nan)
        for slot, (_index, epoch, _dense) in enumerate(rows):
            time = epoch.time
            weeks[slot] = time.week
            sow[slot] = time.seconds_of_week
            truth = epoch.truth
            if truth is not None:
                truth_positions[slot] = truth.receiver_position
                truth_biases[slot] = truth.clock_bias_meters
        block = EpochBlock(
            positions=(
                np.stack([dense[0] for _i, _e, dense in rows])
                if count
                else np.empty((n, 0, 3))
            ),
            pseudoranges=(
                np.stack([dense[1] for _i, _e, dense in rows])
                if count
                else np.empty((n, 0))
            ),
            prns=(
                np.stack([dense[2] for _i, _e, dense in rows])
                if count
                else np.empty((n, 0), dtype=np.int64)
            ),
            systems=(
                np.stack([dense[3] for _i, _e, dense in rows])
                if count
                else np.empty((n, 0), dtype=np.int8)
            ),
            cn0=(
                np.stack([epoch.cn0() for _i, epoch, _d in rows])
                if carries_cn0
                else None
            ),
            weeks=weeks,
            seconds_of_week=sow,
            truth_positions=truth_positions,
            truth_biases=truth_biases,
        )
        buckets.append(
            PackedBucket(
                satellite_count=count,
                indices=np.array([i for i, _e, _d in rows], dtype=np.intp),
                block=block,
            )
        )
    registry = get_registry()
    if registry.enabled and buckets:
        histogram = registry.histogram(
            "repro_blocks_block_size",
            "Epochs per packed columnar block.",
            buckets=_BLOCK_SIZE_BUCKETS,
        )
        for bucket in buckets:
            histogram.observe(len(bucket))
    return PackedStream(
        length=len(epochs) if hasattr(epochs, "__len__") else (
            sum(len(b) for b in buckets) + len(unpackable)
        ),
        buckets=tuple(buckets),
        unpackable=tuple(unpackable),
    )
