"""Command-line interface: ``repro-gps``.

Subcommands:

* ``stations`` — print the Table 5.1 station catalog.
* ``solve`` — generate a short data set for a station and solve it with
  a chosen algorithm, printing per-epoch errors.
* ``experiment`` — run the Fig. 5.1/5.2 sweep for one or all stations
  and print the rate panels.
* ``export`` — write a station data set as RINEX observation +
  navigation files.
* ``telemetry`` — run an instrumented replay and print or write its
  metrics (Prometheus text or JSON snapshot).
* ``fuzz`` — run seeded differential/metamorphic validation scenarios
  under a time or count budget, persisting failures as replayable
  artifacts (``--replay`` reruns one; ``--fde`` switches to the
  integrity chaos loop that grades the batch FDE gate against
  injected pseudorange spikes).
* ``serve`` — run the async micro-batching positioning service against
  a station's simulated stream of concurrent requests and report
  throughput, batching, and latency percentiles.

``solve`` and ``experiment`` also accept ``--metrics-out PATH`` to
record their telemetry alongside the normal output; the format follows
the extension (``.prom``/``.txt`` for Prometheus text, anything else
for the JSON snapshot).

Exit codes are uniform across subcommands: :data:`EXIT_OK` (0) when
the requested work succeeded, :data:`EXIT_FAILURE` (1) for any
solver/validation/service failure (including :class:`ReproError`
raised anywhere in a handler), and argparse's conventional 2 for
usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import List, Optional

from repro import telemetry

from repro.errors import ConfigurationError, ReproError
from repro.evaluation import (
    ExperimentConfig,
    format_station_report,
    format_table_5_1,
    run_station_experiment,
)
from repro.core import GpsReceiver
from repro.rinex import ObservationHeader, write_navigation_file, write_observation_file
from repro.signals import HatchFilter
from repro.stations import DatasetConfig, ObservationDataset, all_stations, get_station

#: The work succeeded.
EXIT_OK = 0
#: A solver, validation, or service failure (anything a ReproError
#: signals, a fuzz run with unexplained failures, a changed replay
#: verdict, a serve run with failed requests).
EXIT_FAILURE = 1
#: Bad invocation — argparse's own convention, listed for completeness.
EXIT_USAGE = 2


def exit_code(success: bool) -> int:
    """The uniform success/failure mapping every subcommand returns."""
    return EXIT_OK if success else EXIT_FAILURE


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-gps`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handler = {
        "stations": _cmd_stations,
        "solve": _cmd_solve,
        "experiment": _cmd_experiment,
        "export": _cmd_export,
        "skyplot": _cmd_skyplot,
        "telemetry": _cmd_telemetry,
        "fuzz": _cmd_fuzz,
        "serve": _cmd_serve,
        "inspect": _cmd_inspect,
    }[args.command]
    try:
        return handler(args)
    except ReproError as exc:
        print(f"repro-gps {args.command}: error: {exc}", file=sys.stderr)
        return EXIT_FAILURE


@contextmanager
def _metrics_sink(path: Optional[str], ensure: bool = False):
    """Scoped telemetry for a subcommand: no-op unless a path is given.

    With a path, installs a fresh registry/tracer for the body and
    writes the snapshot on the way out (format by extension).
    ``ensure`` installs a registry even without a sink path — the
    serve command's status port scrapes the live registry, so arming
    the port must arm collection too or ``/metrics`` serves nothing.
    """
    if not path:
        if ensure:
            with telemetry.capture():
                yield
        else:
            yield
        return
    with telemetry.capture() as (registry, tracer):
        yield
        telemetry.write_snapshot(path, registry, tracer=tracer)
    print(f"wrote telemetry snapshot to {path}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gps",
        description="GPS direct-linearization positioning (ICDCS 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stations", help="print the Table 5.1 station catalog")

    solve = sub.add_parser("solve", help="solve a simulated data set")
    solve.add_argument("station", help="site id (SRZN, YYR1, FAI1, KYCP)")
    solve.add_argument(
        "--algorithm", default="dlg", choices=["nr", "dlo", "dlg", "bancroft"]
    )
    solve.add_argument("--duration", type=float, default=300.0, help="seconds of data")
    solve.add_argument("--warmup", type=int, default=60, help="NR warm-up epochs")
    solve.add_argument(
        "--smooth",
        action="store_true",
        help="track L1 carrier and Hatch-smooth pseudoranges before solving",
    )
    solve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="record telemetry for the run (.prom/.txt or .json)",
    )

    experiment = sub.add_parser("experiment", help="run the Fig 5.1/5.2 sweep")
    experiment.add_argument(
        "station", nargs="?", default="all", help="site id or 'all'"
    )
    experiment.add_argument(
        "--duration", type=float, default=4200.0, help="data-set span in seconds"
    )
    experiment.add_argument(
        "--output", default=None, help="also write a markdown report to this path"
    )
    experiment.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="record telemetry for the sweep (.prom/.txt or .json)",
    )

    export = sub.add_parser("export", help="write a data set as RINEX files")
    export.add_argument("station", help="site id")
    export.add_argument("--duration", type=float, default=60.0)
    export.add_argument("--obs", default=None, help="observation file path")
    export.add_argument("--nav", default=None, help="navigation file path")
    export.add_argument(
        "--carrier",
        action="store_true",
        help="also write the L1 carrier phase observable",
    )

    skyplot = sub.add_parser("skyplot", help="show the sky above a station")
    skyplot.add_argument("station", help="site id")
    skyplot.add_argument(
        "--at", type=float, default=0.0, help="seconds into the data set"
    )

    tele = sub.add_parser(
        "telemetry",
        help="run an instrumented replay and export its metrics",
    )
    tele.add_argument("station", nargs="?", default="SRZN", help="site id")
    tele.add_argument(
        "--algorithm", default="dlg", choices=["nr", "dlo", "dlg"]
    )
    tele.add_argument(
        "--duration", type=float, default=120.0, help="seconds of data"
    )
    tele.add_argument(
        "--workers", type=int, default=2, help="replay worker threads"
    )
    tele.add_argument(
        "--format",
        default="prom",
        choices=["prom", "json"],
        help="stdout format when --output is not given",
    )
    tele.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the snapshot to a file instead of stdout",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="run seeded validation scenarios until a budget runs out",
    )
    fuzz.add_argument(
        "--budget",
        default="60s",
        metavar="TIME",
        help="wall-clock budget, e.g. 45, 60s, 2m (default 60s)",
    )
    fuzz.add_argument(
        "--scenarios",
        type=int,
        default=None,
        metavar="N",
        help="also stop after N scenarios",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0, help="first scenario seed (default 0)"
    )
    fuzz.add_argument(
        "--systems",
        default="G",
        metavar="CODES",
        help="comma-separated GNSS systems for the scenario population "
        "(e.g. G,R); more than one switches the oracles to "
        "per-constellation mode (default G)",
    )
    fuzz.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        metavar="P",
        help="probability of injecting a fault per scenario (default 0)",
    )
    fuzz.add_argument(
        "--inject",
        default=None,
        choices=sorted(_fault_registry()),
        help="inject this specific fault (implies --fault-rate 1.0 "
        "unless --fault-rate is given)",
    )
    fuzz.add_argument(
        "--fde",
        action="store_true",
        help="chaos-test the batch FDE gate instead of the oracle fuzz "
        "loop: seeded pseudorange spikes through the integrity-armed "
        "engine, graded on injected-PRN identification and false-alarm "
        "rate (use with --inject spike)",
    )
    fuzz.add_argument(
        "--spike-meters",
        type=float,
        default=75.0,
        metavar="M",
        help="injected spike magnitude for --fde (default 75)",
    )
    fuzz.add_argument(
        "--fde-out",
        default=None,
        metavar="PATH",
        help="write the --fde verdict JSON to this path",
    )
    fuzz.add_argument(
        "--spoof",
        action="store_true",
        help="chaos-test the signal-plausibility monitor suite instead "
        "of the oracle fuzz loop: seeded spoofing/interference streams "
        "(meaconing, slow drag, clock pull, jamming) through the "
        "monitor-armed executor, graded on in-time detection and "
        "clean-stream false-alarm rate",
    )
    fuzz.add_argument(
        "--spoof-out",
        default=None,
        metavar="PATH",
        help="write the --spoof verdict JSON to this path",
    )
    fuzz.add_argument(
        "--artifacts-dir",
        default="fuzz-artifacts",
        metavar="DIR",
        help="where failing/explained seeds are persisted",
    )
    fuzz.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="replay one persisted artifact instead of fuzzing",
    )
    fuzz.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="record telemetry for the run (.prom/.txt or .json)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the async micro-batching service under concurrent load",
    )
    serve.add_argument("station", nargs="?", default="SRZN", help="site id")
    serve.add_argument(
        "--algorithm",
        default="dlg",
        choices=["nr", "dlo", "dlg"],
        help="batchable solver the service runs",
    )
    serve.add_argument(
        "--requests", type=int, default=200, help="concurrent requests to fire"
    )
    serve.add_argument(
        "--warmup",
        type=int,
        default=30,
        help="NR epochs used to train the clock-bias predictor (dlo/dlg)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=64, help="micro-batch flush size"
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batch flush deadline in milliseconds",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=1024,
        help="admission limit before backpressure rejection",
    )
    serve.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds (default: none)",
    )
    serve.add_argument(
        "--concurrency",
        type=int,
        default=256,
        help="client-side in-flight submission bound",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help=(
            "run the sharded multi-process tier with N worker processes "
            "(0 = the in-process asyncio service)"
        ),
    )
    serve.add_argument(
        "--policy",
        default="hash",
        choices=["hash", "least_loaded"],
        help="shard routing policy (with --workers)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="record service telemetry (.prom/.txt or .json)",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="arm the per-request trace plane (span trees on every result)",
    )
    serve.add_argument(
        "--record-dir",
        default=None,
        metavar="DIR",
        help=(
            "arm the anomaly flight recorder; replayable incident "
            "artifacts and a flight-records.json snapshot land here"
        ),
    )
    serve.add_argument(
        "--status-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics, /metrics.json, /slo, /records, /healthz on "
            "127.0.0.1:PORT while running (0 picks a free port); also "
            "arms the SLO engine"
        ),
    )
    serve.add_argument(
        "--slo-target",
        type=float,
        default=0.999,
        help="availability objective for the SLO engine (with --status-port)",
    )

    inspect = sub.add_parser(
        "inspect",
        help="browse flight-recorder records and incident artifacts",
    )
    inspect.add_argument(
        "path",
        help=(
            "an incident artifact, a flight-records.json snapshot, or a "
            "directory holding either (e.g. a serve run's --record-dir)"
        ),
    )
    inspect.add_argument(
        "--request",
        default=None,
        metavar="ID",
        help="show one request's full record (and span tree, if traced)",
    )
    inspect.add_argument(
        "--last",
        type=int,
        default=None,
        metavar="N",
        help="only the most recent N records",
    )
    inspect.add_argument(
        "--triggered",
        action="store_true",
        help="only records that tripped an anomaly trigger",
    )
    return parser


def _cmd_stations(args: argparse.Namespace) -> int:
    counts = {station.site_id: DatasetConfig().epoch_count for station in all_stations()}
    print(format_table_5_1(all_stations(), counts))
    return EXIT_OK


def _cmd_solve(args: argparse.Namespace) -> int:
    station = get_station(args.station)
    dataset = ObservationDataset(
        station,
        DatasetConfig(duration_seconds=args.duration, track_carrier=args.smooth),
    )
    mode = "steering" if station.uses_steering_clock else "threshold"
    receiver = GpsReceiver(
        algorithm=args.algorithm, clock_mode=mode, warmup_epochs=args.warmup
    )
    hatch = HatchFilter() if args.smooth else None
    print(
        f"station {station.site_id}: {args.algorithm.upper()}, {mode} clock"
        + (", Hatch-smoothed" if args.smooth else "")
    )
    with _metrics_sink(args.metrics_out):
        for index, epoch in enumerate(dataset.epochs()):
            if hatch is not None:
                epoch = hatch.smooth_epoch(epoch)
            fix = receiver.process(epoch)
            error = fix.distance_to(station.position)
            if index % 30 == 0 or index == dataset.epoch_count - 1:
                print(
                    f"  epoch {index:5d}  sats={epoch.satellite_count:2d}  "
                    f"alg={fix.algorithm:<4} error={error:7.2f} m"
                )
        print(f"pipeline stats: {receiver.stats}")
    return EXIT_OK


def _cmd_experiment(args: argparse.Namespace) -> int:
    stations = (
        all_stations() if args.station == "all" else [get_station(args.station)]
    )
    config = ExperimentConfig(
        dataset=DatasetConfig(duration_seconds=args.duration)
    )
    results = {}
    with _metrics_sink(args.metrics_out):
        for station in stations:
            result = run_station_experiment(station, config)
            results[station.site_id] = result
            print(format_station_report(result))
            print()
    if args.output:
        from repro.evaluation import write_markdown_report

        path = write_markdown_report(
            args.output,
            results,
            notes=(
                f"Sampled {args.duration:.0f} s span per station; see "
                "EXPERIMENTS.md for methodology."
            ),
        )
        print(f"wrote markdown report to {path}")
    return EXIT_OK


def _cmd_export(args: argparse.Namespace) -> int:
    station = get_station(args.station)
    dataset = ObservationDataset(
        station,
        DatasetConfig(duration_seconds=args.duration, track_carrier=args.carrier),
    )
    epochs = dataset.realize()
    obs_path = args.obs or f"{station.site_id.lower()}.obs"
    nav_path = args.nav or f"{station.site_id.lower()}.nav"
    header = ObservationHeader(
        marker_name=station.site_id,
        approx_position=station.ecef,
        interval=dataset.config.interval_seconds,
        observation_types=("C1", "L1") if args.carrier else ("C1",),
    )
    n_obs = write_observation_file(obs_path, header, epochs)
    n_nav = write_navigation_file(nav_path, dataset.navigation_records())
    print(f"wrote {n_obs} epochs to {obs_path} and {n_nav} ephemerides to {nav_path}")
    return EXIT_OK


def _cmd_skyplot(args: argparse.Namespace) -> int:
    from repro.core import compute_dop
    from repro.evaluation import skyplot_for_epoch

    station = get_station(args.station)
    duration = max(args.at + 1.0, 1.0)
    dataset = ObservationDataset(station, DatasetConfig(duration_seconds=duration))
    epoch = dataset.epoch_at(int(args.at))
    print(f"sky above {station.site_id} at t+{args.at:.0f}s "
          f"({epoch.satellite_count} satellites):")
    print(skyplot_for_epoch(epoch))
    dop = compute_dop(epoch.satellite_positions(), station.position)
    print(f"GDOP {dop.gdop:.2f}  PDOP {dop.pdop:.2f}  "
          f"HDOP {dop.hdop:.2f}  VDOP {dop.vdop:.2f}")
    return EXIT_OK


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.engine import ParallelReplay, PositioningEngine

    station = get_station(args.station)
    dataset = ObservationDataset(
        station, DatasetConfig(duration_seconds=args.duration)
    )
    epochs = dataset.realize()
    mode = "steering" if station.uses_steering_clock else "threshold"
    with telemetry.capture() as (registry, tracer):
        # Thread backend so worker receivers share the installed
        # registry: one replay lights up receiver, solver, and replay
        # metrics together.
        replay = ParallelReplay(
            receiver_kwargs={"algorithm": args.algorithm, "clock_mode": mode},
            workers=max(1, args.workers),
            backend="thread",
        )
        replay.replay(epochs)
        engine = PositioningEngine(algorithm=args.algorithm)
        result = engine.solve_stream(epochs)
        extra = {"engine_diagnostics": result.diagnostics.to_dict()}
        if args.output:
            telemetry.write_snapshot(
                args.output, registry, tracer=tracer, extra=extra
            )
            print(f"wrote telemetry snapshot to {args.output}", file=sys.stderr)
        elif args.format == "prom":
            sys.stdout.write(telemetry.to_prometheus_text(registry))
        else:
            json.dump(
                telemetry.to_json_snapshot(registry, tracer, extra=extra),
                sys.stdout,
                indent=2,
                sort_keys=True,
            )
            sys.stdout.write("\n")
    return EXIT_OK


def _fault_registry():
    """Injectable fault names (lazy import keeps CLI startup light)."""
    from repro.validation import FAULT_REGISTRY

    return FAULT_REGISTRY


def _parse_budget(text: str) -> float:
    """Seconds from a ``45`` / ``60s`` / ``2m`` / ``1h`` spelling."""
    text = text.strip().lower()
    scale = 1.0
    if text.endswith(("s", "m", "h")):
        scale = {"s": 1.0, "m": 60.0, "h": 3600.0}[text[-1]]
        text = text[:-1]
    try:
        seconds = float(text) * scale
    except ValueError:
        raise ConfigurationError(
            f"invalid --budget {text!r}: use e.g. 45, 60s, or 2m"
        )
    if seconds <= 0:
        raise ConfigurationError("--budget must be positive")
    return seconds


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.validation import (
        FuzzConfig,
        FuzzHarness,
        ScenarioConfig,
        fault_from_spec,
        replay_artifact,
    )

    if args.fde and args.spoof:
        raise ConfigurationError("--fde and --spoof are mutually exclusive")
    if args.fde:
        return _cmd_fuzz_fde(args)
    if args.spoof:
        return _cmd_fuzz_spoof(args)

    if args.replay:
        recorded = json.loads(open(args.replay).read())
        result = replay_artifact(args.replay)
        reproduced = (
            result.status == recorded.get("status")
            and result.kind == recorded.get("kind")
            and list(result.detail) == recorded.get("detail", [])
        )
        print(f"replayed seed {result.seed}: status={result.status}", end="")
        if result.kind:
            print(f" kind={result.kind}", end="")
        print()
        for line in result.detail:
            print(f"  {line}")
        print("verdict reproduced" if reproduced else "VERDICT CHANGED since recording")
        return exit_code(reproduced)

    fault = None
    fault_rate = args.fault_rate
    if args.inject is not None:
        fault = fault_from_spec({"name": args.inject})
        if fault_rate == 0.0:
            fault_rate = 1.0
    systems = tuple(
        code.strip() for code in args.systems.split(",") if code.strip()
    )
    config = FuzzConfig(
        budget_seconds=_parse_budget(args.budget),
        max_scenarios=args.scenarios,
        start_seed=args.seed,
        fault_rate=fault_rate,
        fault=fault,
        scenario=ScenarioConfig(systems=systems),
        artifacts_dir=args.artifacts_dir,
    )
    with _metrics_sink(args.metrics_out):
        report = FuzzHarness(config).run()
        print(
            f"fuzzed {report.scenarios} scenarios in "
            f"{report.elapsed_seconds:.1f}s from seed {args.seed}: "
            f"{report.passes} passed, {report.rejected} rejected, "
            f"{report.explained} fault-explained, "
            f"{len(report.failures)} unexplained failures "
            f"({report.stream_checks} stream checks)"
        )
        for failure in report.failures:
            print(f"  FAILED seed {failure.seed} [{failure.kind}]")
            for line in failure.detail[:4]:
                print(f"    {line}")
        for path in report.artifact_paths:
            print(f"  artifact: {path}")
    return exit_code(report.ok)


def _cmd_fuzz_fde(args: argparse.Namespace) -> int:
    from repro.validation import FdeChaosConfig, run_fde_chaos

    if args.inject not in (None, "spike"):
        raise ConfigurationError(
            "--fde chaos mode injects pseudorange spikes; drop --inject "
            "or use --inject spike"
        )
    config = FdeChaosConfig(
        scenarios=args.scenarios if args.scenarios is not None else 400,
        start_seed=args.seed,
        spike_meters=args.spike_meters,
        fault_rate=args.fault_rate if args.fault_rate > 0 else 0.5,
    )
    with _metrics_sink(args.metrics_out):
        report = run_fde_chaos(config)
    gates = report.to_dict()["gates"]
    print(
        f"FDE chaos: {report.faulted} spiked + {report.clean} clean epochs "
        f"from seed {config.start_seed} "
        f"({config.spike_meters:g} m spikes, m {config.min_satellites}-"
        f"{config.max_satellites}, sigma {config.sigma_meters:g} m)"
    )
    print(
        f"  identification: {report.identified}/{report.faulted} "
        f"({100 * report.identification_rate:.1f}%, floor "
        f"{100 * config.identification_floor:.0f}%) "
        f"[{'PASS' if report.identification_ok else 'FAIL'}]"
    )
    print(
        f"    missed {report.missed}, wrong satellite "
        f"{report.misidentified}, detected-unrepaired "
        f"{report.detected_unrepaired}"
    )
    print(
        f"  false alarms: {report.false_alarms}/{report.clean} "
        f"({100 * report.false_alarm_rate:.2f}%, budget "
        f"{100 * gates['false_alarm']['budget']:.2f}%) "
        f"[{'PASS' if report.false_alarm_ok else 'FAIL'}]"
    )
    for case in report.mistakes[:8]:
        print(
            f"    seed {case.seed}: injected PRN {case.injected_prn}, "
            f"verdict {case.status}"
            + (
                f" (excluded PRN {case.excluded_prn})"
                if case.excluded_prn is not None
                else ""
            )
        )
    if args.fde_out:
        with open(args.fde_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote chaos verdict to {args.fde_out}")
    return exit_code(report.ok)


def _cmd_fuzz_spoof(args: argparse.Namespace) -> int:
    from repro.validation import MonitorChaosConfig, run_monitor_chaos

    if args.inject is not None:
        raise ConfigurationError(
            "--spoof chaos mode draws its own attack population "
            "(meaconing, slow_drag, clock_pull, jamming_ramp); drop "
            "--inject"
        )
    config = MonitorChaosConfig(
        scenarios=args.scenarios if args.scenarios is not None else 400,
        start_seed=args.seed,
    )
    with _metrics_sink(args.metrics_out):
        report = run_monitor_chaos(config)
    gates = report.to_dict()["gates"]
    print(
        f"spoof chaos: {report.attacks} attacked + {report.clean_streams} "
        f"clean streams from seed {config.start_seed} "
        f"({config.epochs_per_stream} epochs/stream, onset "
        f"{config.onset_seconds:g} s, sigma {config.sigma_meters:g} m)"
    )
    print(
        f"  detection: {report.detected_in_time}/{report.attacks} in time "
        f"({100 * report.detection_rate:.1f}%, floor "
        f"{100 * config.detection_floor:.0f}%) "
        f"[{'PASS' if report.detection_ok else 'FAIL'}]"
    )
    for family, stats in report.families.items():
        times = stats.to_dict()["time_to_detect_seconds"]
        latency = (
            f", mean ttd {times['mean']:.1f} s"
            if times["mean"] is not None
            else ""
        )
        print(
            f"    {family}: {stats.detected_in_time}/{stats.attacks} in "
            f"time ({stats.detected} detected{latency})"
        )
    print(
        f"  false alarms: {report.false_alarm_epochs}/{report.clean_epochs} "
        f"clean epochs ({100 * report.false_alarm_rate:.2f}%, budget "
        f"{100 * gates['false_alarm']['budget']:.2f}%) "
        f"[{'PASS' if report.false_alarm_ok else 'FAIL'}]"
    )
    for case in report.mistakes[:8]:
        print(
            f"    seed {case.seed} [{case.family}]: {case.outcome}"
            + (
                f" (detected at {case.detect_second:g} s)"
                if case.detect_second is not None
                else ""
            )
        )
    if args.spoof_out:
        with open(args.spoof_out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"wrote chaos verdict to {args.spoof_out}")
    return exit_code(report.ok)


def _load_flight_records(path: str) -> List[dict]:
    """Every flight record reachable from ``path``, oldest first.

    Understands both artifact shapes the recorder writes: a replayable
    incident payload (``format: repro-flight-record-v1``, one embedded
    record) and a ``FlightRecorder.snapshot()`` dump (a ``records``
    list).  A directory is scanned for ``*.json`` holding either.
    """
    import json
    from pathlib import Path

    from repro.telemetry.recorder import INCIDENT_FORMAT

    target = Path(path)
    if not target.exists():
        raise ConfigurationError(f"no such file or directory: {path}")
    files = sorted(target.glob("*.json")) if target.is_dir() else [target]
    records: List[dict] = []
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, ValueError):
            continue  # unreadable / not JSON: not ours to judge
        if not isinstance(payload, dict):
            continue
        if payload.get("format") == INCIDENT_FORMAT:
            record = payload.get("record")
            if isinstance(record, dict):
                records.append(record)
        elif isinstance(payload.get("records"), list):
            records.extend(
                r for r in payload["records"] if isinstance(r, dict)
            )
    records.sort(key=lambda r: r.get("recorded_at") or 0.0)
    return records


def _print_flight_record(record: dict) -> None:
    """Full single-record rendering for ``inspect --request``."""
    from repro.telemetry.trace import RequestTrace

    for key in ("request_id", "trace_id", "status", "solver", "trigger",
                "inputs_digest", "config_hash", "error"):
        value = record.get(key)
        if value not in (None, ""):
            print(f"{key}: {value}")
    stage_seconds = record.get("stage_seconds") or {}
    if stage_seconds:
        stages = " ".join(
            f"{name}={1e3 * float(sec):.3f}ms"
            for name, sec in stage_seconds.items()
        )
        print(f"stages: {stages}")
    verdict = record.get("verdict")
    if verdict:
        print(f"verdict: {verdict}")
    attributes = record.get("attributes") or {}
    if attributes:
        print(f"attributes: {attributes}")
    print(f"replayable: {'yes' if record.get('epoch') else 'no'}")
    trace = record.get("trace")
    if trace:
        print(RequestTrace.from_dict(trace).format())


def _load_metrics_snapshot(path: str) -> Optional[dict]:
    """The metrics document if ``path`` is a telemetry snapshot file.

    Recognizes both the ``write_snapshot`` JSON shape (top-level
    ``metrics`` dict) and a bare ``MetricsRegistry.snapshot()``
    document (families keyed by name, each with ``kind``/``samples``).
    Returns ``None`` when the file is not a metrics snapshot — the
    caller falls through to flight-record handling.
    """
    import json
    from pathlib import Path

    target = Path(path)
    if not target.is_file():
        return None
    try:
        payload = json.loads(target.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    metrics = payload.get("metrics")
    if isinstance(metrics, dict) and metrics:
        return metrics
    if payload and all(
        isinstance(family, dict) and {"kind", "samples"} <= set(family)
        for family in payload.values()
    ):
        return payload
    return None


def _print_metrics_snapshot(metrics: dict) -> None:
    """Render one metrics snapshot as a table (fleet or single scrape)."""
    rows = 0
    for name in sorted(metrics):
        family = metrics[name]
        kind = family.get("kind", "?")
        for sample in family.get("samples", ()):
            labels = sample.get("labels") or {}
            rendered = (
                "{" + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if kind == "histogram":
                value = (
                    f"count={sample.get('count', 0):g} "
                    f"sum={sample.get('sum', 0.0):g}"
                )
            else:
                value = f"{sample.get('value', 0.0):g}"
            print(f"{kind:<9} {name}{rendered} {value}")
            rows += 1
    print(f"{len(metrics)} metric families, {rows} series")


def _cmd_inspect(args: argparse.Namespace) -> int:
    metrics = _load_metrics_snapshot(args.path)
    if metrics is not None:
        if args.request is not None or args.triggered:
            raise ConfigurationError(
                f"{args.path} is a telemetry snapshot; --request/"
                "--triggered apply to flight records"
            )
        _print_metrics_snapshot(metrics)
        return EXIT_OK
    records = _load_flight_records(args.path)
    if args.request is not None:
        matches = [
            r for r in records if r.get("request_id") == args.request
        ]
        if not matches:
            print(
                f"repro-gps inspect: no record for request "
                f"{args.request!r} under {args.path}",
                file=sys.stderr,
            )
            return EXIT_FAILURE
        _print_flight_record(matches[-1])  # newest wins, like find()
        return EXIT_OK
    if args.triggered:
        records = [r for r in records if r.get("trigger")]
    if args.last is not None:
        records = records[-args.last:]
    if not records:
        print(f"no flight records under {args.path}")
        return EXIT_OK
    print(f"{'recorded_at':>14}  {'status':<8} {'trigger':<16} "
          f"{'solver':<16} request_id")
    for record in records:
        print(
            f"{record.get('recorded_at') or 0.0:>14.3f}  "
            f"{record.get('status') or '-':<8} "
            f"{record.get('trigger') or '-':<16} "
            f"{record.get('solver') or '-':<16} "
            f"{record.get('request_id') or '-'}"
        )
    triggered = sum(1 for r in records if r.get("trigger"))
    print(f"{len(records)} records ({triggered} triggered)")
    return EXIT_OK


def _serve_sharded(args, station, service_config, serve_epochs) -> int:
    """The ``serve --workers N`` path: the multi-process shard tier.

    Synchronous by design — the shard router owns its own dispatch
    loop — so the asyncio-tier-only flags (traces, flight recorder,
    status port) are rejected rather than silently ignored.
    """
    import time as _time

    import numpy as np

    from repro.service import ShardConfig, ShardedPositioningService
    from repro.telemetry import aggregate_registries
    from repro.telemetry.exporters import (
        to_json_snapshot,
        to_prometheus_fleet_text,
    )

    for flag, name in (
        (args.trace, "--trace"),
        (args.record_dir, "--record-dir"),
        (args.status_port, "--status-port"),
    ):
        if flag:
            raise ConfigurationError(
                f"{name} rides the asyncio tier; it is not available "
                "with --workers (the shard's telemetry is the fleet "
                "scrape, --metrics-out)"
            )
    shard_config = ShardConfig(
        service=service_config,
        workers=args.workers,
        policy=args.policy,
        batch_size=args.batch_size,
    )
    with telemetry.capture() as (router_registry, _tracer):
        with ShardedPositioningService(shard_config) as shard:
            started = _time.monotonic()
            results = shard.solve_many(serve_epochs)
            wall = _time.monotonic() - started
            registries = [router_registry] + shard.worker_registries()
            live = shard.live_workers
    if args.metrics_out:
        lowered = args.metrics_out.lower()
        if lowered.endswith((".prom", ".txt")):
            payload = to_prometheus_fleet_text(registries)
            with open(args.metrics_out, "w") as handle:
                handle.write(payload)
        else:
            import json as _json

            merged = aggregate_registries(registries)
            merged.gauge(
                "repro_fleet_registries",
                "Member registries merged into this scrape.",
            ).set(len(registries))
            with open(args.metrics_out, "w") as handle:
                _json.dump(
                    to_json_snapshot(merged), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        print(f"wrote fleet telemetry snapshot to {args.metrics_out}")

    statuses = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    ok_results = [r for r in results if r.ok]
    print(
        f"served {len(results)} requests in {wall:.3f}s "
        f"({len(results) / wall:,.0f} req/s) across {args.workers} workers "
        f"({live} live, policy {args.policy}, batches of {args.batch_size})"
    )
    print(f"statuses: {statuses}")
    if ok_results:
        errors = np.array(
            [
                float(np.linalg.norm(r.position - station.position))
                for r in ok_results
            ]
        )
        print(
            f"position error vs station: mean {errors.mean():.2f}m, "
            f"max {errors.max():.2f}m"
        )
    return exit_code(len(ok_results) == len(results))


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    import numpy as np

    from repro.api import SolverConfig
    from repro.clocks import LinearClockBiasPredictor
    from repro.service import AsyncPositioningClient, PositioningService, ServiceConfig
    from repro.solvers import NewtonRaphsonSolver

    if args.requests < 1:
        raise ConfigurationError("--requests must be >= 1")
    station = get_station(args.station)
    needs_predictor = args.algorithm in ("dlo", "dlg")
    warmup_count = max(2, args.warmup) if needs_predictor else 0
    total = warmup_count + args.requests
    dataset = ObservationDataset(
        station, DatasetConfig(duration_seconds=float(total))
    )
    epochs = dataset.realize()[:total]

    if needs_predictor:
        # The receiver pipeline's calibration step, inlined: solve the
        # warm-up epochs with NR and train the linear bias model the
        # closed-form service path will predict from.
        mode = "steering" if station.uses_steering_clock else "threshold"
        predictor = LinearClockBiasPredictor(
            mode=mode, warmup_samples=warmup_count
        )
        nr = NewtonRaphsonSolver()
        for epoch in epochs[:warmup_count]:
            fix = nr.solve(epoch)
            predictor.observe(epoch.time, fix.clock_bias_meters)
        solver = SolverConfig(algorithm=args.algorithm, clock_predictor=predictor)
    else:
        solver = SolverConfig(algorithm="nr")
    from repro.telemetry.recorder import RecorderConfig
    from repro.telemetry.slo import SloConfig

    service_config = ServiceConfig(
        solver=solver,
        max_batch_size=args.batch_size,
        max_wait_seconds=args.max_wait_ms / 1000.0,
        max_queue_depth=args.queue_depth,
        default_timeout_seconds=(
            None if args.timeout_ms is None else args.timeout_ms / 1000.0
        ),
        trace=args.trace,
        recorder=(
            RecorderConfig(dump_dir=args.record_dir)
            if args.record_dir is not None
            else None
        ),
        slo=(
            SloConfig(availability_target=args.slo_target)
            if args.status_port is not None
            else None
        ),
    )
    serve_epochs = epochs[warmup_count:]

    if args.workers:
        return _serve_sharded(args, station, service_config, serve_epochs)

    async def run():
        results = [None] * len(serve_epochs)
        latencies = [0.0] * len(serve_epochs)
        # Bounded in-flight window as a pool of pump tasks over a shared
        # iterator (a per-request semaphore rescans its waiter queue
        # quadratically when a whole batch resolves at once).
        indices = iter(range(len(serve_epochs)))
        async with PositioningService(service_config) as service:
            status_server = None
            if args.status_port is not None:
                from repro.telemetry import get_registry
                from repro.telemetry.statusd import StatusServer

                status_server = StatusServer(
                    registries=lambda: [get_registry()],
                    slo=service.slo,
                    recorder=service.recorder,
                    port=args.status_port,
                )
                await status_server.start()
                print(
                    f"status endpoint: http://127.0.0.1:{status_server.port}"
                    "/metrics (.json, /slo, /records, /healthz)"
                )
            client = AsyncPositioningClient(service)
            loop = asyncio.get_running_loop()

            async def pump():
                for index in indices:
                    epoch = serve_epochs[index]
                    started = loop.time()
                    result = await client.submit(epoch)
                    for _ in range(3):  # polite backpressure retry
                        if result.status != "rejected":
                            break
                        await asyncio.sleep(result.retry_after_seconds or 0.05)
                        result = await client.submit(epoch)
                    latencies[index] = loop.time() - started
                    results[index] = result

            pumps = min(max(1, args.concurrency), max(1, len(serve_epochs)))
            started = loop.time()
            try:
                await asyncio.gather(*(pump() for _ in range(pumps)))
            finally:
                if status_server is not None:
                    await status_server.stop()
            wall = loop.time() - started
            slo_snapshot = (
                service.slo.snapshot() if service.slo is not None else None
            )
            recorder_snapshot = (
                service.recorder.snapshot()
                if service.recorder is not None
                else None
            )
        return results, latencies, wall, slo_snapshot, recorder_snapshot

    with _metrics_sink(args.metrics_out, ensure=args.status_port is not None):
        results, latencies, wall, slo_snapshot, recorder_snapshot = (
            asyncio.run(run())
        )

    if recorder_snapshot is not None:
        # Persist the full ring alongside any incident dumps so
        # `repro-gps inspect <dir> [--request <id>]` works offline.
        import json as _json
        from pathlib import Path

        snapshot_path = Path(args.record_dir) / "flight-records.json"
        snapshot_path.parent.mkdir(parents=True, exist_ok=True)
        snapshot_path.write_text(
            _json.dumps(recorder_snapshot, indent=2, sort_keys=True)
        )
        print(
            f"flight recorder: {recorder_snapshot['retained']} records, "
            f"{len(recorder_snapshot['dumps'])} incident dumps -> "
            f"{snapshot_path}"
        )
    if slo_snapshot is not None:
        quantiles = slo_snapshot["latency_seconds"]
        rendered = " ".join(
            f"{name}={1e3 * value:.2f}ms"
            for name, value in quantiles.items()
            if value == value  # skip NaN (empty window)
        )
        print(
            f"slo: availability {slo_snapshot['availability']:.6f} "
            f"(budget remaining {slo_snapshot['error_budget_remaining']:+.3f}) "
            f"latency {rendered}"
        )

    statuses = {}
    for result in results:
        statuses[result.status] = statuses.get(result.status, 0) + 1
    ok_results = [r for r in results if r.ok]
    batch_sizes = np.array([r.batch_size for r in ok_results]) if ok_results else np.array([0])
    latency = np.array(latencies)
    print(
        f"served {len(results)} requests in {wall:.3f}s "
        f"({len(results) / wall:,.0f} req/s) with {args.algorithm.upper()} "
        f"batches<={args.batch_size}, wait<={args.max_wait_ms:g}ms"
    )
    print(f"statuses: {statuses}")
    print(
        f"batch size: mean {batch_sizes.mean():.1f}, "
        f"p50 {np.percentile(batch_sizes, 50):.0f}, "
        f"max {batch_sizes.max()}"
    )
    print(
        f"latency: p50 {1e3 * np.percentile(latency, 50):.2f}ms, "
        f"p99 {1e3 * np.percentile(latency, 99):.2f}ms, "
        f"max {1e3 * latency.max():.2f}ms"
    )
    if ok_results:
        errors = np.array(
            [
                float(np.linalg.norm(r.position - station.position))
                for r in ok_results
            ]
        )
        print(
            f"position error vs station: mean {errors.mean():.2f}m, "
            f"max {errors.max():.2f}m"
        )
    return exit_code(len(ok_results) == len(results))


if __name__ == "__main__":
    sys.exit(main())
