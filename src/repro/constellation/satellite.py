"""A single simulated GNSS space vehicle."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.constellation.systems import DEFAULT_SYSTEM, normalize_system
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.timebase import GpsTime


@dataclass
class Satellite:
    """A GNSS satellite: identity + ephemeris + health.

    A thin stateful wrapper over :class:`BroadcastEphemeris`: the
    constellation flips ``healthy`` for failure-injection scenarios
    (receivers must cope with satellites dropping out mid-pass), and the
    identity fields survive ephemeris updates.  PRNs are unique only
    *within* a system, so the full identity is ``(system, prn)``.
    """

    ephemeris: BroadcastEphemeris
    healthy: bool = True
    #: Free-form satellite block label, e.g. "IIR" / "IIR-M"; cosmetic.
    block: str = field(default="IIR")
    #: RINEX system code ("G" GPS, "R" GLONASS, "E" Galileo, "C" BeiDou).
    system: str = field(default=DEFAULT_SYSTEM)

    def __post_init__(self) -> None:
        self.system = normalize_system(self.system)

    @property
    def prn(self) -> int:
        """The satellite's PRN identifier (1..63), unique per system."""
        return self.ephemeris.prn

    @property
    def identity(self) -> Tuple[str, int]:
        """The globally unique ``(system, prn)`` pair."""
        return (self.system, self.prn)

    def position_at(self, time: GpsTime) -> np.ndarray:
        """ECEF position (m) at GPS time ``time``."""
        return self.ephemeris.satellite_position(time)

    def velocity_at(self, time: GpsTime) -> np.ndarray:
        """ECEF velocity (m/s) at GPS time ``time``."""
        return self.ephemeris.satellite_velocity(time)

    def clock_offset_at(self, time: GpsTime) -> float:
        """Broadcast clock offset (s) at GPS time ``time``."""
        return self.ephemeris.satellite_clock_offset(time)

    def set_ephemeris(self, ephemeris: BroadcastEphemeris) -> None:
        """Upload a fresh ephemeris (PRN must match)."""
        if ephemeris.prn != self.prn:
            raise ValueError(
                f"ephemeris PRN {ephemeris.prn} does not match satellite PRN {self.prn}"
            )
        self.ephemeris = ephemeris

    def __repr__(self) -> str:
        status = "healthy" if self.healthy else "unhealthy"
        return f"Satellite(prn={self.prn}, block={self.block!r}, {status})"
