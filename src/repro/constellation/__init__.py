"""Constellation simulator: satellites, visibility, sky geometry."""

from repro.constellation.satellite import Satellite
from repro.constellation.constellation import Constellation, VisibleSatellite
from repro.constellation.planning import SatellitePass, find_passes

__all__ = [
    "Satellite",
    "Constellation",
    "VisibleSatellite",
    "SatellitePass",
    "find_passes",
]
