"""Constellation simulator: satellites, visibility, sky geometry."""

from repro.constellation.systems import (
    DEFAULT_SYSTEM,
    ORBIT_SHELLS,
    SYSTEM_CODES,
    SYSTEM_NAMES,
    constellation_signature,
    group_layout,
    normalize_system,
    system_code,
    system_index,
)
from repro.constellation.satellite import Satellite
from repro.constellation.constellation import Constellation, VisibleSatellite
from repro.constellation.planning import SatellitePass, find_passes

__all__ = [
    "Satellite",
    "Constellation",
    "VisibleSatellite",
    "SatellitePass",
    "find_passes",
    "DEFAULT_SYSTEM",
    "ORBIT_SHELLS",
    "SYSTEM_CODES",
    "SYSTEM_NAMES",
    "constellation_signature",
    "group_layout",
    "normalize_system",
    "system_code",
    "system_index",
]
