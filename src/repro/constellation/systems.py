"""GNSS system registry: codes, numeric ids, and orbital shells.

The paper's construction is GPS-only, but its differenced solvers
generalize to any mix of constellations as long as every observation
carries a *system tag*: each constellation runs its own system clock,
so a multi-GNSS receiver has one clock-bias unknown per constellation
present (``b_1..b_K``) instead of the single ``b`` of eq. 4-2.

This module is the single source of truth for those tags.  Codes follow
the RINEX 3 convention (``G`` GPS, ``R`` GLONASS, ``E`` Galileo, ``C``
BeiDou); the numeric ids are the compact ``int8`` lane values carried by
:class:`~repro.blocks.EpochBlock` and the packed-stream buckets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple, Union

import numpy as np

from repro.constants import (
    GPS_ORBIT_INCLINATION,
    GPS_ORBIT_PLANE_COUNT,
    GPS_ORBIT_SEMI_MAJOR_AXIS,
)
from repro.errors import ConfigurationError

#: RINEX system codes in canonical (id) order.
SYSTEM_CODES: Tuple[str, ...] = ("G", "R", "E", "C")

#: Human-readable constellation names, keyed by system code.
SYSTEM_NAMES: Dict[str, str] = {
    "G": "GPS",
    "R": "GLONASS",
    "E": "Galileo",
    "C": "BeiDou",
}

#: The default system everywhere a tag is optional: plain GPS, which
#: keeps every pre-existing single-constellation code path meaningful.
DEFAULT_SYSTEM: str = "G"

_CODE_TO_ID: Dict[str, int] = {code: index for index, code in enumerate(SYSTEM_CODES)}


@dataclass(frozen=True)
class OrbitShell:
    """Nominal orbital geometry of one constellation's MEO shell."""

    semi_major_axis: float  # meters
    inclination: float  # radians
    plane_count: int


#: Nominal shells for the four global constellations.  GPS matches the
#: repo-wide constants; the others use published nominal values
#: (GLONASS 25,508 km / 64.8 deg / 3 planes, Galileo 29,600 km /
#: 56 deg / 3 planes, BeiDou MEO 27,906 km / 55 deg / 3 planes).
ORBIT_SHELLS: Dict[str, OrbitShell] = {
    "G": OrbitShell(
        semi_major_axis=GPS_ORBIT_SEMI_MAJOR_AXIS,
        inclination=GPS_ORBIT_INCLINATION,
        plane_count=GPS_ORBIT_PLANE_COUNT,
    ),
    "R": OrbitShell(
        semi_major_axis=25_508_000.0,
        inclination=math.radians(64.8),
        plane_count=3,
    ),
    "E": OrbitShell(
        semi_major_axis=29_600_000.0,
        inclination=math.radians(56.0),
        plane_count=3,
    ),
    "C": OrbitShell(
        semi_major_axis=27_906_000.0,
        inclination=math.radians(55.0),
        plane_count=3,
    ),
}


def normalize_system(system: str) -> str:
    """Validate a system code, returning its canonical (upper) form."""
    if not isinstance(system, str):
        raise ConfigurationError(
            f"system code must be a string, got {type(system).__name__}"
        )
    code = system.upper()
    if code not in _CODE_TO_ID:
        raise ConfigurationError(
            f"unknown GNSS system {system!r}; expected one of {SYSTEM_CODES}"
        )
    return code


def system_index(system: str) -> int:
    """The compact numeric id of a system code (``G``=0, ``R``=1, ...)."""
    return _CODE_TO_ID[normalize_system(system)]


def system_code(index: int) -> str:
    """The system code for a numeric id (inverse of :func:`system_index`)."""
    idx = int(index)
    if not 0 <= idx < len(SYSTEM_CODES):
        raise ConfigurationError(
            f"system id must be in [0, {len(SYSTEM_CODES) - 1}], got {index}"
        )
    return SYSTEM_CODES[idx]


def system_ids_to_codes(system_ids: Sequence[int]) -> Tuple[str, ...]:
    """Map a lane of numeric system ids to their codes."""
    return tuple(system_code(index) for index in np.asarray(system_ids).ravel())


def constellation_signature(system_ids: Union[Sequence[int], np.ndarray]) -> str:
    """Compact per-epoch signature, e.g. ``"G5R3"``.

    Counts satellites per system in canonical system order, skipping
    absent systems.  Two epochs share a signature exactly when they have
    the same per-constellation satellite counts — the grouping the
    multi-constellation batch kernels need (the *slot pattern* may still
    differ; bucket grouping uses the raw pattern, the signature is the
    human-facing label).
    """
    ids = np.asarray(system_ids, dtype=np.int64).ravel()
    if ids.size == 0:
        return ""
    if np.any(ids < 0) or np.any(ids >= len(SYSTEM_CODES)):
        raise ConfigurationError("system ids out of range for signature")
    counts = np.bincount(ids, minlength=len(SYSTEM_CODES))
    return "".join(
        f"{SYSTEM_CODES[index]}{int(count)}"
        for index, count in enumerate(counts)
        if count
    )


def group_layout(
    system_ids: Union[Sequence[int], np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row group indices and the distinct system ids present.

    Returns ``(groups, codes)`` where ``codes`` holds the distinct
    system ids in order of first appearance and ``groups[i]`` is the
    index into ``codes`` of row ``i``'s system.  First-appearance order
    (rather than sorted order) keeps the mapping stable under the
    relabeling metamorphic property: permuting which *code* a group
    carries never changes the group structure itself.
    """
    ids = np.asarray(system_ids, dtype=np.int64).ravel()
    codes, groups = np.unique(ids, return_inverse=True)
    # np.unique sorts; remap to first-appearance order for stability.
    first_seen = np.argsort([np.argmax(ids == code) for code in codes], kind="stable")
    codes = codes[first_seen]
    remap = np.empty(first_seen.size, dtype=np.int64)
    remap[first_seen] = np.arange(first_seen.size)
    return remap[groups], codes
