"""Satellite pass planning: when is each satellite visible?

Survey campaigns and kinematic missions plan around satellite
geometry: when does PRN 14 rise above the mask, when does coverage dip
to 5 satellites, when is GDOP best?  This module answers those
questions by scanning a time window and refining rise/set instants by
bisection on the (continuous) elevation function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.constants import DEFAULT_ELEVATION_MASK
from repro.constellation.constellation import Constellation
from repro.errors import ConfigurationError
from repro.geodesy import elevation_angle
from repro.timebase import GpsTime
from repro.utils.validation import require_shape


@dataclass(frozen=True)
class SatellitePass:
    """One visibility window of one satellite over a receiver.

    ``rise``/``set_`` are the mask-crossing instants (``None`` when the
    pass extends beyond the scanned window); ``max_elevation`` is the
    highest elevation reached inside the window (radians).
    """

    prn: int
    rise: Optional[GpsTime]
    set_: Optional[GpsTime]
    max_elevation: float

    @property
    def duration_seconds(self) -> Optional[float]:
        """Pass length, or ``None`` when either edge is outside the window."""
        if self.rise is None or self.set_ is None:
            return None
        return self.set_ - self.rise


def find_passes(
    constellation: Constellation,
    receiver_ecef: np.ndarray,
    start: GpsTime,
    duration_seconds: float,
    elevation_mask: float = DEFAULT_ELEVATION_MASK,
    coarse_step_seconds: float = 60.0,
    refine_tolerance_seconds: float = 1.0,
) -> List[SatellitePass]:
    """All satellite passes over a receiver within a time window.

    Scans at ``coarse_step_seconds`` (satellite passes last tens of
    minutes, so a 60 s grid cannot miss one), then bisects each mask
    crossing down to ``refine_tolerance_seconds``.

    Returns passes sorted by (rise time, PRN); passes already in
    progress at ``start`` have ``rise=None``, passes still in progress
    at the end have ``set_=None``.
    """
    receiver = require_shape("receiver_ecef", receiver_ecef, (3,))
    if duration_seconds <= 0:
        raise ConfigurationError("duration_seconds must be positive")
    if coarse_step_seconds <= 0 or refine_tolerance_seconds <= 0:
        raise ConfigurationError("steps must be positive")

    steps = int(duration_seconds // coarse_step_seconds) + 1
    times = [start + i * coarse_step_seconds for i in range(steps + 1)]

    passes: List[SatellitePass] = []
    for satellite in constellation:
        if not satellite.healthy:
            continue

        def elevation_at(t: GpsTime) -> float:
            return elevation_angle(satellite.position_at(t), receiver)

        above = [elevation_at(t) >= elevation_mask for t in times]
        elevations = None  # computed lazily per pass for max-elevation

        index = 0
        while index <= steps:
            if not above[index]:
                index += 1
                continue
            # A visibility run starts here.
            run_start = index
            while index <= steps and above[index]:
                index += 1
            run_end = index - 1  # last above-mask grid point

            rise: Optional[GpsTime] = None
            if run_start > 0:
                rise = _bisect_crossing(
                    elevation_at, times[run_start - 1], times[run_start],
                    elevation_mask, refine_tolerance_seconds, rising=True,
                )
            set_: Optional[GpsTime] = None
            if run_end < steps:
                set_ = _bisect_crossing(
                    elevation_at, times[run_end], times[run_end + 1],
                    elevation_mask, refine_tolerance_seconds, rising=False,
                )
            max_elevation = max(
                elevation_at(times[i]) for i in range(run_start, run_end + 1)
            )
            passes.append(
                SatellitePass(
                    prn=satellite.prn,
                    rise=rise,
                    set_=set_,
                    max_elevation=max_elevation,
                )
            )

    passes.sort(
        key=lambda p: (
            p.rise.to_gps_seconds() if p.rise is not None else start.to_gps_seconds(),
            p.prn,
        )
    )
    return passes


def _bisect_crossing(
    elevation_at,
    below: GpsTime,
    above: GpsTime,
    mask: float,
    tolerance: float,
    rising: bool,
) -> GpsTime:
    """Bisect the mask crossing between a below-mask and above-mask instant."""
    low = below.to_gps_seconds()
    high = above.to_gps_seconds()
    if not rising:
        low, high = high, low  # 'low' side is above the mask when setting
    # Invariant: elevation(low side) is below mask exactly when rising.
    left, right = min(low, high), max(low, high)
    for _ in range(64):
        if right - left <= tolerance:
            break
        middle = 0.5 * (left + right)
        above_mask = elevation_at(GpsTime.from_gps_seconds(middle)) >= mask
        # Move the boundary that keeps the crossing bracketed.
        if above_mask == rising:
            right = middle
        else:
            left = middle
    return GpsTime.from_gps_seconds(0.5 * (left + right))
