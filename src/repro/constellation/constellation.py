"""The simulated GNSS constellation and visibility computation.

This is the space segment of the paper's Section 3.1 system model: the
set of orbiting satellites a ground receiver can range against.  The
central operation is :meth:`Constellation.visible_from` — real receivers
see "6 to 10 (or more)" satellites above the horizon (the paper's data
items carry 8 to 12), and this class reproduces that by evaluating every
healthy satellite's elevation against a mask angle.

The paper is GPS-only, but the class carries any mix of systems: each
satellite has a ``(system, prn)`` identity, and
:meth:`Constellation.nominal_gnss` builds multi-constellation scenes
(GPS + GLONASS + Galileo + BeiDou) on their nominal orbital shells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro.constants import DEFAULT_ELEVATION_MASK
from repro.constellation.satellite import Satellite
from repro.constellation.systems import DEFAULT_SYSTEM, normalize_system
from repro.errors import ConfigurationError
from repro.geodesy import elevation_azimuth
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.timebase import GpsTime
from repro.utils.validation import require_shape


@dataclass(frozen=True)
class VisibleSatellite:
    """A satellite visible from a receiver at a particular instant."""

    satellite: Satellite
    position: np.ndarray  # ECEF, meters
    elevation: float  # radians
    azimuth: float  # radians

    @property
    def prn(self) -> int:
        """PRN of the visible satellite (unique per system)."""
        return self.satellite.prn

    @property
    def system(self) -> str:
        """RINEX system code of the visible satellite."""
        return self.satellite.system


class Constellation:
    """A collection of satellites with visibility queries.

    Parameters
    ----------
    satellites:
        The space vehicles making up the constellation.  ``(system,
        prn)`` identities must be unique — the same PRN may appear in
        different systems, never twice within one.
    """

    def __init__(self, satellites: Iterable[Satellite]) -> None:
        self._by_identity: Dict[Tuple[str, int], Satellite] = {}
        for satellite in satellites:
            identity = satellite.identity
            if identity in self._by_identity:
                raise ConfigurationError(
                    f"duplicate satellite {identity[0]}{identity[1]:02d} "
                    "in constellation"
                )
            self._by_identity[identity] = satellite
        if not self._by_identity:
            raise ConfigurationError("constellation must contain at least one satellite")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def nominal(
        cls,
        epoch: GpsTime,
        satellite_count: int = 31,
        rng: Optional[np.random.Generator] = None,
        system: str = DEFAULT_SYSTEM,
    ) -> "Constellation":
        """Build one system's nominal constellation (see
        :func:`repro.orbits.almanac.nominal_almanac`)."""
        from repro.orbits.almanac import nominal_almanac

        code = normalize_system(system)
        ephemerides = nominal_almanac(epoch, satellite_count, rng, system=code)
        return cls(Satellite(ephemeris=eph, system=code) for eph in ephemerides)

    @classmethod
    def nominal_gnss(
        cls,
        epoch: GpsTime,
        counts: Mapping[str, int],
        rng: Optional[np.random.Generator] = None,
    ) -> "Constellation":
        """Build a multi-constellation scene on the nominal shells.

        Parameters
        ----------
        epoch:
            Reference time of all generated ephemerides.
        counts:
            Mapping of system code to satellite count, e.g.
            ``{"G": 31, "R": 24}``.  PRNs number ``1..count`` within
            each system.
        rng:
            Shared perturbation source, consumed system-by-system in
            the order of ``counts``.
        """
        if not counts:
            raise ConfigurationError("nominal_gnss needs at least one system count")
        from repro.orbits.almanac import nominal_almanac

        satellites: List[Satellite] = []
        for system, count in counts.items():
            code = normalize_system(system)
            for eph in nominal_almanac(epoch, count, rng, system=code):
                satellites.append(Satellite(ephemeris=eph, system=code))
        return cls(satellites)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_identity)

    def __iter__(self) -> Iterator[Satellite]:
        return iter(self._by_identity.values())

    def __contains__(self, key) -> bool:
        if isinstance(key, tuple):
            system, prn = key
            return (normalize_system(system), int(prn)) in self._by_identity
        return any(prn == key for _, prn in self._by_identity)

    def satellite(self, prn: int, system: str = DEFAULT_SYSTEM) -> Satellite:
        """Look up a satellite by PRN (and system, default GPS)."""
        try:
            return self._by_identity[(normalize_system(system), int(prn))]
        except KeyError:
            raise ConfigurationError(
                f"no satellite with PRN {prn} in system {system!r}"
            ) from None

    @property
    def prns(self) -> List[int]:
        """Sorted list of all PRNs (may repeat across systems)."""
        return sorted(prn for _, prn in self._by_identity)

    @property
    def identities(self) -> List[Tuple[str, int]]:
        """Sorted list of all ``(system, prn)`` identities."""
        return sorted(self._by_identity)

    @property
    def systems(self) -> List[str]:
        """Sorted list of the distinct system codes present."""
        return sorted({system for system, _ in self._by_identity})

    def ephemerides(self) -> List[BroadcastEphemeris]:
        """All current ephemerides, identity-sorted (for RINEX nav
        export); all-GPS constellations keep the legacy PRN order."""
        return [self._by_identity[key].ephemeris for key in self.identities]

    # ------------------------------------------------------------------
    # Health / failure injection
    # ------------------------------------------------------------------
    def set_health(
        self, prn: int, healthy: bool, system: str = DEFAULT_SYSTEM
    ) -> None:
        """Mark a satellite healthy or unhealthy; unhealthy satellites
        are never reported visible."""
        self.satellite(prn, system=system).healthy = healthy

    # ------------------------------------------------------------------
    # Visibility
    # ------------------------------------------------------------------
    def visible_from(
        self,
        receiver_ecef: np.ndarray,
        time: GpsTime,
        elevation_mask: float = DEFAULT_ELEVATION_MASK,
    ) -> List[VisibleSatellite]:
        """Satellites above ``elevation_mask`` as seen from a receiver.

        Returns the visible satellites sorted by descending elevation,
        which matches how receivers typically prioritize channels and
        makes "take the best m satellites" selections deterministic.
        """
        receiver = require_shape("receiver_ecef", receiver_ecef, (3,))
        visible: List[VisibleSatellite] = []
        for satellite in self._by_identity.values():
            if not satellite.healthy:
                continue
            position = satellite.position_at(time)
            elevation, azimuth = elevation_azimuth(position, receiver)
            if elevation >= elevation_mask:
                visible.append(
                    VisibleSatellite(
                        satellite=satellite,
                        position=position,
                        elevation=elevation,
                        azimuth=azimuth,
                    )
                )
        visible.sort(key=lambda v: v.elevation, reverse=True)
        return visible
