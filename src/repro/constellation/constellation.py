"""The simulated GPS constellation and visibility computation.

This is the space segment of the paper's Section 3.1 system model: the
set of orbiting satellites a ground receiver can range against.  The
central operation is :meth:`Constellation.visible_from` — real receivers
see "6 to 10 (or more)" satellites above the horizon (the paper's data
items carry 8 to 12), and this class reproduces that by evaluating every
healthy satellite's elevation against a mask angle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.constants import DEFAULT_ELEVATION_MASK
from repro.constellation.satellite import Satellite
from repro.errors import ConfigurationError
from repro.geodesy import elevation_azimuth
from repro.orbits.almanac import nominal_gps_almanac
from repro.orbits.ephemeris import BroadcastEphemeris
from repro.timebase import GpsTime
from repro.utils.validation import require_shape


@dataclass(frozen=True)
class VisibleSatellite:
    """A satellite visible from a receiver at a particular instant."""

    satellite: Satellite
    position: np.ndarray  # ECEF, meters
    elevation: float  # radians
    azimuth: float  # radians

    @property
    def prn(self) -> int:
        """PRN of the visible satellite."""
        return self.satellite.prn


class Constellation:
    """A collection of satellites with visibility queries.

    Parameters
    ----------
    satellites:
        The space vehicles making up the constellation.  PRNs must be
        unique.
    """

    def __init__(self, satellites: Iterable[Satellite]) -> None:
        self._by_prn: Dict[int, Satellite] = {}
        for satellite in satellites:
            if satellite.prn in self._by_prn:
                raise ConfigurationError(
                    f"duplicate PRN {satellite.prn} in constellation"
                )
            self._by_prn[satellite.prn] = satellite
        if not self._by_prn:
            raise ConfigurationError("constellation must contain at least one satellite")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def nominal(
        cls,
        epoch: GpsTime,
        satellite_count: int = 31,
        rng: Optional[np.random.Generator] = None,
    ) -> "Constellation":
        """Build the nominal GPS constellation (see
        :func:`repro.orbits.almanac.nominal_gps_almanac`)."""
        ephemerides = nominal_gps_almanac(epoch, satellite_count, rng)
        return cls(Satellite(ephemeris=eph) for eph in ephemerides)

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_prn)

    def __iter__(self) -> Iterator[Satellite]:
        return iter(self._by_prn.values())

    def __contains__(self, prn: int) -> bool:
        return prn in self._by_prn

    def satellite(self, prn: int) -> Satellite:
        """Look up a satellite by PRN."""
        try:
            return self._by_prn[prn]
        except KeyError:
            raise ConfigurationError(f"no satellite with PRN {prn}") from None

    @property
    def prns(self) -> List[int]:
        """Sorted list of all PRNs."""
        return sorted(self._by_prn)

    def ephemerides(self) -> List[BroadcastEphemeris]:
        """All current ephemerides, PRN-sorted (for RINEX nav export)."""
        return [self._by_prn[prn].ephemeris for prn in self.prns]

    # ------------------------------------------------------------------
    # Health / failure injection
    # ------------------------------------------------------------------
    def set_health(self, prn: int, healthy: bool) -> None:
        """Mark a satellite healthy or unhealthy; unhealthy satellites
        are never reported visible."""
        self.satellite(prn).healthy = healthy

    # ------------------------------------------------------------------
    # Visibility
    # ------------------------------------------------------------------
    def visible_from(
        self,
        receiver_ecef: np.ndarray,
        time: GpsTime,
        elevation_mask: float = DEFAULT_ELEVATION_MASK,
    ) -> List[VisibleSatellite]:
        """Satellites above ``elevation_mask`` as seen from a receiver.

        Returns the visible satellites sorted by descending elevation,
        which matches how receivers typically prioritize channels and
        makes "take the best m satellites" selections deterministic.
        """
        receiver = require_shape("receiver_ecef", receiver_ecef, (3,))
        visible: List[VisibleSatellite] = []
        for satellite in self._by_prn.values():
            if not satellite.healthy:
                continue
            position = satellite.position_at(time)
            elevation, azimuth = elevation_azimuth(position, receiver)
            if elevation >= elevation_mask:
                visible.append(
                    VisibleSatellite(
                        satellite=satellite,
                        position=position,
                        elevation=elevation,
                        azimuth=azimuth,
                    )
                )
        visible.sort(key=lambda v: v.elevation, reverse=True)
        return visible
