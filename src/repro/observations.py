"""The shared observation data model.

Every layer of the library meets at these types: the signal simulator
produces them, the RINEX code serializes them, the positioning
algorithms consume them, and the evaluation harness compares their
embedded truth against solver output.

An :class:`ObservationEpoch` is exactly one "data item" of the paper's
Section 5.2.1: all satellites visible at one second, each with its
coordinates and (corrected) pseudorange.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.constellation.systems import (
    DEFAULT_SYSTEM,
    constellation_signature,
    normalize_system,
    system_index,
)
from repro.errors import ConfigurationError
from repro.timebase import GpsTime


@dataclass(frozen=True)
class SatelliteObservation:
    """One satellite's contribution to an epoch.

    Attributes
    ----------
    prn:
        Satellite PRN, unique within a ``system``.  The globally unique
        identity is ``(system, prn)``.
    system:
        RINEX system code of the transmitting constellation (``"G"``
        GPS, ``"R"`` GLONASS, ``"E"`` Galileo, ``"C"`` BeiDou).  Each
        system runs its own clock, so multi-constellation solvers
        estimate one receiver bias per distinct system present.
    position:
        Satellite ECEF position (meters) at signal transmit time,
        expressed in the receive-instant ECEF frame — i.e. exactly the
        ``(x_i, y_i, z_i)`` the paper's equations use.
    pseudorange:
        The measured, receiver-side-corrected pseudorange ``rho_e_i``
        (meters).  Contains the receiver clock bias ``eps_R`` and the
        residual satellite-dependent error ``eps_S_i``.
    elevation, azimuth:
        Line-of-sight angles (radians) from the receiver.
    carrier_range:
        Optional L1 carrier-phase measurement expressed in meters
        (``lambda * phase``).  Millimeter-noise but carries an unknown
        constant ambiguity per satellite pass; used by carrier
        smoothing (Hatch filtering), ignored by the point solvers.
    pseudorange_l2:
        Optional second-frequency (L2) pseudorange (meters), corrected
        like ``pseudorange``; enables the ionosphere-free combination.
    range_rate:
        Optional Doppler-derived range rate (m/s), satellite clock
        drift already removed; consumed by the velocity solver.
    velocity:
        Optional satellite ECEF velocity (m/s) at transmit time,
        computed receiver-side from the broadcast ephemeris; required
        alongside ``range_rate`` for velocity estimation.
    cn0_dbhz:
        Optional carrier-to-noise density ratio (dB-Hz) reported by the
        tracking channel.  Not used by the point solvers; consumed by
        the signal-plausibility monitors
        (:mod:`repro.integrity.monitors`), which compare it against the
        elevation-dependent nominal curve to flag jamming and spoofing
        signatures that residual-based RAIM cannot see.
    """

    prn: int
    position: np.ndarray
    pseudorange: float
    elevation: float = 0.0
    azimuth: float = 0.0
    carrier_range: Optional[float] = None
    pseudorange_l2: Optional[float] = None
    range_rate: Optional[float] = None
    velocity: Optional[np.ndarray] = None
    system: str = DEFAULT_SYSTEM
    cn0_dbhz: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "system", normalize_system(self.system))
        position = np.asarray(self.position, dtype=float)
        if position.shape != (3,) or not np.all(np.isfinite(position)):
            raise ConfigurationError("satellite position must be a finite 3-vector")
        object.__setattr__(self, "position", position)
        if not np.isfinite(self.pseudorange) or self.pseudorange <= 0:
            raise ConfigurationError(
                f"pseudorange must be a positive finite number, got {self.pseudorange}"
            )
        if self.carrier_range is not None and not np.isfinite(self.carrier_range):
            raise ConfigurationError("carrier_range must be finite when present")
        if self.pseudorange_l2 is not None and (
            not np.isfinite(self.pseudorange_l2) or self.pseudorange_l2 <= 0
        ):
            raise ConfigurationError(
                "pseudorange_l2 must be positive and finite when present"
            )
        if self.range_rate is not None and not np.isfinite(self.range_rate):
            raise ConfigurationError("range_rate must be finite when present")
        if self.cn0_dbhz is not None and not np.isfinite(self.cn0_dbhz):
            raise ConfigurationError("cn0_dbhz must be finite when present")
        if self.velocity is not None:
            velocity = np.asarray(self.velocity, dtype=float)
            if velocity.shape != (3,) or not np.all(np.isfinite(velocity)):
                raise ConfigurationError(
                    "satellite velocity must be a finite 3-vector when present"
                )
            object.__setattr__(self, "velocity", velocity)


@dataclass(frozen=True)
class EpochTruth:
    """Simulation ground truth attached to an epoch for evaluation.

    Attributes
    ----------
    receiver_position:
        True receiver ECEF position (meters).
    clock_bias_meters:
        True receiver clock bias ``eps_R`` expressed in meters
        (``c * dt``).  For multi-constellation scenes this is the bias
        against the *first* system present (the one ``clock_biases``
        lists first).
    clock_biases:
        Optional per-constellation truth biases (meters), keyed by
        system code.  ``None`` for legacy single-constellation scenes;
        when present it must agree with ``clock_bias_meters`` on the
        first system.
    """

    receiver_position: np.ndarray
    clock_bias_meters: float
    clock_biases: Optional[Tuple[Tuple[str, float], ...]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        position = np.asarray(self.receiver_position, dtype=float)
        if position.shape != (3,) or not np.all(np.isfinite(position)):
            raise ConfigurationError("receiver position must be a finite 3-vector")
        object.__setattr__(self, "receiver_position", position)
        if self.clock_biases is not None:
            normalized = tuple(
                (normalize_system(system), float(bias))
                for system, bias in (
                    self.clock_biases.items()
                    if hasattr(self.clock_biases, "items")
                    else self.clock_biases
                )
            )
            if not normalized:
                raise ConfigurationError(
                    "clock_biases must name at least one system when present"
                )
            object.__setattr__(self, "clock_biases", normalized)

    def clock_bias_for(self, system: str) -> float:
        """The truth bias (meters) for one system code."""
        code = normalize_system(system)
        if self.clock_biases is None:
            return self.clock_bias_meters
        for candidate, bias in self.clock_biases:
            if candidate == code:
                return bias
        raise ConfigurationError(f"no truth clock bias recorded for system {code!r}")


@dataclass(frozen=True)
class ObservationEpoch:
    """All satellite observations at one receive instant.

    Observations are stored highest-elevation first (the order the
    constellation reports them), so ``epoch.subset(m)`` deterministically
    takes the *best* m satellites, while ``epoch.subset(m, order)`` can
    impose any other choice.
    """

    time: GpsTime
    observations: Tuple[SatelliteObservation, ...]
    truth: Optional[EpochTruth] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        observations = tuple(self.observations)
        if not observations:
            raise ConfigurationError("an epoch must contain at least one observation")
        identities = [(obs.system, obs.prn) for obs in observations]
        if len(set(identities)) != len(identities):
            duplicated = sorted(
                {key for key in identities if identities.count(key) > 1}
            )
            raise ConfigurationError(
                "duplicate PRNs in epoch: "
                + ", ".join(f"{system}{prn:02d}" for system, prn in duplicated)
            )
        object.__setattr__(self, "observations", observations)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.observations)

    def __iter__(self):
        return iter(self.observations)

    @property
    def satellite_count(self) -> int:
        """Number of satellites in this epoch."""
        return len(self.observations)

    @property
    def prns(self) -> Tuple[int, ...]:
        """PRNs in observation order."""
        return tuple(obs.prn for obs in self.observations)

    @property
    def systems(self) -> Tuple[str, ...]:
        """System codes in observation order."""
        return tuple(obs.system for obs in self.observations)

    @property
    def constellation_count(self) -> int:
        """Number of distinct GNSS systems contributing observations."""
        return len({obs.system for obs in self.observations})

    @property
    def signature(self) -> str:
        """Constellation-count signature, e.g. ``"G5R3"``."""
        return constellation_signature(self.dense()[3])

    # ------------------------------------------------------------------
    def dense(self) -> "Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """The epoch's hot-path arrays, packed once and memoized.

        Returns ``(positions (m, 3), pseudoranges (m,), prns (m,),
        system_ids (m,))`` as *read-only* float64/float64/int64/int8
        arrays, where ``system_ids`` holds the compact numeric codes of
        :data:`repro.constellation.systems.SYSTEM_CODES`.  The epoch is
        frozen, so the pack is computed on first access and cached:
        every later consumer (the columnar
        :class:`~repro.blocks.EpochBlock` builder, the scalar solvers,
        repeated batch solves over the same stream) shares the same
        buffers instead of re-walking the observation objects.  Callers
        must treat the arrays as immutable; :meth:`satellite_positions`
        / :meth:`pseudoranges` hand out copies for code that wants to
        mutate.
        """
        cached = self.__dict__.get("_dense")
        if cached is None:
            observations = self.observations
            if observations:
                positions = np.array(
                    [obs.position for obs in observations], dtype=float
                ).reshape(len(observations), 3)
                pseudoranges = np.array(
                    [obs.pseudorange for obs in observations], dtype=float
                )
                prns = np.array([obs.prn for obs in observations], dtype=np.int64)
                system_ids = np.array(
                    [system_index(obs.system) for obs in observations],
                    dtype=np.int8,
                )
            else:  # unvalidated decoders can hand over empty epochs
                positions = np.empty((0, 3))
                pseudoranges = np.empty(0)
                prns = np.empty(0, dtype=np.int64)
                system_ids = np.empty(0, dtype=np.int8)
            for array in (positions, pseudoranges, prns, system_ids):
                array.flags.writeable = False
            cached = (positions, pseudoranges, prns, system_ids)
            object.__setattr__(self, "_dense", cached)
        return cached

    def cn0(self) -> np.ndarray:
        """``(m,)`` C/N0 lane (dB-Hz), ``NaN`` where unreported.

        Packed once and memoized like :meth:`dense`, and kept *outside*
        it so the solver hot path never pays for a lane only the
        signal-plausibility monitors read.  The returned array is
        read-only; an epoch with no C/N0 at all yields all-NaN, which
        every monitor treats as "feature absent" rather than an alarm.
        """
        cached = self.__dict__.get("_cn0")
        if cached is None:
            cached = np.array(
                [
                    float("nan") if obs.cn0_dbhz is None else float(obs.cn0_dbhz)
                    for obs in self.observations
                ],
                dtype=float,
            )
            cached.flags.writeable = False
            object.__setattr__(self, "_cn0", cached)
        return cached

    def satellite_positions(self) -> np.ndarray:
        """``(m, 3)`` matrix of satellite ECEF positions."""
        return self.dense()[0].copy()

    def pseudoranges(self) -> np.ndarray:
        """``(m,)`` vector of measured pseudoranges."""
        return self.dense()[1].copy()

    # ------------------------------------------------------------------
    def subset(
        self,
        count: int,
        order: Optional[Sequence[int]] = None,
    ) -> "ObservationEpoch":
        """A new epoch keeping only ``count`` observations.

        Parameters
        ----------
        count:
            How many observations to keep, ``1 <= count <= len(self)``.
        order:
            Optional permutation of observation indices to apply before
            truncation; defaults to the stored (elevation-sorted) order.
        """
        if not 1 <= count <= len(self.observations):
            raise ConfigurationError(
                f"cannot take {count} observations from an epoch of "
                f"{len(self.observations)}"
            )
        if order is None:
            selected = self.observations[:count]
        else:
            indices = list(order)
            if sorted(indices) != list(range(len(self.observations))):
                raise ConfigurationError(
                    "order must be a permutation of the observation indices"
                )
            selected = tuple(self.observations[i] for i in indices[:count])
        return ObservationEpoch(time=self.time, observations=selected, truth=self.truth)

    def with_observations(
        self, observations: Iterable[SatelliteObservation]
    ) -> "ObservationEpoch":
        """A new epoch with the same time/truth but different observations."""
        return ObservationEpoch(
            time=self.time, observations=tuple(observations), truth=self.truth
        )


def epoch_integrity_error(
    epoch: ObservationEpoch, min_satellites: int = 4
) -> Optional[str]:
    """Why ``epoch`` violates the solvers' input contract, or ``None``.

    The *shared* entry-point guard: :meth:`GpsReceiver.process
    <repro.core.receiver.GpsReceiver.process>` and
    :meth:`PositioningEngine.solve_stream
    <repro.engine.pipeline.PositioningEngine.solve_stream>` both call
    it, so a broken epoch gets the same verdict wherever it enters —
    the caller only decides *policy* (raise versus NaN-drop).  It
    re-checks invariants the validating constructors already enforce
    because fault injection — and any real decoder that trusts its
    wire format — can hand over epochs that never went through those
    constructors.

    Checks, cheapest first: satellite count against ``min_satellites``,
    duplicate PRNs, non-finite satellite positions, and non-finite or
    non-positive pseudoranges.  Returns a human-readable description of
    the *first* violation found.
    """
    observations = epoch.observations
    count = len(observations)
    if count < min_satellites:
        return (
            f"epoch has {count} satellites, fewer than {min_satellites} required"
        )
    identities = [(getattr(obs, "system", "G"), obs.prn) for obs in observations]
    if len(set(identities)) != count:
        duplicated = sorted(
            {key for key in identities if identities.count(key) > 1}
        )
        return "epoch contains duplicate PRNs " + ", ".join(
            f"{system}{prn:02d}" for system, prn in duplicated
        )
    # Fast path: one stacked finite-check for the whole epoch instead of
    # per-satellite numpy round-trips (this guard sits on the service's
    # per-request hot path).  It may only certify *clean* epochs — any
    # failure to stack, wrong shape, or suspect value falls through to
    # the per-satellite scan, which stays the authority on naming the
    # first offender.
    try:
        positions, pseudoranges, _prns, _system_ids = epoch.dense()
    except (TypeError, ValueError, OverflowError):
        positions = None
    if (
        positions is not None
        and positions.shape == (count, 3)
        and np.isfinite(positions).all()
        and np.isfinite(pseudoranges).all()
        and (pseudoranges > 0).all()
    ):
        return None
    for obs in observations:
        position = np.asarray(obs.position, dtype=float)
        if position.shape != (3,) or not np.all(np.isfinite(position)):
            return f"PRN {obs.prn} has a non-finite satellite position"
        if not np.isfinite(obs.pseudorange) or obs.pseudorange <= 0:
            return (
                f"PRN {obs.prn} has a non-finite or non-positive pseudorange "
                f"({obs.pseudorange})"
            )
    return None
