"""The SLO engine: streaming quantiles, availability, error budgets.

Three layers, each usable alone:

* :class:`QuantileSketch` — a dependency-free DDSketch-style streaming
  quantile estimator: log-spaced buckets with a configurable *relative*
  accuracy guarantee, **mergeable** (merging two sketches is exact bin
  addition), serializable, and cheap to feed (one ``log`` and one dict
  increment per observation).  Mergeability is the property the
  sharded tier needs: per-worker sketches combine into fleet
  percentiles without holding raw samples anywhere.
* :class:`WindowedQuantiles` — a ring of sub-sketches rotated on a
  monotonic clock, so queries answer "the last ``window_seconds ×
  windows`` seconds", not "since process start".  Old traffic ages out
  instead of pinning the percentiles forever.
* :class:`SloTracker` — the service-facing rollup: feed it
  ``(status, latency)`` per finished request and it maintains windowed
  p50/p90/p99/p999, availability by status class, and the remaining
  error budget against a configured availability target; it publishes
  everything as gauges/counters into a
  :class:`~repro.telemetry.registry.MetricsRegistry` on demand (a
  scrape), not per observation, so the request hot path never pays for
  a quantile query.

Status classes: ``ok`` counts as **success**; ``failed``, ``timeout``
and ``rejected`` count as **error** (the service failed its caller);
``invalid`` and ``cancelled`` count as **client** (the caller's own
doing) and are excluded from availability.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import ConfigurationError

#: Service statuses that count against availability.  ``retryable``
#: (a shard worker died mid-batch) is explicitly an error: the caller
#: did nothing wrong and the fleet failed to answer.
ERROR_STATUSES: Tuple[str, ...] = ("failed", "timeout", "rejected", "retryable")
#: Caller-attributable statuses, excluded from availability.
CLIENT_STATUSES: Tuple[str, ...] = ("invalid", "cancelled")


#: status -> class, precomputed: the tracker classifies per request.
#: Unknown statuses fail safe (error): they hurt availability.
_STATUS_CLASSES: Dict[str, str] = {
    "ok": "success",
    **{status: "error" for status in ERROR_STATUSES},
    **{status: "client" for status in CLIENT_STATUSES},
}


def status_class(status: str) -> str:
    """``success`` / ``error`` / ``client`` for a service status."""
    return _STATUS_CLASSES.get(status, "error")


class QuantileSketch:
    """Mergeable log-bucket quantile sketch with relative-error bounds.

    Values are assigned to geometric buckets ``gamma^i`` with
    ``gamma = (1 + alpha) / (1 - alpha)``; any quantile estimate is
    within ``alpha`` *relative* error of a true sample value.  Values
    ``<= 0`` land in a dedicated zero bucket (latencies are never
    negative; a clock hiccup should not corrupt the sketch).
    """

    __slots__ = ("_alpha", "_gamma", "_log_gamma", "_bins", "zero_count",
                 "count", "sum", "min", "max")

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ConfigurationError("relative_accuracy must be in (0, 1)")
        self._alpha = float(relative_accuracy)
        self._gamma = (1.0 + self._alpha) / (1.0 - self._alpha)
        self._log_gamma = math.log(self._gamma)
        self._bins: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def relative_accuracy(self) -> float:
        """The configured relative error bound alpha."""
        return self._alpha

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        if math.isnan(value):
            return
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero_count += 1
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._bins[index] = self._bins.get(index, 0) + 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of samples in vectorized bucket arithmetic.

        Equivalent to ``observe`` per value (NaNs skipped, values
        ``<= 0`` to the zero bucket), but the log-bucket indices for
        the whole batch come from one numpy pass and collapse to one
        dict increment per *distinct* bucket — a flush of similar
        latencies touches a handful of bins, not one per request.
        """
        array = np.asarray(values, dtype=float)
        if array.size:
            array = array[~np.isnan(array)]
        if not array.size:
            return
        self.count += int(array.size)
        self.sum += float(array.sum())
        low = float(array.min())
        high = float(array.max())
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high
        positive = array[array > 0.0]
        zeros = int(array.size - positive.size)
        if zeros:
            self.zero_count += zeros
        if positive.size:
            indices = np.ceil(np.log(positive) / self._log_gamma)
            unique, counts = np.unique(indices.astype(np.int64), return_counts=True)
            bins = self._bins
            for index, count in zip(unique.tolist(), counts.tolist()):
                bins[index] = bins.get(index, 0) + count

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 <= q <= 1``); NaN if empty."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        seen = self.zero_count
        if rank < seen:
            return 0.0
        for index in sorted(self._bins):
            seen += self._bins[index]
            if rank < seen:
                # Bucket midpoint: 2*gamma^i / (gamma + 1) keeps the
                # estimate within alpha of the bucket's edges.
                return 2.0 * self._gamma**index / (self._gamma + 1.0)
        return self.max

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (exact: bin addition)."""
        if not isinstance(other, QuantileSketch):
            raise ConfigurationError("can only merge QuantileSketch instances")
        if other._gamma != self._gamma:
            raise ConfigurationError(
                "cannot merge sketches with different relative accuracies: "
                f"{self._alpha} vs {other._alpha}"
            )
        for index, count in other._bins.items():
            self._bins[index] = self._bins.get(index, 0) + count
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"]) -> "QuantileSketch":
        """A fresh sketch holding the union of ``sketches``."""
        sketches = list(sketches)
        result = cls(
            relative_accuracy=(
                sketches[0]._alpha if sketches else 0.01
            )
        )
        for sketch in sketches:
            result.merge(sketch)
        return result

    def to_dict(self) -> Dict:
        """Serializable form (cross-process merge, snapshots)."""
        return {
            "relative_accuracy": self._alpha,
            "bins": {str(k): v for k, v in self._bins.items()},
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": None if math.isinf(self.min) else self.min,
            "max": None if math.isinf(self.max) else self.max,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "QuantileSketch":
        sketch = cls(relative_accuracy=float(payload["relative_accuracy"]))
        sketch._bins = {int(k): int(v) for k, v in payload["bins"].items()}
        sketch.zero_count = int(payload["zero_count"])
        sketch.count = int(payload["count"])
        sketch.sum = float(payload["sum"])
        sketch.min = math.inf if payload["min"] is None else float(payload["min"])
        sketch.max = -math.inf if payload["max"] is None else float(payload["max"])
        return sketch


class WindowedQuantiles:
    """A ring of :class:`QuantileSketch` windows rotated on a clock.

    Observations land in the current window; queries merge the live
    windows, so the answer covers at most ``windows × window_seconds``
    of history and traffic older than that ages out one window at a
    time.  A rotation is O(1); it just retires the oldest sub-sketch.
    """

    def __init__(
        self,
        window_seconds: float = 60.0,
        windows: int = 5,
        relative_accuracy: float = 0.01,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if windows < 1:
            raise ConfigurationError("windows must be >= 1")
        self._window_seconds = float(window_seconds)
        self._windows = int(windows)
        self._alpha = float(relative_accuracy)
        self._clock = clock
        self._ring: List[QuantileSketch] = [QuantileSketch(self._alpha)]
        self._rotated_at = clock()

    def _rotate_if_due(self) -> None:
        now = self._clock()
        elapsed = now - self._rotated_at
        if elapsed < self._window_seconds:
            return
        # A long quiet gap can span several windows; retire them all.
        steps = min(self._windows, int(elapsed / self._window_seconds))
        for _ in range(steps):
            self._ring.append(QuantileSketch(self._alpha))
        del self._ring[: max(0, len(self._ring) - self._windows)]
        self._rotated_at = now

    def observe(self, value: float) -> None:
        """Record one sample into the current window."""
        self._rotate_if_due()
        self._ring[-1].observe(value)

    def merged(self) -> QuantileSketch:
        """One sketch over every live window."""
        self._rotate_if_due()
        return QuantileSketch.merged(self._ring)

    def quantile(self, q: float) -> float:
        """The windowed ``q``-quantile."""
        return self.merged().quantile(q)

    @property
    def count(self) -> int:
        """Samples across the live windows."""
        return sum(sketch.count for sketch in self._ring)


@dataclass(frozen=True)
class SloConfig:
    """Objectives and windowing for one :class:`SloTracker`.

    Attributes
    ----------
    availability_target:
        The fraction of non-client requests that must succeed; the
        error budget is ``1 - availability_target``.
    latency_objectives:
        ``{quantile_label: seconds}`` targets (e.g. ``{"p99": 0.05}``);
        purely informational gauges — the tracker reports compliance,
        callers decide what to do about it.
    quantiles:
        Which quantiles to publish, as ``(label, q)`` pairs.
    window_seconds / windows:
        The sliding window the quantiles and availability cover.
    relative_accuracy:
        Sketch accuracy (see :class:`QuantileSketch`).
    """

    availability_target: float = 0.999
    latency_objectives: Tuple[Tuple[str, float], ...] = (("p99", 0.05),)
    quantiles: Tuple[Tuple[str, float], ...] = (
        ("p50", 0.50),
        ("p90", 0.90),
        ("p99", 0.99),
        ("p999", 0.999),
    )
    window_seconds: float = 60.0
    windows: int = 5
    relative_accuracy: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.availability_target < 1.0:
            raise ConfigurationError("availability_target must be in (0, 1)")
        labels = {label for label, _ in self.quantiles}
        for label, seconds in self.latency_objectives:
            if label not in labels:
                raise ConfigurationError(
                    f"latency objective {label!r} is not a published "
                    f"quantile {sorted(labels)}"
                )
            if seconds <= 0:
                raise ConfigurationError("latency objectives must be positive")


class SloTracker:
    """Windowed SLO rollup fed per request, published per scrape.

    ``observe`` is the hot-path half (one sketch insert and two dict
    increments); ``publish``/``snapshot`` are the scrape-time half,
    where quantile queries and budget arithmetic happen.
    """

    def __init__(
        self,
        config: Optional[SloConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._config = config if config is not None else SloConfig()
        self._latency = WindowedQuantiles(
            window_seconds=self._config.window_seconds,
            windows=self._config.windows,
            relative_accuracy=self._config.relative_accuracy,
            clock=clock,
        )
        self._by_status: Dict[str, int] = {}
        self._by_class: Dict[str, int] = {"success": 0, "error": 0, "client": 0}

    @property
    def config(self) -> SloConfig:
        """The objectives this tracker grades against."""
        return self._config

    def observe(self, status: str, latency_seconds: float) -> None:
        """Record one finished request.

        Runs once per request on the serving path, so the window
        rotation check and sketch insert are inlined here rather than
        layered through :class:`WindowedQuantiles` method calls.
        """
        by_status = self._by_status
        by_status[status] = by_status.get(status, 0) + 1
        cls = _STATUS_CLASSES.get(status, "error")
        self._by_class[cls] += 1
        if cls != "client":
            window = self._latency
            if window._clock() - window._rotated_at >= window._window_seconds:
                window._rotate_if_due()
            window._ring[-1].observe(latency_seconds)

    def observe_batch(
        self,
        statuses: Sequence[str],
        latencies: Sequence[float],
    ) -> None:
        """Record one flush's worth of finished requests.

        Same accounting as :meth:`observe`, but the window-rotation
        check runs once for the whole batch and the sketch inserts
        collapse into one vectorized :meth:`QuantileSketch.observe_many`
        (or a bound-method loop below the numpy break-even size) — the
        serving path resolves whole batches at once, so per-request
        layering would be pure overhead.
        """
        by_status = self._by_status
        by_class = self._by_class
        classes = _STATUS_CLASSES
        # One C-level pass over the statuses, then per *distinct* status
        # bookkeeping: a healthy flush is a single "ok" entry, not one
        # dict update per request.
        client = 0
        for status, count in Counter(statuses).items():
            by_status[status] = by_status.get(status, 0) + count
            cls = classes.get(status, "error")
            by_class[cls] += count
            if cls == "client":
                client += count
        if client:
            graded = [
                latency
                for status, latency in zip(statuses, latencies)
                if classes.get(status, "error") != "client"
            ]
        else:
            graded = latencies
        if not graded:
            return
        window = self._latency
        if window._clock() - window._rotated_at >= window._window_seconds:
            window._rotate_if_due()
        sketch = window._ring[-1]
        # list -> ndarray conversion makes the vectorized insert a wash
        # below ~100 samples; small flushes keep the bound-method loop.
        if len(graded) >= 96:
            sketch.observe_many(graded)
        else:
            observe = sketch.observe
            for latency in graded:
                observe(latency)

    # -- scrape-time rollups -------------------------------------------
    @property
    def availability(self) -> float:
        """Fraction of non-client requests that succeeded (1.0 if none)."""
        success = self._by_class.get("success", 0)
        error = self._by_class.get("error", 0)
        total = success + error
        return 1.0 if total == 0 else success / total

    @property
    def error_budget_remaining(self) -> float:
        """Remaining fraction of the error budget (can go negative).

        1.0 = untouched, 0.0 = exactly spent, negative = blown: the
        overshoot is proportional, so ``-1.0`` means errors ran at
        twice the budget.
        """
        budget = 1.0 - self._config.availability_target
        consumed = 1.0 - self.availability
        return 1.0 - consumed / budget

    def latency_quantiles(self) -> Dict[str, float]:
        """The configured quantiles over the live window."""
        merged = self._latency.merged()
        return {label: merged.quantile(q) for label, q in self._config.quantiles}

    def snapshot(self) -> Dict:
        """JSON-ready rollup (the ``/slo`` endpoint, bench records)."""
        quantiles = self.latency_quantiles()
        objectives = {
            label: {
                "target_seconds": target,
                "actual_seconds": quantiles.get(label, math.nan),
                "met": bool(
                    not math.isnan(quantiles.get(label, math.nan))
                    and quantiles[label] <= target
                ),
            }
            for label, target in self._config.latency_objectives
        }
        return {
            "availability": self.availability,
            "availability_target": self._config.availability_target,
            "error_budget_remaining": self.error_budget_remaining,
            "latency_seconds": quantiles,
            "latency_objectives": objectives,
            "requests_by_status": dict(sorted(self._by_status.items())),
            "requests_by_class": dict(sorted(self._by_class.items())),
            "window_seconds": self._config.window_seconds * self._config.windows,
            "window_samples": self._latency.count,
        }

    def publish(self, registry) -> None:
        """Write the rollup into a metrics registry (scrape-time)."""
        if not getattr(registry, "enabled", False):
            return
        quantile_gauge = registry.gauge(
            "repro_slo_latency_seconds",
            "Windowed request-latency quantiles.",
            labels=("quantile",),
        )
        for label, value in self.latency_quantiles().items():
            quantile_gauge.labels(quantile=label).set(
                0.0 if math.isnan(value) else value
            )
        registry.gauge(
            "repro_slo_availability",
            "Windowed fraction of non-client requests served ok.",
        ).set(self.availability)
        registry.gauge(
            "repro_slo_error_budget_remaining",
            "Remaining error budget fraction (negative = blown).",
        ).set(self.error_budget_remaining)
        class_counter = registry.counter(
            "repro_slo_requests_total",
            "Requests graded by the SLO engine, by status class.",
            labels=("status_class",),
        )
        published = getattr(self, "_published_classes", None)
        if published is None:
            published = {}
            self._published_classes = published
        for cls, count in self._by_class.items():
            delta = count - published.get(cls, 0)
            if delta > 0:
                class_counter.labels(status_class=cls).inc(delta)
                published[cls] = count
