"""A minimal asyncio status server: scrape, SLO, and records endpoints.

Dependency-free (stdlib asyncio only) and deliberately tiny: it serves
plain ``GET``s with connection-close semantics, which is all a
Prometheus scraper or a curl-wielding operator needs.  It binds
``127.0.0.1`` by default — this is an operational sidecar, not a
public API.

Routes:

* ``/metrics`` — Prometheus text over the configured registries
  (aggregated fleet-style when there is more than one).
* ``/metrics.json`` — the JSON snapshot of the aggregate.
* ``/slo`` — the SLO tracker's rollup (quantiles, availability,
  error budget), when one is attached.
* ``/records`` — the flight recorder's snapshot (ring + dump paths),
  when one is attached.
* ``/healthz`` — liveness (``ok``).

The server shares the service's event loop: handlers only read
in-memory state, so a scrape costs microseconds and never blocks a
solve.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable, Iterable, List, Optional

from repro.telemetry.exporters import (
    to_json_snapshot,
    to_prometheus_fleet_text,
)
from repro.telemetry.registry import aggregate_registries

_MAX_REQUEST_BYTES = 8192


class StatusServer:
    """Serve observability endpoints for a set of registries.

    Parameters
    ----------
    registries:
        A zero-argument callable returning the registries to scrape —
        a callable rather than a list so the sharded tier can hand in
        "whatever workers are alive right now".
    slo:
        Optional :class:`~repro.telemetry.slo.SloTracker` backing
        ``/slo`` (it is also published into the scrape).
    recorder:
        Optional :class:`~repro.telemetry.recorder.FlightRecorder`
        backing ``/records``.
    host / port:
        Bind address; ``port=0`` picks a free port (tests).
    """

    def __init__(
        self,
        registries: Callable[[], Iterable],
        slo=None,
        recorder=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registries = registries
        self._slo = slo
        self._recorder = recorder
        self._host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "StatusServer":
        """Bind and start serving; returns self."""
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._requested_port
        )
        return self

    async def stop(self) -> None:
        """Stop accepting and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    def _live_registries(self) -> List:
        return list(self._registries())

    def _render(self, path: str):
        """``(status_line, content_type, body)`` for one GET path."""
        if path in ("/metrics", "/metrics/"):
            registries = self._live_registries()
            if self._slo is not None and registries:
                self._slo.publish(registries[0])
            body = to_prometheus_fleet_text(registries)
            return "200 OK", "text/plain; version=0.0.4", body
        if path == "/metrics.json":
            registries = self._live_registries()
            if self._slo is not None and registries:
                self._slo.publish(registries[0])
            merged = aggregate_registries(registries)
            return (
                "200 OK",
                "application/json",
                json.dumps(to_json_snapshot(merged), indent=2, sort_keys=True),
            )
        if path == "/slo":
            if self._slo is None:
                return "404 Not Found", "text/plain", "no SLO tracker attached\n"
            return (
                "200 OK",
                "application/json",
                json.dumps(self._slo.snapshot(), indent=2, sort_keys=True),
            )
        if path == "/records":
            if self._recorder is None:
                return "404 Not Found", "text/plain", "no flight recorder attached\n"
            return (
                "200 OK",
                "application/json",
                json.dumps(self._recorder.snapshot(), indent=2, sort_keys=True),
            )
        if path == "/healthz":
            return "200 OK", "text/plain", "ok\n"
        return "404 Not Found", "text/plain", f"unknown path {path}\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if len(request_line) > _MAX_REQUEST_BYTES:
                return
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2 or parts[0] != "GET":
                status, ctype, body = (
                    "405 Method Not Allowed",
                    "text/plain",
                    "GET only\n",
                )
            else:
                # Drain (and ignore) headers so well-behaved clients
                # are not surprised by an early close.
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                path = parts[1].split("?", 1)[0]
                try:
                    status, ctype, body = self._render(path)
                except Exception as exc:  # a broken endpoint, not a dead server
                    status, ctype, body = (
                        "500 Internal Server Error",
                        "text/plain",
                        f"{type(exc).__name__}: {exc}\n",
                    )
            payload = body.encode()
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass
